"""The end-to-end Kairos serving system (paper Fig. 4 / Sec. 6).

:class:`KairosServingSystem` ties the two design components together the way the
implementation section describes: the *resource allocator* (the one-shot planner, plus
optionally the Kairos+ online refinement) chooses the heterogeneous configuration under
the budget, and the *central controller* (the query-distribution policy) maps arriving
queries to the allocated instances.  The facade exposes exactly the operations the
examples and experiments need: ``plan``, ``build_policy``, ``simulate``, and
``measure_throughput``.

:class:`ElasticKairosController` extends the one-shot reaction of Fig. 12 to *online*
load changes: it keeps a sliding estimate of the offered arrival rate, and when the
rate departs durably from the rate the current plan was provisioned for, it re-runs
:class:`~repro.core.kairos.KairosPlanner` in one shot — against a budget scaled to the
new load and against the batch sizes the query monitor actually observed — and emits
the scale-up/scale-down deltas that migrate the cluster to the new plan.  The elastic
simulator (:mod:`repro.sim.elasticity`) turns those deltas into provisioning events.

The schedulers package is imported lazily inside the methods so that ``repro.core``
does not depend on ``repro.schedulers`` at import time (the scheduler baselines import
core components).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence, Union

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import InstanceCatalog
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry, default_profile_registry
from repro.core.kairos import (
    KairosPlan,
    KairosPlanner,
    MultiModelKairosPlanner,
    MultiModelPlan,
)
from repro.core.kairos_plus import KairosPlusResult, KairosPlusSearch
from repro.sim.capacity import AllowableThroughputResult, measure_allowable_throughput
from repro.sim.simulation import SimulationReport, simulate_serving
from repro.utils.rng import RngLike, ensure_rng
from repro.workload.batch_sizes import BatchSizeDistribution, production_batch_distribution
from repro.workload.generator import WorkloadSpec
from repro.workload.query import Query


class KairosServingSystem:
    """High-level facade: plan a configuration and serve queries with Kairos.

    Parameters
    ----------
    model:
        The inference-service model (name or :class:`~repro.cloud.models.MLModel`).
    budget_per_hour:
        Cost budget in $/hr (the paper's default evaluation budget is 2.5).
    profiles / catalog:
        Cloud substrate; defaults to the calibrated synthetic registry and the
        Table 4 catalog.
    batch_distribution:
        Query-size mix the planner monitors; defaults to the production-like
        distribution.
    use_online_latency_learning:
        When True (default) the serving policy learns latencies online, matching the
        paper's "all results include this overhead"; when False it reads the true
        profiles.
    """

    def __init__(
        self,
        model: Union[str, MLModel],
        budget_per_hour: float = 2.5,
        *,
        profiles: Optional[ProfileRegistry] = None,
        catalog: Optional[InstanceCatalog] = None,
        batch_distribution: Optional[BatchSizeDistribution] = None,
        num_monitor_samples: int = 10_000,
        use_online_latency_learning: bool = True,
        solver_method: str = "jv",
        rng: RngLike = None,
    ):
        self.profiles = profiles if profiles is not None else default_profile_registry()
        self.catalog = catalog if catalog is not None else self.profiles.catalog
        self.model = model if isinstance(model, MLModel) else self.profiles.models[model]
        self.budget_per_hour = float(budget_per_hour)
        self.batch_distribution = (
            batch_distribution
            if batch_distribution is not None
            else production_batch_distribution(self.model.max_batch_size)
        )
        self.use_online_latency_learning = bool(use_online_latency_learning)
        self.solver_method = solver_method
        self._rng = ensure_rng(rng)
        self._plan: Optional[KairosPlan] = None

    # -- planning --------------------------------------------------------------------------
    def plan(self, *, force: bool = False) -> KairosPlan:
        """Run (or return the cached) one-shot configuration plan."""
        if self._plan is None or force:
            planner = KairosPlanner(
                self.model,
                self.budget_per_hour,
                profiles=self.profiles,
                catalog=self.catalog,
                batch_distribution=self.batch_distribution,
                rng=self._rng,
            )
            self._plan = planner.plan()
        return self._plan

    @property
    def selected_config(self) -> HeterogeneousConfig:
        """The configuration Kairos selects without online evaluation."""
        return self.plan().selected_config

    def refine_with_kairos_plus(
        self,
        evaluator: Optional[Callable[[HeterogeneousConfig], float]] = None,
        *,
        max_evaluations: Optional[int] = None,
        workload_spec: Optional[WorkloadSpec] = None,
    ) -> KairosPlusResult:
        """Run the Kairos+ online search seeded by the plan's upper-bound ranking.

        ``evaluator`` defaults to a capacity measurement of each candidate configuration
        under the Kairos policy (one "online evaluation" per call).
        """
        plan = self.plan()
        if evaluator is None:
            spec = workload_spec if workload_spec is not None else WorkloadSpec(
                batch_sizes=self.batch_distribution, num_queries=600
            )

            def evaluator(config: HeterogeneousConfig) -> float:
                return self.measure_throughput(config=config, workload_spec=spec).qps

        search = KairosPlusSearch(plan.ranked, evaluator, max_evaluations=max_evaluations)
        return search.run()

    # -- serving ---------------------------------------------------------------------------
    def build_policy(self):
        """A fresh Kairos query-distribution policy (one per serving run)."""
        from repro.schedulers.kairos_policy import KairosPolicy

        return KairosPolicy(
            use_perfect_estimator=not self.use_online_latency_learning,
            solver_method=self.solver_method,
        )

    def simulate(
        self,
        queries: Sequence[Query],
        *,
        config: Optional[HeterogeneousConfig] = None,
        dispatch_overhead_ms: float = 0.0,
        rng: RngLike = None,
    ) -> SimulationReport:
        """Serve a concrete query stream on the planned (or a given) configuration."""
        chosen = config if config is not None else self.selected_config
        return simulate_serving(
            chosen,
            self.model,
            self.profiles,
            self.build_policy(),
            queries,
            dispatch_overhead_ms=dispatch_overhead_ms,
            rng=rng if rng is not None else self._rng,
        )

    def measure_throughput(
        self,
        *,
        config: Optional[HeterogeneousConfig] = None,
        workload_spec: Optional[WorkloadSpec] = None,
        num_queries: Optional[int] = None,
        rng: RngLike = None,
        **capacity_kwargs,
    ) -> AllowableThroughputResult:
        """Measure the allowable throughput of the planned (or a given) configuration."""
        chosen = config if config is not None else self.selected_config
        spec = workload_spec if workload_spec is not None else WorkloadSpec(
            batch_sizes=self.batch_distribution
        )
        return measure_allowable_throughput(
            chosen,
            self.model,
            self.profiles,
            self.build_policy,
            workload_spec=spec,
            num_queries=num_queries,
            rng=rng if rng is not None else self._rng,
            **capacity_kwargs,
        )


# ---------------------------------------------------------------------------------------
# Online elasticity: load tracking and the re-planning controller
# ---------------------------------------------------------------------------------------

class ArrivalRateEstimator:
    """Sliding-window estimate of the offered arrival rate.

    Keeps the arrival timestamps of the last ``window_ms`` of trace time and reports
    ``count / window`` as the rate.  The estimate is intentionally simple — the paper's
    contribution is reacting in one shot once a change is detected, not the detector —
    but the window makes the detection *sustained*: a single burst cannot move the
    estimate for longer than the window.

    The estimator is anchored on the first *observed* arrival, not on simulated time
    zero: replayed traces (committed real-trace slices in particular) routinely start
    at an arbitrary time origin ``t0 >> window_ms``, and normalizing by absolute time
    would read the empty pre-trace span as a full window of silence — a spurious
    load-drop signal at trace start.
    """

    def __init__(self, window_ms: float = 5_000.0):
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = float(window_ms)
        self._arrivals: Deque[float] = deque()
        self._first_observed_ms: Optional[float] = None

    @property
    def first_observed_ms(self) -> Optional[float]:
        """Timestamp of the first arrival ever observed (``None`` before any)."""
        return self._first_observed_ms

    def window_elapsed(self, now_ms: float) -> bool:
        """True once a full window of trace time has passed *since the first arrival*.

        Before anything was observed this is False: an untouched estimator can never
        claim its window is trustworthy, whatever the absolute clock reads.
        """
        return (
            self._first_observed_ms is not None
            and now_ms - self._first_observed_ms >= self.window_ms
        )

    def observe(self, t_ms: float) -> None:
        if self._arrivals and t_ms < self._arrivals[-1] - 1e-9:
            raise ValueError("arrival timestamps must be non-decreasing")
        if self._first_observed_ms is None:
            self._first_observed_ms = float(t_ms)
        self._arrivals.append(float(t_ms))
        self._evict(t_ms)

    def _evict(self, now_ms: float) -> None:
        cutoff = now_ms - self.window_ms
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()

    def observations(self, now_ms: float) -> int:
        self._evict(now_ms)
        return len(self._arrivals)

    def rate_qps(self, now_ms: float) -> float:
        """Arrivals per second over the trailing window (0 when the window is empty)."""
        self._evict(now_ms)
        if not self._arrivals:
            return 0.0
        # Normalizing by the full window (not the observed span) keeps the estimate
        # unbiased for a stationary process and makes an emptying window read as a
        # falling rate rather than a noisy one.  The span is anchored on the first
        # *observed* arrival: before one full window has elapsed since then, only the
        # trace time that actually carried observations divides the count.  Anchoring
        # on absolute time instead would bias every offset-origin trace (first arrival
        # at t0 >> window_ms) toward a near-zero rate at trace start.
        elapsed_ms = max(now_ms, self._arrivals[-1]) - self._first_observed_ms
        span_ms = min(self.window_ms, elapsed_ms)
        if span_ms <= 0:
            return 0.0
        return 1000.0 * len(self._arrivals) / span_ms


@dataclass(frozen=True)
class ReplanDecision:
    """One re-planning action of the elastic controller.

    ``scale_deltas`` maps instance-type name to the signed instance-count change needed
    to migrate from ``old_config`` to ``new_config`` (positive = provision, negative =
    drain); the elastic simulator turns it into ``SCALE_UP`` / ``SCALE_DOWN`` events.
    """

    time_ms: float
    observed_rate_qps: float
    provisioned_rate_qps: float
    budget_per_hour: float
    old_config: HeterogeneousConfig
    new_config: HeterogeneousConfig
    plan: KairosPlan
    scale_deltas: Dict[str, int]

    @property
    def is_scale_up(self) -> bool:
        return sum(self.scale_deltas.values()) > 0


class ElasticKairosController:
    """Detect sustained load change and re-plan the configuration in one shot.

    Parameters
    ----------
    model / profiles / catalog:
        The cloud substrate (as for :class:`KairosServingSystem`).
    base_budget_per_hour:
        The budget the initial plan is provisioned under.
    base_rate_qps:
        The offered load that budget is provisioned for.  Re-planning scales the
        budget proportionally to the observed/provisioned rate ratio (provisioning-
        aware scaling): twice the load buys twice the cluster, half the load drains
        half the spend.
    window_ms / change_threshold / min_observations / cooldown_ms:
        Detection knobs: the sliding-window length, the sustained rate ratio that
        triggers a re-plan (1.5 = ±50%), the minimum arrivals the window must hold
        before it is trusted *while the first window is still filling* (after a full
        window of trace time a sparse window is itself a valid load-drop signal),
        and the minimum time between re-plans.
    max_budget_per_hour:
        Hard ceiling on the scaled budget (``None`` = 4x the base budget).
    batch_distribution:
        Fallback query-size mix for planning before the monitor has seen enough
        arrivals; once ``monitor_window`` batch sizes have been observed the re-plan
        uses the observed window instead (the paper's query monitor).
    """

    def __init__(
        self,
        model: Union[str, MLModel],
        base_budget_per_hour: float,
        base_rate_qps: float,
        *,
        profiles: Optional[ProfileRegistry] = None,
        catalog: Optional[InstanceCatalog] = None,
        batch_distribution: Optional[BatchSizeDistribution] = None,
        window_ms: float = 5_000.0,
        change_threshold: float = 1.5,
        min_observations: int = 30,
        cooldown_ms: float = 10_000.0,
        max_budget_per_hour: Optional[float] = None,
        monitor_window: int = 2_000,
        num_monitor_samples: int = 4_000,
        rng: RngLike = None,
    ):
        if base_budget_per_hour <= 0:
            raise ValueError("base_budget_per_hour must be positive")
        if base_rate_qps <= 0:
            raise ValueError("base_rate_qps must be positive")
        if change_threshold <= 1.0:
            raise ValueError("change_threshold must be > 1")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if cooldown_ms < 0:
            raise ValueError("cooldown_ms must be non-negative")
        self.profiles = profiles if profiles is not None else default_profile_registry()
        self.catalog = catalog if catalog is not None else self.profiles.catalog
        self.model = model if isinstance(model, MLModel) else self.profiles.models[model]
        self.base_budget_per_hour = float(base_budget_per_hour)
        self.base_rate_qps = float(base_rate_qps)
        self.batch_distribution = (
            batch_distribution
            if batch_distribution is not None
            else production_batch_distribution(self.model.max_batch_size)
        )
        self.change_threshold = float(change_threshold)
        self.min_observations = int(min_observations)
        self.cooldown_ms = float(cooldown_ms)
        self.max_budget_per_hour = (
            float(max_budget_per_hour)
            if max_budget_per_hour is not None
            else 4.0 * self.base_budget_per_hour
        )
        self.num_monitor_samples = int(num_monitor_samples)
        self._rng = ensure_rng(rng)
        self.rate_estimator = ArrivalRateEstimator(window_ms)
        self._batch_window: Deque[int] = deque(maxlen=int(monitor_window))
        self._provisioned_rate_qps = self.base_rate_qps
        self._last_replan_ms = 0.0
        self._current_config: Optional[HeterogeneousConfig] = None
        self.decisions: List[ReplanDecision] = []
        #: (time_ms, type_name, count) of every preemption this controller absorbed.
        self.preemptions: List[Tuple[float, str, int]] = []
        #: (time_ms, type_name, count) of every unannounced crash this controller absorbed.
        self.failures: List[Tuple[float, str, int]] = []
        #: (time_ms, type_name, count) of every gray-failure quarantine absorbed.
        self.quarantines: List[Tuple[float, str, int]] = []
        #: (time_ms, type_name, count) of every probation re-admission absorbed.
        self.readmits: List[Tuple[float, str, int]] = []
        self._pending_reprovision = False

    # -- planning ----------------------------------------------------------------------
    def _plan_at_budget(self, budget_per_hour: float) -> KairosPlan:
        if self._batch_window:
            batch_samples: Optional[Sequence[int]] = list(self._batch_window)
        else:
            batch_samples = None
        planner = KairosPlanner(
            self.model,
            budget_per_hour,
            profiles=self.profiles,
            catalog=self.catalog,
            batch_samples=batch_samples,
            batch_distribution=self.batch_distribution,
            num_monitor_samples=self.num_monitor_samples,
            rng=self._rng,
        )
        return planner.plan()

    def initial_plan(self) -> KairosPlan:
        """Plan for the base budget; remembers the selection as the live configuration."""
        plan = self._plan_at_budget(self.base_budget_per_hour)
        self._current_config = plan.selected_config
        return plan

    @property
    def current_config(self) -> Optional[HeterogeneousConfig]:
        return self._current_config

    @property
    def provisioned_rate_qps(self) -> float:
        """The offered rate the live configuration was last provisioned for."""
        return self._provisioned_rate_qps

    # -- online observation ------------------------------------------------------------
    def prime_monitor(self, batch_sizes: Sequence[int]) -> None:
        """Pre-fill the query monitor (e.g. with the window a prior system observed).

        Priming makes the initial plan reproducible against a known monitoring window —
        experiments prime both the static baseline's planner and the elastic controller
        with the same samples so the two arms start from the same configuration.
        """
        for b in batch_sizes:
            self._batch_window.append(int(b))

    def observe_arrival(self, query: Query, now_ms: float) -> None:
        """Feed one arriving query into the rate estimator and the query monitor."""
        self.rate_estimator.observe(now_ms)
        self._batch_window.append(query.batch_size)

    def observe_preemption(
        self, type_name: str, now_ms: float, *, count: int = 1
    ) -> None:
        """Absorb a spot-market preemption: an *uncontrolled* scale-down.

        The market reclaimed capacity the live plan still wanted, so the controller
        (a) books the loss against its view of the current configuration and (b) arms
        a reactive re-provisioning pass: the next :meth:`maybe_replan` call re-plans
        immediately — bypassing the cooldown and the load-change threshold, because
        the trigger is a capacity loss, not a load change — and its migration deltas
        re-issue the missing instances.

        Losses beyond the planned view (a mixed cluster typically carries spot
        capacity on top of the controller's configuration) are recorded and still
        trigger the re-plan, but can never shrink the view below zero.
        """
        if self._current_config is None:
            raise RuntimeError("call initial_plan() before observe_preemption()")
        if count <= 0:
            raise ValueError("preemption count must be positive")
        self._absorb_capacity_loss(type_name, count)
        self.preemptions.append((float(now_ms), type_name, int(count)))
        self._pending_reprovision = True

    def observe_failure(self, type_name: str, now_ms: float, *, count: int = 1) -> None:
        """Absorb an unannounced instance crash: the chaos twin of :meth:`observe_preemption`.

        Identical semantics — the fault process destroyed capacity the live plan
        still wanted, so the loss is booked against the controller's view of the
        current configuration and the next :meth:`maybe_replan` re-plans immediately
        (cooldown and load-change gates bypassed; the trigger is capacity loss, not a
        load change).  Crashes are recorded separately in :attr:`failures` so reports
        can distinguish market reclaims from hardware deaths.
        """
        if self._current_config is None:
            raise RuntimeError("call initial_plan() before observe_failure()")
        if count <= 0:
            raise ValueError("failure count must be positive")
        self._absorb_capacity_loss(type_name, count)
        self.failures.append((float(now_ms), type_name, int(count)))
        self._pending_reprovision = True

    def observe_quarantine(self, type_name: str, now_ms: float, *, count: int = 1) -> None:
        """Absorb a gray-failure quarantine: capacity isolated by an open breaker.

        Same semantics as :meth:`observe_failure` — the health layer parked
        capacity the live plan still wanted, so the loss is booked against the
        controller's view and the next :meth:`maybe_replan` re-plans immediately
        (cooldown and load-change gates bypassed).  Unlike a crash the instance
        still exists and still bills; if probation later re-admits it,
        :meth:`observe_readmit` books the capacity back.
        """
        if self._current_config is None:
            raise RuntimeError("call initial_plan() before observe_quarantine()")
        if count <= 0:
            raise ValueError("quarantine count must be positive")
        self._absorb_capacity_loss(type_name, count)
        self.quarantines.append((float(now_ms), type_name, int(count)))
        self._pending_reprovision = True

    def observe_readmit(self, type_name: str, now_ms: float, *, count: int = 1) -> None:
        """Absorb a probation re-admission: quarantined capacity returned to service.

        The inverse of :meth:`observe_quarantine`: the capacity is booked back
        into the controller's view and a cooldown-bypassing re-plan is armed so
        the next pass can shed whatever replacement capacity the quarantine
        forced it to buy.
        """
        if self._current_config is None:
            raise RuntimeError("call initial_plan() before observe_readmit()")
        if count <= 0:
            raise ValueError("readmit count must be positive")
        self._current_config = self._current_config.add(type_name, int(count))
        self.readmits.append((float(now_ms), type_name, int(count)))
        self._pending_reprovision = True

    def _absorb_capacity_loss(self, type_name: str, count: int) -> None:
        """Book an uncontrolled capacity loss, never shrinking the view below zero."""
        booked = min(int(count), self._current_config.count_of(type_name))
        if booked > 0:
            self._current_config = self._current_config.add(type_name, -booked)

    def maybe_replan(self, now_ms: float) -> Optional[ReplanDecision]:
        """Re-plan when the observed rate departs durably from the provisioned rate.

        Returns the decision (also appended to :attr:`decisions`) or ``None`` when the
        load is within threshold, the window is not yet trustworthy, or the controller
        is still in its post-replan cooldown.  A pending preemption
        (:meth:`observe_preemption`) overrides all three gates: lost capacity is
        re-provisioned for the currently provisioned rate in one shot.
        """
        if self._current_config is None:
            raise RuntimeError("call initial_plan() before maybe_replan()")
        if self._pending_reprovision:
            self._pending_reprovision = False
            return self._replan(
                now_ms,
                self._provisioned_rate_qps,
                provisioned_after=self._provisioned_rate_qps,
            )
        # The min_observations gate protects against acting on a window that simply
        # has not existed long enough to be meaningful.  Once a full window of trace
        # time has elapsed *since the first observed arrival*, a sparse window is
        # itself the signal (a severe load drop produces few arrivals by definition),
        # so the gate no longer applies.  The window is measured from the first
        # arrival, not from absolute time zero: an offset-origin trace must not
        # bypass the gate (and fire a spurious load-drop re-plan) at trace start.
        window_elapsed = self.rate_estimator.window_elapsed(now_ms)
        if not window_elapsed and self.rate_estimator.observations(now_ms) < self.min_observations:
            return None
        if now_ms < self._last_replan_ms + self.cooldown_ms:
            return None
        observed = self.rate_estimator.rate_qps(now_ms)
        if observed <= 0:
            return None
        ratio = observed / self._provisioned_rate_qps
        if 1.0 / self.change_threshold < ratio < self.change_threshold:
            return None
        return self._replan(now_ms, observed, provisioned_after=observed)

    def _replan(
        self, now_ms: float, rate_qps: float, *, provisioned_after: float
    ) -> ReplanDecision:
        """One planning pass at the budget scaled for ``rate_qps``; records the decision.

        ``provisioned_after`` is what the live configuration is considered provisioned
        for afterwards — the observed rate for load-change re-plans, the unchanged
        provisioned rate for preemption re-provisioning (capacity changed, not load).
        """
        budget = self.base_budget_per_hour * rate_qps / self.base_rate_qps
        budget = min(max(budget, self._cheapest_price()), self.max_budget_per_hour)
        plan = self._plan_at_budget(budget)
        old_config = self._current_config
        new_config = plan.selected_config
        decision = ReplanDecision(
            time_ms=float(now_ms),
            observed_rate_qps=rate_qps,
            provisioned_rate_qps=self._provisioned_rate_qps,
            budget_per_hour=budget,
            old_config=old_config,
            new_config=new_config,
            plan=plan,
            scale_deltas=migration_deltas(old_config, new_config),
        )
        self._current_config = new_config
        self._provisioned_rate_qps = float(provisioned_after)
        self._last_replan_ms = float(now_ms)
        self.decisions.append(decision)
        return decision

    def _cheapest_price(self) -> float:
        return min(t.price_per_hour for t in self.catalog.types)


@dataclass(frozen=True)
class MultiModelReplanDecision:
    """One joint re-planning action over all co-located models.

    ``scale_deltas`` maps model name to that partition's per-type signed deltas; the
    multi-model simulator turns them into model-tagged ``SCALE_UP`` / ``SCALE_DOWN``
    events (shrinks ordered by drain cost-efficiency).
    """

    time_ms: float
    observed_rates_qps: Dict[str, float]
    provisioned_rates_qps: Dict[str, float]
    budget_per_hour: float
    old_configs: Dict[str, HeterogeneousConfig]
    new_configs: Dict[str, HeterogeneousConfig]
    plan: MultiModelPlan
    scale_deltas: Dict[str, Dict[str, int]]

    @property
    def is_scale_up(self) -> bool:
        return sum(sum(d.values()) for d in self.scale_deltas.values()) > 0


class MultiModelElasticController:
    """Joint re-planning for N co-located models under one shared budget.

    Each model keeps its own sliding :class:`ArrivalRateEstimator` and query-size
    monitor window (arrivals route by the query's model tag).  When *any* model's
    observed rate departs durably from the rate its partition was provisioned for, the
    controller re-runs :class:`~repro.core.kairos.MultiModelKairosPlanner.plan_joint`
    over all models at once — the shared budget scales with the *total* observed load,
    and demand targets are the per-model observed rates — and emits per-model
    migration deltas.  Detection knobs have the same semantics as
    :class:`ElasticKairosController`, applied per model (cooldown is global: one joint
    re-plan replaces N per-model ones).
    """

    def __init__(
        self,
        models: Sequence[Union[str, MLModel]],
        base_budget_per_hour: float,
        base_rates_qps: Mapping[str, float],
        *,
        profiles: Optional[ProfileRegistry] = None,
        catalog: Optional[InstanceCatalog] = None,
        batch_distribution_by_model: Optional[Mapping[str, BatchSizeDistribution]] = None,
        window_ms: float = 5_000.0,
        change_threshold: float = 1.5,
        min_observations: int = 30,
        cooldown_ms: float = 10_000.0,
        max_budget_per_hour: Optional[float] = None,
        monitor_window: int = 2_000,
        num_monitor_samples: int = 4_000,
        demand_headroom: Union[float, Mapping[str, float]] = 1.0,
        rng: RngLike = None,
    ):
        if base_budget_per_hour <= 0:
            raise ValueError("base_budget_per_hour must be positive")
        if change_threshold <= 1.0:
            raise ValueError("change_threshold must be > 1")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if cooldown_ms < 0:
            raise ValueError("cooldown_ms must be non-negative")
        self.profiles = profiles if profiles is not None else default_profile_registry()
        self.catalog = catalog if catalog is not None else self.profiles.catalog
        self.models: List[MLModel] = [
            m if isinstance(m, MLModel) else self.profiles.models[m] for m in models
        ]
        names = [m.name for m in self.models]
        missing = [n for n in names if n not in base_rates_qps]
        if missing:
            raise KeyError(f"no base rate for models: {missing}")
        for name in names:
            if base_rates_qps[name] <= 0:
                raise ValueError(f"base rate for {name!r} must be positive")
        self.base_budget_per_hour = float(base_budget_per_hour)
        self.base_rates_qps: Dict[str, float] = {
            name: float(base_rates_qps[name]) for name in names
        }
        self.change_threshold = float(change_threshold)
        self.min_observations = int(min_observations)
        self.cooldown_ms = float(cooldown_ms)
        self.max_budget_per_hour = (
            float(max_budget_per_hour)
            if max_budget_per_hour is not None
            else 4.0 * self.base_budget_per_hour
        )
        self.planner = MultiModelKairosPlanner(
            self.models,
            self.max_budget_per_hour,
            profiles=self.profiles,
            catalog=self.catalog,
            batch_distribution_by_model=(
                dict(batch_distribution_by_model)
                if batch_distribution_by_model is not None
                else None
            ),
            num_monitor_samples=int(num_monitor_samples),
            demand_headroom=demand_headroom,
            rng=rng,
        )
        self.demand_headroom = dict(self.planner.demand_headroom)
        self.rate_estimators: Dict[str, ArrivalRateEstimator] = {
            name: ArrivalRateEstimator(window_ms) for name in names
        }
        self._batch_windows: Dict[str, Deque[int]] = {
            name: deque(maxlen=int(monitor_window)) for name in names
        }
        self._provisioned_rates: Dict[str, float] = dict(self.base_rates_qps)
        self._last_replan_ms = 0.0
        self._current_configs: Optional[Dict[str, HeterogeneousConfig]] = None
        self.decisions: List[MultiModelReplanDecision] = []

    # -- planning ----------------------------------------------------------------------
    @property
    def model_names(self) -> List[str]:
        return [m.name for m in self.models]

    def _plan_at_budget(
        self, budget_per_hour: float, targets: Mapping[str, float]
    ) -> MultiModelPlan:
        for name, window in self._batch_windows.items():
            if window:
                self.planner.update_batch_samples(name, list(window))
        self.planner.budget_per_hour = float(budget_per_hour)
        return self.planner.plan_joint(targets)

    def initial_plan(self) -> MultiModelPlan:
        """Joint plan for the base rates; remembers the selection as live configs."""
        plan = self._plan_at_budget(self.base_budget_per_hour, self.base_rates_qps)
        self._current_configs = plan.configs()
        return plan

    @property
    def current_configs(self) -> Optional[Dict[str, HeterogeneousConfig]]:
        return dict(self._current_configs) if self._current_configs is not None else None

    def provisioned_rate_qps(self, model_name: str) -> float:
        return self._provisioned_rates[model_name]

    # -- online observation ------------------------------------------------------------
    def prime_monitor(self, model_name: str, batch_sizes: Sequence[int]) -> None:
        """Pre-fill one model's query monitor (see ElasticKairosController)."""
        window = self._batch_windows[model_name]
        for b in batch_sizes:
            window.append(int(b))

    def observe_arrival(self, query: Query, now_ms: float) -> None:
        name = query.model_name
        if name is None:
            if len(self.models) != 1:
                raise ValueError(
                    f"untagged arrival in a {len(self.models)}-model controller"
                )
            name = self.models[0].name
        self.rate_estimators[name].observe(now_ms)
        self._batch_windows[name].append(query.batch_size)

    def maybe_replan(self, now_ms: float) -> Optional[MultiModelReplanDecision]:
        """Joint re-plan when any model's load departs durably from its provisioning."""
        if self._current_configs is None:
            raise RuntimeError("call initial_plan() before maybe_replan()")
        if now_ms < self._last_replan_ms + self.cooldown_ms:
            return None
        triggered = False
        observed: Dict[str, float] = {}
        for name in self.model_names:
            estimator = self.rate_estimators[name]
            window_elapsed = estimator.window_elapsed(now_ms)
            trustworthy = window_elapsed or (
                estimator.observations(now_ms) >= self.min_observations
            )
            rate = estimator.rate_qps(now_ms)
            # A model whose window is not yet trustworthy (or empty) must neither
            # trigger nor have its partition re-targeted to the noisy estimate: the
            # joint plan keeps provisioning it for its current rate, exactly like the
            # single-model controller's min_observations gate.
            if not trustworthy or rate <= 0:
                observed[name] = self._provisioned_rates[name]
                continue
            observed[name] = rate
            ratio = rate / self._provisioned_rates[name]
            if ratio >= self.change_threshold or ratio <= 1.0 / self.change_threshold:
                triggered = True
        if not triggered:
            return None

        total_base = sum(self.base_rates_qps.values())
        budget = self.base_budget_per_hour * sum(observed.values()) / total_base
        budget = min(max(budget, self._cheapest_price()), self.max_budget_per_hour)
        plan = self._plan_at_budget(budget, observed)
        old_configs = dict(self._current_configs)
        new_configs = plan.configs()
        deltas = {
            name: migration_deltas(old_configs[name], new_configs[name])
            for name in self.model_names
        }
        decision = MultiModelReplanDecision(
            time_ms=float(now_ms),
            observed_rates_qps=dict(observed),
            provisioned_rates_qps=dict(self._provisioned_rates),
            budget_per_hour=budget,
            old_configs=old_configs,
            new_configs=new_configs,
            plan=plan,
            scale_deltas={name: d for name, d in deltas.items() if d},
        )
        self._current_configs = new_configs
        self._provisioned_rates = dict(observed)
        self._last_replan_ms = float(now_ms)
        self.decisions.append(decision)
        return decision

    def _cheapest_price(self) -> float:
        return min(t.price_per_hour for t in self.catalog.types)


def migration_deltas(
    old_config: HeterogeneousConfig, new_config: HeterogeneousConfig
) -> Dict[str, int]:
    """Signed per-type instance deltas migrating ``old_config`` into ``new_config``.

    Only types whose count changes appear in the result (positive = scale up,
    negative = scale down), in catalog order for deterministic event emission.
    """
    old_counts = old_config.as_mapping()
    new_counts = new_config.as_mapping()
    deltas: Dict[str, int] = {}
    for name in old_config.catalog.names:
        diff = new_counts.get(name, 0) - old_counts.get(name, 0)
        if diff != 0:
            deltas[name] = diff
    return deltas
