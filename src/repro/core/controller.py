"""The end-to-end Kairos serving system (paper Fig. 4 / Sec. 6).

:class:`KairosServingSystem` ties the two design components together the way the
implementation section describes: the *resource allocator* (the one-shot planner, plus
optionally the Kairos+ online refinement) chooses the heterogeneous configuration under
the budget, and the *central controller* (the query-distribution policy) maps arriving
queries to the allocated instances.  The facade exposes exactly the operations the
examples and experiments need: ``plan``, ``build_policy``, ``simulate``, and
``measure_throughput``.

The schedulers package is imported lazily inside the methods so that ``repro.core``
does not depend on ``repro.schedulers`` at import time (the scheduler baselines import
core components).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import InstanceCatalog
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry, default_profile_registry
from repro.core.kairos import KairosPlan, KairosPlanner
from repro.core.kairos_plus import KairosPlusResult, KairosPlusSearch
from repro.sim.capacity import AllowableThroughputResult, measure_allowable_throughput
from repro.sim.simulation import SimulationReport, simulate_serving
from repro.utils.rng import RngLike, ensure_rng
from repro.workload.batch_sizes import BatchSizeDistribution, production_batch_distribution
from repro.workload.generator import WorkloadSpec
from repro.workload.query import Query


class KairosServingSystem:
    """High-level facade: plan a configuration and serve queries with Kairos.

    Parameters
    ----------
    model:
        The inference-service model (name or :class:`~repro.cloud.models.MLModel`).
    budget_per_hour:
        Cost budget in $/hr (the paper's default evaluation budget is 2.5).
    profiles / catalog:
        Cloud substrate; defaults to the calibrated synthetic registry and the
        Table 4 catalog.
    batch_distribution:
        Query-size mix the planner monitors; defaults to the production-like
        distribution.
    use_online_latency_learning:
        When True (default) the serving policy learns latencies online, matching the
        paper's "all results include this overhead"; when False it reads the true
        profiles.
    """

    def __init__(
        self,
        model: Union[str, MLModel],
        budget_per_hour: float = 2.5,
        *,
        profiles: Optional[ProfileRegistry] = None,
        catalog: Optional[InstanceCatalog] = None,
        batch_distribution: Optional[BatchSizeDistribution] = None,
        num_monitor_samples: int = 10_000,
        use_online_latency_learning: bool = True,
        solver_method: str = "jv",
        rng: RngLike = None,
    ):
        self.profiles = profiles if profiles is not None else default_profile_registry()
        self.catalog = catalog if catalog is not None else self.profiles.catalog
        self.model = model if isinstance(model, MLModel) else self.profiles.models[model]
        self.budget_per_hour = float(budget_per_hour)
        self.batch_distribution = (
            batch_distribution
            if batch_distribution is not None
            else production_batch_distribution(self.model.max_batch_size)
        )
        self.use_online_latency_learning = bool(use_online_latency_learning)
        self.solver_method = solver_method
        self._rng = ensure_rng(rng)
        self._plan: Optional[KairosPlan] = None

    # -- planning --------------------------------------------------------------------------
    def plan(self, *, force: bool = False) -> KairosPlan:
        """Run (or return the cached) one-shot configuration plan."""
        if self._plan is None or force:
            planner = KairosPlanner(
                self.model,
                self.budget_per_hour,
                profiles=self.profiles,
                catalog=self.catalog,
                batch_distribution=self.batch_distribution,
                rng=self._rng,
            )
            self._plan = planner.plan()
        return self._plan

    @property
    def selected_config(self) -> HeterogeneousConfig:
        """The configuration Kairos selects without online evaluation."""
        return self.plan().selected_config

    def refine_with_kairos_plus(
        self,
        evaluator: Optional[Callable[[HeterogeneousConfig], float]] = None,
        *,
        max_evaluations: Optional[int] = None,
        workload_spec: Optional[WorkloadSpec] = None,
    ) -> KairosPlusResult:
        """Run the Kairos+ online search seeded by the plan's upper-bound ranking.

        ``evaluator`` defaults to a capacity measurement of each candidate configuration
        under the Kairos policy (one "online evaluation" per call).
        """
        plan = self.plan()
        if evaluator is None:
            spec = workload_spec if workload_spec is not None else WorkloadSpec(
                batch_sizes=self.batch_distribution, num_queries=600
            )

            def evaluator(config: HeterogeneousConfig) -> float:
                return self.measure_throughput(config=config, workload_spec=spec).qps

        search = KairosPlusSearch(plan.ranked, evaluator, max_evaluations=max_evaluations)
        return search.run()

    # -- serving ---------------------------------------------------------------------------
    def build_policy(self):
        """A fresh Kairos query-distribution policy (one per serving run)."""
        from repro.schedulers.kairos_policy import KairosPolicy

        return KairosPolicy(
            use_perfect_estimator=not self.use_online_latency_learning,
            solver_method=self.solver_method,
        )

    def simulate(
        self,
        queries: Sequence[Query],
        *,
        config: Optional[HeterogeneousConfig] = None,
        dispatch_overhead_ms: float = 0.0,
        rng: RngLike = None,
    ) -> SimulationReport:
        """Serve a concrete query stream on the planned (or a given) configuration."""
        chosen = config if config is not None else self.selected_config
        return simulate_serving(
            chosen,
            self.model,
            self.profiles,
            self.build_policy(),
            queries,
            dispatch_overhead_ms=dispatch_overhead_ms,
            rng=rng if rng is not None else self._rng,
        )

    def measure_throughput(
        self,
        *,
        config: Optional[HeterogeneousConfig] = None,
        workload_spec: Optional[WorkloadSpec] = None,
        num_queries: Optional[int] = None,
        rng: RngLike = None,
        **capacity_kwargs,
    ) -> AllowableThroughputResult:
        """Measure the allowable throughput of the planned (or a given) configuration."""
        chosen = config if config is not None else self.selected_config
        spec = workload_spec if workload_spec is not None else WorkloadSpec(
            batch_sizes=self.batch_distribution
        )
        return measure_allowable_throughput(
            chosen,
            self.model,
            self.profiles,
            self.build_policy,
            workload_spec=spec,
            num_queries=num_queries,
            rng=rng if rng is not None else self._rng,
            **capacity_kwargs,
        )
