"""The end-to-end Kairos serving system (paper Fig. 4 / Sec. 6).

:class:`KairosServingSystem` ties the two design components together the way the
implementation section describes: the *resource allocator* (the one-shot planner, plus
optionally the Kairos+ online refinement) chooses the heterogeneous configuration under
the budget, and the *central controller* (the query-distribution policy) maps arriving
queries to the allocated instances.  The facade exposes exactly the operations the
examples and experiments need: ``plan``, ``build_policy``, ``simulate``, and
``measure_throughput``.

:class:`ElasticKairosController` extends the one-shot reaction of Fig. 12 to *online*
load changes: it keeps a sliding estimate of the offered arrival rate, and when the
rate departs durably from the rate the current plan was provisioned for, it re-runs
:class:`~repro.core.kairos.KairosPlanner` in one shot — against a budget scaled to the
new load and against the batch sizes the query monitor actually observed — and emits
the scale-up/scale-down deltas that migrate the cluster to the new plan.  The elastic
simulator (:mod:`repro.sim.elasticity`) turns those deltas into provisioning events.

The schedulers package is imported lazily inside the methods so that ``repro.core``
does not depend on ``repro.schedulers`` at import time (the scheduler baselines import
core components).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Union

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import InstanceCatalog
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry, default_profile_registry
from repro.core.kairos import KairosPlan, KairosPlanner
from repro.core.kairos_plus import KairosPlusResult, KairosPlusSearch
from repro.sim.capacity import AllowableThroughputResult, measure_allowable_throughput
from repro.sim.simulation import SimulationReport, simulate_serving
from repro.utils.rng import RngLike, ensure_rng
from repro.workload.batch_sizes import BatchSizeDistribution, production_batch_distribution
from repro.workload.generator import WorkloadSpec
from repro.workload.query import Query


class KairosServingSystem:
    """High-level facade: plan a configuration and serve queries with Kairos.

    Parameters
    ----------
    model:
        The inference-service model (name or :class:`~repro.cloud.models.MLModel`).
    budget_per_hour:
        Cost budget in $/hr (the paper's default evaluation budget is 2.5).
    profiles / catalog:
        Cloud substrate; defaults to the calibrated synthetic registry and the
        Table 4 catalog.
    batch_distribution:
        Query-size mix the planner monitors; defaults to the production-like
        distribution.
    use_online_latency_learning:
        When True (default) the serving policy learns latencies online, matching the
        paper's "all results include this overhead"; when False it reads the true
        profiles.
    """

    def __init__(
        self,
        model: Union[str, MLModel],
        budget_per_hour: float = 2.5,
        *,
        profiles: Optional[ProfileRegistry] = None,
        catalog: Optional[InstanceCatalog] = None,
        batch_distribution: Optional[BatchSizeDistribution] = None,
        num_monitor_samples: int = 10_000,
        use_online_latency_learning: bool = True,
        solver_method: str = "jv",
        rng: RngLike = None,
    ):
        self.profiles = profiles if profiles is not None else default_profile_registry()
        self.catalog = catalog if catalog is not None else self.profiles.catalog
        self.model = model if isinstance(model, MLModel) else self.profiles.models[model]
        self.budget_per_hour = float(budget_per_hour)
        self.batch_distribution = (
            batch_distribution
            if batch_distribution is not None
            else production_batch_distribution(self.model.max_batch_size)
        )
        self.use_online_latency_learning = bool(use_online_latency_learning)
        self.solver_method = solver_method
        self._rng = ensure_rng(rng)
        self._plan: Optional[KairosPlan] = None

    # -- planning --------------------------------------------------------------------------
    def plan(self, *, force: bool = False) -> KairosPlan:
        """Run (or return the cached) one-shot configuration plan."""
        if self._plan is None or force:
            planner = KairosPlanner(
                self.model,
                self.budget_per_hour,
                profiles=self.profiles,
                catalog=self.catalog,
                batch_distribution=self.batch_distribution,
                rng=self._rng,
            )
            self._plan = planner.plan()
        return self._plan

    @property
    def selected_config(self) -> HeterogeneousConfig:
        """The configuration Kairos selects without online evaluation."""
        return self.plan().selected_config

    def refine_with_kairos_plus(
        self,
        evaluator: Optional[Callable[[HeterogeneousConfig], float]] = None,
        *,
        max_evaluations: Optional[int] = None,
        workload_spec: Optional[WorkloadSpec] = None,
    ) -> KairosPlusResult:
        """Run the Kairos+ online search seeded by the plan's upper-bound ranking.

        ``evaluator`` defaults to a capacity measurement of each candidate configuration
        under the Kairos policy (one "online evaluation" per call).
        """
        plan = self.plan()
        if evaluator is None:
            spec = workload_spec if workload_spec is not None else WorkloadSpec(
                batch_sizes=self.batch_distribution, num_queries=600
            )

            def evaluator(config: HeterogeneousConfig) -> float:
                return self.measure_throughput(config=config, workload_spec=spec).qps

        search = KairosPlusSearch(plan.ranked, evaluator, max_evaluations=max_evaluations)
        return search.run()

    # -- serving ---------------------------------------------------------------------------
    def build_policy(self):
        """A fresh Kairos query-distribution policy (one per serving run)."""
        from repro.schedulers.kairos_policy import KairosPolicy

        return KairosPolicy(
            use_perfect_estimator=not self.use_online_latency_learning,
            solver_method=self.solver_method,
        )

    def simulate(
        self,
        queries: Sequence[Query],
        *,
        config: Optional[HeterogeneousConfig] = None,
        dispatch_overhead_ms: float = 0.0,
        rng: RngLike = None,
    ) -> SimulationReport:
        """Serve a concrete query stream on the planned (or a given) configuration."""
        chosen = config if config is not None else self.selected_config
        return simulate_serving(
            chosen,
            self.model,
            self.profiles,
            self.build_policy(),
            queries,
            dispatch_overhead_ms=dispatch_overhead_ms,
            rng=rng if rng is not None else self._rng,
        )

    def measure_throughput(
        self,
        *,
        config: Optional[HeterogeneousConfig] = None,
        workload_spec: Optional[WorkloadSpec] = None,
        num_queries: Optional[int] = None,
        rng: RngLike = None,
        **capacity_kwargs,
    ) -> AllowableThroughputResult:
        """Measure the allowable throughput of the planned (or a given) configuration."""
        chosen = config if config is not None else self.selected_config
        spec = workload_spec if workload_spec is not None else WorkloadSpec(
            batch_sizes=self.batch_distribution
        )
        return measure_allowable_throughput(
            chosen,
            self.model,
            self.profiles,
            self.build_policy,
            workload_spec=spec,
            num_queries=num_queries,
            rng=rng if rng is not None else self._rng,
            **capacity_kwargs,
        )


# ---------------------------------------------------------------------------------------
# Online elasticity: load tracking and the re-planning controller
# ---------------------------------------------------------------------------------------

class ArrivalRateEstimator:
    """Sliding-window estimate of the offered arrival rate.

    Keeps the arrival timestamps of the last ``window_ms`` of trace time and reports
    ``count / window`` as the rate.  The estimate is intentionally simple — the paper's
    contribution is reacting in one shot once a change is detected, not the detector —
    but the window makes the detection *sustained*: a single burst cannot move the
    estimate for longer than the window.
    """

    def __init__(self, window_ms: float = 5_000.0):
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = float(window_ms)
        self._arrivals: Deque[float] = deque()

    def observe(self, t_ms: float) -> None:
        if self._arrivals and t_ms < self._arrivals[-1] - 1e-9:
            raise ValueError("arrival timestamps must be non-decreasing")
        self._arrivals.append(float(t_ms))
        self._evict(t_ms)

    def _evict(self, now_ms: float) -> None:
        cutoff = now_ms - self.window_ms
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()

    def observations(self, now_ms: float) -> int:
        self._evict(now_ms)
        return len(self._arrivals)

    def rate_qps(self, now_ms: float) -> float:
        """Arrivals per second over the trailing window (0 when the window is empty)."""
        self._evict(now_ms)
        if not self._arrivals:
            return 0.0
        # Normalizing by the full window (not the observed span) keeps the estimate
        # unbiased for a stationary process and makes an emptying window read as a
        # falling rate rather than a noisy one.
        span_ms = min(self.window_ms, max(now_ms, self._arrivals[-1]))
        if span_ms <= 0:
            return 0.0
        return 1000.0 * len(self._arrivals) / span_ms


@dataclass(frozen=True)
class ReplanDecision:
    """One re-planning action of the elastic controller.

    ``scale_deltas`` maps instance-type name to the signed instance-count change needed
    to migrate from ``old_config`` to ``new_config`` (positive = provision, negative =
    drain); the elastic simulator turns it into ``SCALE_UP`` / ``SCALE_DOWN`` events.
    """

    time_ms: float
    observed_rate_qps: float
    provisioned_rate_qps: float
    budget_per_hour: float
    old_config: HeterogeneousConfig
    new_config: HeterogeneousConfig
    plan: KairosPlan
    scale_deltas: Dict[str, int]

    @property
    def is_scale_up(self) -> bool:
        return sum(self.scale_deltas.values()) > 0


class ElasticKairosController:
    """Detect sustained load change and re-plan the configuration in one shot.

    Parameters
    ----------
    model / profiles / catalog:
        The cloud substrate (as for :class:`KairosServingSystem`).
    base_budget_per_hour:
        The budget the initial plan is provisioned under.
    base_rate_qps:
        The offered load that budget is provisioned for.  Re-planning scales the
        budget proportionally to the observed/provisioned rate ratio (provisioning-
        aware scaling): twice the load buys twice the cluster, half the load drains
        half the spend.
    window_ms / change_threshold / min_observations / cooldown_ms:
        Detection knobs: the sliding-window length, the sustained rate ratio that
        triggers a re-plan (1.5 = ±50%), the minimum arrivals the window must hold
        before it is trusted *while the first window is still filling* (after a full
        window of trace time a sparse window is itself a valid load-drop signal),
        and the minimum time between re-plans.
    max_budget_per_hour:
        Hard ceiling on the scaled budget (``None`` = 4x the base budget).
    batch_distribution:
        Fallback query-size mix for planning before the monitor has seen enough
        arrivals; once ``monitor_window`` batch sizes have been observed the re-plan
        uses the observed window instead (the paper's query monitor).
    """

    def __init__(
        self,
        model: Union[str, MLModel],
        base_budget_per_hour: float,
        base_rate_qps: float,
        *,
        profiles: Optional[ProfileRegistry] = None,
        catalog: Optional[InstanceCatalog] = None,
        batch_distribution: Optional[BatchSizeDistribution] = None,
        window_ms: float = 5_000.0,
        change_threshold: float = 1.5,
        min_observations: int = 30,
        cooldown_ms: float = 10_000.0,
        max_budget_per_hour: Optional[float] = None,
        monitor_window: int = 2_000,
        num_monitor_samples: int = 4_000,
        rng: RngLike = None,
    ):
        if base_budget_per_hour <= 0:
            raise ValueError("base_budget_per_hour must be positive")
        if base_rate_qps <= 0:
            raise ValueError("base_rate_qps must be positive")
        if change_threshold <= 1.0:
            raise ValueError("change_threshold must be > 1")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if cooldown_ms < 0:
            raise ValueError("cooldown_ms must be non-negative")
        self.profiles = profiles if profiles is not None else default_profile_registry()
        self.catalog = catalog if catalog is not None else self.profiles.catalog
        self.model = model if isinstance(model, MLModel) else self.profiles.models[model]
        self.base_budget_per_hour = float(base_budget_per_hour)
        self.base_rate_qps = float(base_rate_qps)
        self.batch_distribution = (
            batch_distribution
            if batch_distribution is not None
            else production_batch_distribution(self.model.max_batch_size)
        )
        self.change_threshold = float(change_threshold)
        self.min_observations = int(min_observations)
        self.cooldown_ms = float(cooldown_ms)
        self.max_budget_per_hour = (
            float(max_budget_per_hour)
            if max_budget_per_hour is not None
            else 4.0 * self.base_budget_per_hour
        )
        self.num_monitor_samples = int(num_monitor_samples)
        self._rng = ensure_rng(rng)
        self.rate_estimator = ArrivalRateEstimator(window_ms)
        self._batch_window: Deque[int] = deque(maxlen=int(monitor_window))
        self._provisioned_rate_qps = self.base_rate_qps
        self._last_replan_ms = 0.0
        self._current_config: Optional[HeterogeneousConfig] = None
        self.decisions: List[ReplanDecision] = []

    # -- planning ----------------------------------------------------------------------
    def _plan_at_budget(self, budget_per_hour: float) -> KairosPlan:
        if self._batch_window:
            batch_samples: Optional[Sequence[int]] = list(self._batch_window)
        else:
            batch_samples = None
        planner = KairosPlanner(
            self.model,
            budget_per_hour,
            profiles=self.profiles,
            catalog=self.catalog,
            batch_samples=batch_samples,
            batch_distribution=self.batch_distribution,
            num_monitor_samples=self.num_monitor_samples,
            rng=self._rng,
        )
        return planner.plan()

    def initial_plan(self) -> KairosPlan:
        """Plan for the base budget; remembers the selection as the live configuration."""
        plan = self._plan_at_budget(self.base_budget_per_hour)
        self._current_config = plan.selected_config
        return plan

    @property
    def current_config(self) -> Optional[HeterogeneousConfig]:
        return self._current_config

    @property
    def provisioned_rate_qps(self) -> float:
        """The offered rate the live configuration was last provisioned for."""
        return self._provisioned_rate_qps

    # -- online observation ------------------------------------------------------------
    def prime_monitor(self, batch_sizes: Sequence[int]) -> None:
        """Pre-fill the query monitor (e.g. with the window a prior system observed).

        Priming makes the initial plan reproducible against a known monitoring window —
        experiments prime both the static baseline's planner and the elastic controller
        with the same samples so the two arms start from the same configuration.
        """
        for b in batch_sizes:
            self._batch_window.append(int(b))

    def observe_arrival(self, query: Query, now_ms: float) -> None:
        """Feed one arriving query into the rate estimator and the query monitor."""
        self.rate_estimator.observe(now_ms)
        self._batch_window.append(query.batch_size)

    def maybe_replan(self, now_ms: float) -> Optional[ReplanDecision]:
        """Re-plan when the observed rate departs durably from the provisioned rate.

        Returns the decision (also appended to :attr:`decisions`) or ``None`` when the
        load is within threshold, the window is not yet trustworthy, or the controller
        is still in its post-replan cooldown.
        """
        if self._current_config is None:
            raise RuntimeError("call initial_plan() before maybe_replan()")
        # The min_observations gate protects against acting on a window that simply
        # has not existed long enough to be meaningful.  Once a full window of trace
        # time has elapsed, a *sparse* window is itself the signal (a severe load
        # drop produces few arrivals by definition), so the gate no longer applies.
        window_elapsed = now_ms >= self.rate_estimator.window_ms
        if not window_elapsed and self.rate_estimator.observations(now_ms) < self.min_observations:
            return None
        if now_ms < self._last_replan_ms + self.cooldown_ms:
            return None
        observed = self.rate_estimator.rate_qps(now_ms)
        if observed <= 0:
            return None
        ratio = observed / self._provisioned_rate_qps
        if 1.0 / self.change_threshold < ratio < self.change_threshold:
            return None

        budget = self.base_budget_per_hour * observed / self.base_rate_qps
        budget = min(max(budget, self._cheapest_price()), self.max_budget_per_hour)
        plan = self._plan_at_budget(budget)
        old_config = self._current_config
        new_config = plan.selected_config
        decision = ReplanDecision(
            time_ms=float(now_ms),
            observed_rate_qps=observed,
            provisioned_rate_qps=self._provisioned_rate_qps,
            budget_per_hour=budget,
            old_config=old_config,
            new_config=new_config,
            plan=plan,
            scale_deltas=migration_deltas(old_config, new_config),
        )
        self._current_config = new_config
        self._provisioned_rate_qps = observed
        self._last_replan_ms = float(now_ms)
        self.decisions.append(decision)
        return decision

    def _cheapest_price(self) -> float:
        return min(t.price_per_hour for t in self.catalog.types)


def migration_deltas(
    old_config: HeterogeneousConfig, new_config: HeterogeneousConfig
) -> Dict[str, int]:
    """Signed per-type instance deltas migrating ``old_config`` into ``new_config``.

    Only types whose count changes appear in the result (positive = scale up,
    negative = scale down), in catalog order for deterministic event emission.
    """
    old_counts = old_config.as_mapping()
    new_counts = new_config.as_mapping()
    deltas: Dict[str, int] = {}
    for name in old_config.catalog.names:
        diff = new_counts.get(name, 0) - old_counts.get(name, 0)
        if diff != 0:
            deltas[name] = diff
    return deltas
