"""Kairos's similarity-based configuration selection (paper Sec. 5.2, final step).

A higher upper bound does not guarantee a higher actual throughput, so Kairos does not
blindly take the top-ranked configuration.  Instead:

1. if the top-3 upper-bound configurations all have the same number of base instances,
   the top-1 is trusted and selected;
2. otherwise, among the top-10 configurations the one with the smallest sum of squared
   Euclidean distances to the other nine is selected — i.e. the configuration closest to
   the centroid of the high-upper-bound cluster, on the intuition that the truly good
   configurations form a contiguous region of the space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.cloud.config import HeterogeneousConfig


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of the similarity-based selection."""

    selected: HeterogeneousConfig
    selected_rank: int
    rule: str  # "top1-same-base" or "min-sse-centroid"
    candidates: Tuple[Tuple[HeterogeneousConfig, float], ...]
    distance_sums: Tuple[float, ...]


def select_configuration(
    ranked: Sequence[Tuple[HeterogeneousConfig, float]],
    *,
    top_k_base_check: int = 3,
    top_k_similarity: int = 10,
) -> SelectionResult:
    """Apply the selection rule to ``ranked`` (configs sorted by decreasing upper bound).

    Parameters
    ----------
    ranked:
        ``(config, upper_bound)`` pairs sorted with the highest bound first, e.g. the
        output of :meth:`ThroughputUpperBoundEstimator.rank_configs`.
    top_k_base_check / top_k_similarity:
        The paper's 3 and 10.
    """
    if not ranked:
        raise ValueError("ranked configuration list must be non-empty")
    if top_k_base_check < 1 or top_k_similarity < 1:
        raise ValueError("top-k parameters must be >= 1")

    head = list(ranked[: max(top_k_base_check, 1)])
    base_counts = {config.base_count for config, _ in head}
    if len(head) >= top_k_base_check and len(base_counts) == 1:
        return SelectionResult(
            selected=ranked[0][0],
            selected_rank=0,
            rule="top1-same-base",
            candidates=tuple(ranked[:top_k_similarity]),
            distance_sums=(),
        )

    candidates = list(ranked[:top_k_similarity])
    vectors = np.asarray([config.as_vector() for config, _ in candidates], dtype=float)
    # pairwise squared Euclidean distances
    diff = vectors[:, None, :] - vectors[None, :, :]
    sq_dist = np.sum(diff * diff, axis=2)
    distance_sums = sq_dist.sum(axis=1)
    best_idx = int(np.argmin(distance_sums))
    return SelectionResult(
        selected=candidates[best_idx][0],
        selected_rank=best_idx,
        rule="min-sse-centroid",
        candidates=tuple(candidates),
        distance_sums=tuple(float(d) for d in distance_sums),
    )
