"""The Kairos one-shot configuration planner (paper Sec. 5.2).

Given a model, a cost budget, the latency profiles, and the observed query-size mix, the
planner enumerates every configuration under the budget, computes the closed-form
throughput upper bound of each, and applies the similarity-based selection rule — all
without a single online evaluation.  This is the component that lets Kairos react to
load changes "in one shot" (Fig. 12).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG, InstanceCatalog
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry, default_profile_registry
from repro.core.config_space import enumerate_configs
from repro.core.selection import SelectionResult, select_configuration
from repro.core.upper_bound import ThroughputUpperBoundEstimator
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative, check_positive
from repro.workload.batch_sizes import BatchSizeDistribution, production_batch_distribution


@dataclass(frozen=True)
class KairosPlan:
    """Result of one planning pass."""

    model_name: str
    budget_per_hour: float
    selected_config: HeterogeneousConfig
    selection: SelectionResult
    ranked: Tuple[Tuple[HeterogeneousConfig, float], ...]
    search_space_size: int
    planning_seconds: float

    def __post_init__(self) -> None:
        # Resolve the selected configuration's bound once; repeated accessor calls used
        # to re-scan the full ranked list (thousands of configs at realistic budgets).
        for config, bound in self.ranked:
            if config == self.selected_config:
                object.__setattr__(self, "_selected_upper_bound", float(bound))
                return
        raise LookupError("selected configuration missing from the ranked list")

    @property
    def selected_upper_bound(self) -> float:
        """Upper bound of the selected configuration (cached at construction)."""
        return self._selected_upper_bound

    def top(self, k: int) -> List[Tuple[HeterogeneousConfig, float]]:
        """The ``k`` highest-upper-bound configurations."""
        return list(self.ranked[:k])


class KairosPlanner:
    """Enumerate, rank by upper bound, and select a configuration without evaluation.

    Parameters
    ----------
    profiles / model / catalog:
        The cloud substrate.
    budget_per_hour:
        The cost budget the configuration must fit.
    batch_samples:
        Observed query batch sizes (the query monitor's window).  Alternatively pass a
        ``batch_distribution`` and the planner draws ``num_monitor_samples`` from it,
        emulating the monitoring window.
    min_base_count / max_per_type:
        Forwarded to the configuration enumeration.
    """

    def __init__(
        self,
        model: Union[str, MLModel],
        budget_per_hour: float,
        *,
        profiles: Optional[ProfileRegistry] = None,
        catalog: Optional[InstanceCatalog] = None,
        batch_samples: Optional[Sequence[int]] = None,
        batch_distribution: Optional[BatchSizeDistribution] = None,
        num_monitor_samples: int = 10_000,
        rng: RngLike = None,
        min_base_count: int = 0,
        max_per_type: Optional[int] = None,
        top_k_base_check: int = 3,
        top_k_similarity: int = 10,
    ):
        check_positive(budget_per_hour, "budget_per_hour")
        self.profiles = profiles if profiles is not None else default_profile_registry()
        self.catalog = catalog if catalog is not None else self.profiles.catalog
        self.model = model if isinstance(model, MLModel) else self.profiles.models[model]
        self.budget_per_hour = float(budget_per_hour)
        self.min_base_count = min_base_count
        self.max_per_type = max_per_type
        self.top_k_base_check = top_k_base_check
        self.top_k_similarity = top_k_similarity

        if batch_samples is None:
            dist = (
                batch_distribution
                if batch_distribution is not None
                else production_batch_distribution(self.model.max_batch_size)
            )
            batch_samples = dist.sample(num_monitor_samples, ensure_rng(rng))
        self.batch_samples = np.asarray(batch_samples, dtype=int)
        self.estimator = ThroughputUpperBoundEstimator(
            self.profiles, self.model, self.batch_samples, catalog=self.catalog
        )

    def enumerate(self) -> List[HeterogeneousConfig]:
        """The configuration search space under the budget."""
        return enumerate_configs(
            self.budget_per_hour,
            self.catalog,
            min_base_count=self.min_base_count,
            max_per_type=self.max_per_type,
        )

    def plan(self, configs: Optional[Sequence[HeterogeneousConfig]] = None) -> KairosPlan:
        """Run the full planning pass; returns the selected configuration and diagnostics."""
        start = time.perf_counter()
        space = list(configs) if configs is not None else self.enumerate()
        if not space:
            raise ValueError(
                f"no configuration fits the budget of {self.budget_per_hour}$/hr"
            )
        ranked = self.estimator.rank_configs(space)
        selection = select_configuration(
            ranked,
            top_k_base_check=self.top_k_base_check,
            top_k_similarity=self.top_k_similarity,
        )
        elapsed = time.perf_counter() - start
        return KairosPlan(
            model_name=self.model.name,
            budget_per_hour=self.budget_per_hour,
            selected_config=selection.selected,
            selection=selection,
            ranked=tuple(ranked),
            search_space_size=len(space),
            planning_seconds=elapsed,
        )

    def update_batch_samples(self, batch_samples: Sequence[int]) -> None:
        """Replace the monitored query-size window (load-change adaptation, Fig. 12).

        Updates the upper-bound estimator in place: the per-type QoS cutoff table is a
        function of the profiles alone and survives the window swap, so a re-plan only
        pays for the new mix's rates.
        """
        samples = np.asarray(batch_samples, dtype=int)
        self.estimator.update_samples(samples)
        self.batch_samples = samples


# ---------------------------------------------------------------------------------------
# Multi-model joint planning: split one budget across co-located models
# ---------------------------------------------------------------------------------------

@dataclass(frozen=True)
class ModelAllocation:
    """One model's share of a joint multi-model plan."""

    model_name: str
    target_qps: float
    config: HeterogeneousConfig
    upper_bound: float
    cost_per_hour: float
    #: True when the selected configuration's upper bound covers the demand target.
    demand_met: bool


@dataclass(frozen=True)
class MultiModelPlan:
    """Result of one joint planning pass over N co-located models."""

    budget_per_hour: float
    allocations: Tuple[ModelAllocation, ...]
    search_space_size: int
    planning_seconds: float
    #: True when the joint selection fit the shared budget directly; False when the
    #: planner had to fall back to a proportional budget split.
    within_budget: bool

    @property
    def total_cost_per_hour(self) -> float:
        return sum(a.cost_per_hour for a in self.allocations)

    @property
    def meets_all_targets(self) -> bool:
        return all(a.demand_met for a in self.allocations)

    def allocation_of(self, model_name: str) -> ModelAllocation:
        for allocation in self.allocations:
            if allocation.model_name == model_name:
                return allocation
        raise KeyError(f"no allocation for model {model_name!r} in the joint plan")

    def configs(self) -> Dict[str, HeterogeneousConfig]:
        """Per-model configurations, in allocation order (feeds MultiModelCluster)."""
        return {a.model_name: a.config for a in self.allocations}


class MultiModelKairosPlanner:
    """Joint configuration planning for N models sharing one dollar budget.

    Where the single-model :class:`KairosPlanner` maximizes one model's throughput
    upper bound under the full budget, the joint planner answers the multi-tenant
    question: *given each model's offered load, what is the cheapest per-model
    allocation whose Eq. 15 upper bound still covers every model's demand?*  For each
    model it ranks the shared configuration space with the vectorized
    ``upper_bounds_batch`` and picks the cheapest demand-feasible configuration
    (ties: highest bound, then enumeration order).  Because co-located models only
    provision what their own demand needs, the joint plan undercuts independently
    planned per-model clusters that each spend a fixed budget share (the Fig. 17
    scenario).

    If the cheapest demand-feasible selections still exceed the shared budget, the
    planner falls back to a deterministic proportional split (budget shares
    proportional to demand targets) of single-model :class:`KairosPlanner` passes and
    flags the plan ``within_budget=False``.
    """

    def __init__(
        self,
        models: Sequence[Union[str, MLModel]],
        budget_per_hour: float,
        *,
        profiles: Optional[ProfileRegistry] = None,
        catalog: Optional[InstanceCatalog] = None,
        batch_samples_by_model: Optional[Dict[str, Sequence[int]]] = None,
        batch_distribution_by_model: Optional[Dict[str, BatchSizeDistribution]] = None,
        num_monitor_samples: int = 10_000,
        demand_headroom: Union[float, Mapping[str, float]] = 1.0,
        rng: RngLike = None,
        min_base_count: int = 0,
        max_per_type: Optional[int] = None,
    ):
        check_positive(budget_per_hour, "budget_per_hour")
        if not models:
            raise ValueError("need at least one model")
        self.profiles = profiles if profiles is not None else default_profile_registry()
        self.catalog = catalog if catalog is not None else self.profiles.catalog
        self.models: List[MLModel] = [
            m if isinstance(m, MLModel) else self.profiles.models[m] for m in models
        ]
        names = [m.name for m in self.models]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate models in the joint planner: {names}")
        self.budget_per_hour = float(budget_per_hour)
        # Per-model headroom over the demand target: Eq. 15 is an *upper* bound on the
        # allowable throughput, and how loose it is differs per model (tight-QoS models
        # lose more of the bound to queueing), so the factor may be a mapping.
        if isinstance(demand_headroom, Mapping):
            self.demand_headroom: Dict[str, float] = {
                name: float(demand_headroom.get(name, 1.0)) for name in names
            }
        else:
            self.demand_headroom = {name: float(demand_headroom) for name in names}
        for name, factor in self.demand_headroom.items():
            if factor < 1.0:
                raise ValueError(
                    f"demand_headroom for {name!r} must be >= 1 "
                    "(provision at least the demand)"
                )
        self.min_base_count = min_base_count
        self.max_per_type = max_per_type
        gen = ensure_rng(rng)
        samples_by_model = dict(batch_samples_by_model or {})
        dist_by_model = dict(batch_distribution_by_model or {})
        self.batch_samples_by_model: Dict[str, np.ndarray] = {}
        self.estimators: Dict[str, ThroughputUpperBoundEstimator] = {}
        for model in self.models:
            samples = samples_by_model.get(model.name)
            if samples is None:
                dist = dist_by_model.get(model.name)
                if dist is None:
                    dist = production_batch_distribution(model.max_batch_size)
                samples = dist.sample(num_monitor_samples, gen)
            samples = np.asarray(samples, dtype=int)
            self.batch_samples_by_model[model.name] = samples
            self.estimators[model.name] = ThroughputUpperBoundEstimator(
                self.profiles, model, samples, catalog=self.catalog
            )

    @property
    def model_names(self) -> List[str]:
        return [m.name for m in self.models]

    def enumerate(self) -> List[HeterogeneousConfig]:
        """The shared configuration space: everything affordable under the full budget.

        One model alone may spend up to the whole budget (another model's demand can
        be near zero), so each model ranks the same space; the budget check applies to
        the *sum* of the selections.
        """
        return enumerate_configs(
            self.budget_per_hour,
            self.catalog,
            min_base_count=self.min_base_count,
            max_per_type=self.max_per_type,
        )

    def update_batch_samples(self, model_name: str, batch_samples: Sequence[int]) -> None:
        """Swap one model's monitored window in place (re-plans keep the cutoff table)."""
        samples = np.asarray(batch_samples, dtype=int)
        self.estimators[model_name].update_samples(samples)
        self.batch_samples_by_model[model_name] = samples

    def plan_joint(self, target_qps: Mapping[str, float]) -> MultiModelPlan:
        """Select per-model configurations covering every model's demand target.

        ``target_qps`` maps every registered model to its offered load; the effective
        requirement is ``target * demand_headroom``.
        """
        start = time.perf_counter()
        missing = [m.name for m in self.models if m.name not in target_qps]
        if missing:
            raise KeyError(f"no demand target for models: {missing}")
        space = self.enumerate()
        if not space:
            raise ValueError(
                f"no configuration fits the budget of {self.budget_per_hour}$/hr"
            )
        costs = np.asarray([c.cost_per_hour() for c in space], dtype=float)
        order_keys = np.arange(len(space))

        allocations: List[ModelAllocation] = []
        for model in self.models:
            target = float(target_qps[model.name])
            check_non_negative(target, f"demand target for {model.name}")
            required = target * self.demand_headroom[model.name]
            bounds = self.estimators[model.name].upper_bounds_batch(space)
            feasible = bounds >= required - 1e-9
            if np.any(feasible):
                idx_pool = np.nonzero(feasible)[0]
                # cheapest first; ties by highest bound, then enumeration order
                pick = idx_pool[
                    np.lexsort(
                        (order_keys[idx_pool], -bounds[idx_pool], costs[idx_pool])
                    )[0]
                ]
                demand_met = True
            else:
                # demand not coverable even with the whole budget: best effort
                pick = int(np.lexsort((order_keys, costs, -bounds))[0])
                demand_met = False
            allocations.append(
                ModelAllocation(
                    model_name=model.name,
                    target_qps=target,
                    config=space[int(pick)],
                    upper_bound=float(bounds[int(pick)]),
                    cost_per_hour=float(costs[int(pick)]),
                    demand_met=demand_met,
                )
            )

        total = sum(a.cost_per_hour for a in allocations)
        within_budget = total <= self.budget_per_hour + 1e-9
        if not within_budget:
            allocations = self._proportional_split(target_qps)
        elapsed = time.perf_counter() - start
        return MultiModelPlan(
            budget_per_hour=self.budget_per_hour,
            allocations=tuple(allocations),
            search_space_size=len(space),
            planning_seconds=elapsed,
            within_budget=within_budget,
        )

    def _proportional_split(
        self, target_qps: Mapping[str, float]
    ) -> List[ModelAllocation]:
        """Fallback: split the budget proportionally to demand, plan each model alone."""
        cheapest = min(t.price_per_hour for t in self.catalog.types)
        total_target = sum(float(target_qps[m.name]) for m in self.models)
        allocations: List[ModelAllocation] = []
        for model in self.models:
            target = float(target_qps[model.name])
            share = target / total_target if total_target > 0 else 1.0 / len(self.models)
            budget = max(self.budget_per_hour * share, cheapest)
            planner = KairosPlanner(
                model,
                budget,
                profiles=self.profiles,
                catalog=self.catalog,
                batch_samples=self.batch_samples_by_model[model.name],
                min_base_count=self.min_base_count,
                max_per_type=self.max_per_type,
            )
            plan = planner.plan()
            required = target * self.demand_headroom[model.name]
            allocations.append(
                ModelAllocation(
                    model_name=model.name,
                    target_qps=target,
                    config=plan.selected_config,
                    upper_bound=plan.selected_upper_bound,
                    cost_per_hour=plan.selected_config.cost_per_hour(),
                    demand_met=plan.selected_upper_bound >= required - 1e-9,
                )
            )
        return allocations
