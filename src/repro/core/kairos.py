"""The Kairos one-shot configuration planner (paper Sec. 5.2).

Given a model, a cost budget, the latency profiles, and the observed query-size mix, the
planner enumerates every configuration under the budget, computes the closed-form
throughput upper bound of each, and applies the similarity-based selection rule — all
without a single online evaluation.  This is the component that lets Kairos react to
load changes "in one shot" (Fig. 12).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG, InstanceCatalog
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry, default_profile_registry
from repro.core.config_space import enumerate_configs
from repro.core.selection import SelectionResult, select_configuration
from repro.core.upper_bound import ThroughputUpperBoundEstimator
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive
from repro.workload.batch_sizes import BatchSizeDistribution, production_batch_distribution


@dataclass(frozen=True)
class KairosPlan:
    """Result of one planning pass."""

    model_name: str
    budget_per_hour: float
    selected_config: HeterogeneousConfig
    selection: SelectionResult
    ranked: Tuple[Tuple[HeterogeneousConfig, float], ...]
    search_space_size: int
    planning_seconds: float

    def __post_init__(self) -> None:
        # Resolve the selected configuration's bound once; repeated accessor calls used
        # to re-scan the full ranked list (thousands of configs at realistic budgets).
        for config, bound in self.ranked:
            if config == self.selected_config:
                object.__setattr__(self, "_selected_upper_bound", float(bound))
                return
        raise LookupError("selected configuration missing from the ranked list")

    @property
    def selected_upper_bound(self) -> float:
        """Upper bound of the selected configuration (cached at construction)."""
        return self._selected_upper_bound

    def top(self, k: int) -> List[Tuple[HeterogeneousConfig, float]]:
        """The ``k`` highest-upper-bound configurations."""
        return list(self.ranked[:k])


class KairosPlanner:
    """Enumerate, rank by upper bound, and select a configuration without evaluation.

    Parameters
    ----------
    profiles / model / catalog:
        The cloud substrate.
    budget_per_hour:
        The cost budget the configuration must fit.
    batch_samples:
        Observed query batch sizes (the query monitor's window).  Alternatively pass a
        ``batch_distribution`` and the planner draws ``num_monitor_samples`` from it,
        emulating the monitoring window.
    min_base_count / max_per_type:
        Forwarded to the configuration enumeration.
    """

    def __init__(
        self,
        model: Union[str, MLModel],
        budget_per_hour: float,
        *,
        profiles: Optional[ProfileRegistry] = None,
        catalog: Optional[InstanceCatalog] = None,
        batch_samples: Optional[Sequence[int]] = None,
        batch_distribution: Optional[BatchSizeDistribution] = None,
        num_monitor_samples: int = 10_000,
        rng: RngLike = None,
        min_base_count: int = 0,
        max_per_type: Optional[int] = None,
        top_k_base_check: int = 3,
        top_k_similarity: int = 10,
    ):
        check_positive(budget_per_hour, "budget_per_hour")
        self.profiles = profiles if profiles is not None else default_profile_registry()
        self.catalog = catalog if catalog is not None else self.profiles.catalog
        self.model = model if isinstance(model, MLModel) else self.profiles.models[model]
        self.budget_per_hour = float(budget_per_hour)
        self.min_base_count = min_base_count
        self.max_per_type = max_per_type
        self.top_k_base_check = top_k_base_check
        self.top_k_similarity = top_k_similarity

        if batch_samples is None:
            dist = (
                batch_distribution
                if batch_distribution is not None
                else production_batch_distribution(self.model.max_batch_size)
            )
            batch_samples = dist.sample(num_monitor_samples, ensure_rng(rng))
        self.batch_samples = np.asarray(batch_samples, dtype=int)
        self.estimator = ThroughputUpperBoundEstimator(
            self.profiles, self.model, self.batch_samples, catalog=self.catalog
        )

    def enumerate(self) -> List[HeterogeneousConfig]:
        """The configuration search space under the budget."""
        return enumerate_configs(
            self.budget_per_hour,
            self.catalog,
            min_base_count=self.min_base_count,
            max_per_type=self.max_per_type,
        )

    def plan(self, configs: Optional[Sequence[HeterogeneousConfig]] = None) -> KairosPlan:
        """Run the full planning pass; returns the selected configuration and diagnostics."""
        start = time.perf_counter()
        space = list(configs) if configs is not None else self.enumerate()
        if not space:
            raise ValueError(
                f"no configuration fits the budget of {self.budget_per_hour}$/hr"
            )
        ranked = self.estimator.rank_configs(space)
        selection = select_configuration(
            ranked,
            top_k_base_check=self.top_k_base_check,
            top_k_similarity=self.top_k_similarity,
        )
        elapsed = time.perf_counter() - start
        return KairosPlan(
            model_name=self.model.name,
            budget_per_hour=self.budget_per_hour,
            selected_config=selection.selected,
            selection=selection,
            ranked=tuple(ranked),
            search_space_size=len(space),
            planning_seconds=elapsed,
        )

    def update_batch_samples(self, batch_samples: Sequence[int]) -> None:
        """Replace the monitored query-size window (load-change adaptation, Fig. 12).

        Updates the upper-bound estimator in place: the per-type QoS cutoff table is a
        function of the profiles alone and survives the window swap, so a re-plan only
        pays for the new mix's rates.
        """
        samples = np.asarray(batch_samples, dtype=int)
        self.estimator.update_samples(samples)
        self.batch_samples = samples
