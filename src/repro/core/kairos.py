"""The Kairos one-shot configuration planner (paper Sec. 5.2).

Given a model, a cost budget, the latency profiles, and the observed query-size mix, the
planner enumerates every configuration under the budget, computes the closed-form
throughput upper bound of each, and applies the similarity-based selection rule — all
without a single online evaluation.  This is the component that lets Kairos react to
load changes "in one shot" (Fig. 12).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG, InstanceCatalog
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry, default_profile_registry
from repro.cloud.spot import MS_PER_HOUR, SpotMarket
from repro.core.config_space import enumerate_configs
from repro.core.selection import SelectionResult, select_configuration
from repro.core.upper_bound import ThroughputUpperBoundEstimator
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative, check_positive
from repro.workload.batch_sizes import BatchSizeDistribution, production_batch_distribution


@dataclass(frozen=True)
class KairosPlan:
    """Result of one planning pass."""

    model_name: str
    budget_per_hour: float
    selected_config: HeterogeneousConfig
    selection: SelectionResult
    ranked: Tuple[Tuple[HeterogeneousConfig, float], ...]
    search_space_size: int
    planning_seconds: float

    def __post_init__(self) -> None:
        # Resolve the selected configuration's bound once; repeated accessor calls used
        # to re-scan the full ranked list (thousands of configs at realistic budgets).
        for config, bound in self.ranked:
            if config == self.selected_config:
                object.__setattr__(self, "_selected_upper_bound", float(bound))
                return
        raise LookupError("selected configuration missing from the ranked list")

    @property
    def selected_upper_bound(self) -> float:
        """Upper bound of the selected configuration (cached at construction)."""
        return self._selected_upper_bound

    def top(self, k: int) -> List[Tuple[HeterogeneousConfig, float]]:
        """The ``k`` highest-upper-bound configurations."""
        return list(self.ranked[:k])


class KairosPlanner:
    """Enumerate, rank by upper bound, and select a configuration without evaluation.

    Parameters
    ----------
    profiles / model / catalog:
        The cloud substrate.
    budget_per_hour:
        The cost budget the configuration must fit.
    batch_samples:
        Observed query batch sizes (the query monitor's window).  Alternatively pass a
        ``batch_distribution`` and the planner draws ``num_monitor_samples`` from it,
        emulating the monitoring window.
    min_base_count / max_per_type:
        Forwarded to the configuration enumeration.
    """

    def __init__(
        self,
        model: Union[str, MLModel],
        budget_per_hour: float,
        *,
        profiles: Optional[ProfileRegistry] = None,
        catalog: Optional[InstanceCatalog] = None,
        batch_samples: Optional[Sequence[int]] = None,
        batch_distribution: Optional[BatchSizeDistribution] = None,
        num_monitor_samples: int = 10_000,
        rng: RngLike = None,
        min_base_count: int = 0,
        max_per_type: Optional[int] = None,
        top_k_base_check: int = 3,
        top_k_similarity: int = 10,
    ):
        check_positive(budget_per_hour, "budget_per_hour")
        self.profiles = profiles if profiles is not None else default_profile_registry()
        self.catalog = catalog if catalog is not None else self.profiles.catalog
        self.model = model if isinstance(model, MLModel) else self.profiles.models[model]
        self.budget_per_hour = float(budget_per_hour)
        self.min_base_count = min_base_count
        self.max_per_type = max_per_type
        self.top_k_base_check = top_k_base_check
        self.top_k_similarity = top_k_similarity

        if batch_samples is None:
            dist = (
                batch_distribution
                if batch_distribution is not None
                else production_batch_distribution(self.model.max_batch_size)
            )
            batch_samples = dist.sample(num_monitor_samples, ensure_rng(rng))
        self.batch_samples = np.asarray(batch_samples, dtype=int)
        self.estimator = ThroughputUpperBoundEstimator(
            self.profiles, self.model, self.batch_samples, catalog=self.catalog
        )

    def enumerate(self) -> List[HeterogeneousConfig]:
        """The configuration search space under the budget."""
        return enumerate_configs(
            self.budget_per_hour,
            self.catalog,
            min_base_count=self.min_base_count,
            max_per_type=self.max_per_type,
        )

    def plan(self, configs: Optional[Sequence[HeterogeneousConfig]] = None) -> KairosPlan:
        """Run the full planning pass; returns the selected configuration and diagnostics."""
        start = time.perf_counter()
        space = list(configs) if configs is not None else self.enumerate()
        if not space:
            raise ValueError(
                f"no configuration fits the budget of {self.budget_per_hour}$/hr"
            )
        ranked = self.estimator.rank_configs(space)
        selection = select_configuration(
            ranked,
            top_k_base_check=self.top_k_base_check,
            top_k_similarity=self.top_k_similarity,
        )
        elapsed = time.perf_counter() - start
        return KairosPlan(
            model_name=self.model.name,
            budget_per_hour=self.budget_per_hour,
            selected_config=selection.selected,
            selection=selection,
            ranked=tuple(ranked),
            search_space_size=len(space),
            planning_seconds=elapsed,
        )

    def update_batch_samples(self, batch_samples: Sequence[int]) -> None:
        """Replace the monitored query-size window (load-change adaptation, Fig. 12).

        Updates the upper-bound estimator in place: the per-type QoS cutoff table is a
        function of the profiles alone and survives the window swap, so a re-plan only
        pays for the new mix's rates.
        """
        samples = np.asarray(batch_samples, dtype=int)
        self.estimator.update_samples(samples)
        self.batch_samples = samples


# ---------------------------------------------------------------------------------------
# Multi-model joint planning: split one budget across co-located models
# ---------------------------------------------------------------------------------------

@dataclass(frozen=True)
class ModelAllocation:
    """One model's share of a joint multi-model plan."""

    model_name: str
    target_qps: float
    config: HeterogeneousConfig
    upper_bound: float
    cost_per_hour: float
    #: True when the selected configuration's upper bound covers the demand target.
    demand_met: bool


@dataclass(frozen=True)
class MultiModelPlan:
    """Result of one joint planning pass over N co-located models."""

    budget_per_hour: float
    allocations: Tuple[ModelAllocation, ...]
    search_space_size: int
    planning_seconds: float
    #: True when the joint selection fit the shared budget directly; False when the
    #: planner had to fall back to a proportional budget split.
    within_budget: bool

    @property
    def total_cost_per_hour(self) -> float:
        return sum(a.cost_per_hour for a in self.allocations)

    @property
    def meets_all_targets(self) -> bool:
        return all(a.demand_met for a in self.allocations)

    def allocation_of(self, model_name: str) -> ModelAllocation:
        for allocation in self.allocations:
            if allocation.model_name == model_name:
                return allocation
        raise KeyError(f"no allocation for model {model_name!r} in the joint plan")

    def configs(self) -> Dict[str, HeterogeneousConfig]:
        """Per-model configurations, in allocation order (feeds MultiModelCluster)."""
        return {a.model_name: a.config for a in self.allocations}


class MultiModelKairosPlanner:
    """Joint configuration planning for N models sharing one dollar budget.

    Where the single-model :class:`KairosPlanner` maximizes one model's throughput
    upper bound under the full budget, the joint planner answers the multi-tenant
    question: *given each model's offered load, what is the cheapest per-model
    allocation whose Eq. 15 upper bound still covers every model's demand?*  For each
    model it ranks the shared configuration space with the vectorized
    ``upper_bounds_batch`` and picks the cheapest demand-feasible configuration
    (ties: highest bound, then enumeration order).  Because co-located models only
    provision what their own demand needs, the joint plan undercuts independently
    planned per-model clusters that each spend a fixed budget share (the Fig. 17
    scenario).

    If the cheapest demand-feasible selections still exceed the shared budget, the
    planner falls back to a deterministic proportional split (budget shares
    proportional to demand targets) of single-model :class:`KairosPlanner` passes and
    flags the plan ``within_budget=False``.
    """

    def __init__(
        self,
        models: Sequence[Union[str, MLModel]],
        budget_per_hour: float,
        *,
        profiles: Optional[ProfileRegistry] = None,
        catalog: Optional[InstanceCatalog] = None,
        batch_samples_by_model: Optional[Dict[str, Sequence[int]]] = None,
        batch_distribution_by_model: Optional[Dict[str, BatchSizeDistribution]] = None,
        num_monitor_samples: int = 10_000,
        demand_headroom: Union[float, Mapping[str, float]] = 1.0,
        rng: RngLike = None,
        min_base_count: int = 0,
        max_per_type: Optional[int] = None,
    ):
        check_positive(budget_per_hour, "budget_per_hour")
        if not models:
            raise ValueError("need at least one model")
        self.profiles = profiles if profiles is not None else default_profile_registry()
        self.catalog = catalog if catalog is not None else self.profiles.catalog
        self.models: List[MLModel] = [
            m if isinstance(m, MLModel) else self.profiles.models[m] for m in models
        ]
        names = [m.name for m in self.models]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate models in the joint planner: {names}")
        self.budget_per_hour = float(budget_per_hour)
        # Per-model headroom over the demand target: Eq. 15 is an *upper* bound on the
        # allowable throughput, and how loose it is differs per model (tight-QoS models
        # lose more of the bound to queueing), so the factor may be a mapping.
        if isinstance(demand_headroom, Mapping):
            self.demand_headroom: Dict[str, float] = {
                name: float(demand_headroom.get(name, 1.0)) for name in names
            }
        else:
            self.demand_headroom = {name: float(demand_headroom) for name in names}
        for name, factor in self.demand_headroom.items():
            if factor < 1.0:
                raise ValueError(
                    f"demand_headroom for {name!r} must be >= 1 "
                    "(provision at least the demand)"
                )
        self.min_base_count = min_base_count
        self.max_per_type = max_per_type
        gen = ensure_rng(rng)
        samples_by_model = dict(batch_samples_by_model or {})
        dist_by_model = dict(batch_distribution_by_model or {})
        self.batch_samples_by_model: Dict[str, np.ndarray] = {}
        self.estimators: Dict[str, ThroughputUpperBoundEstimator] = {}
        for model in self.models:
            samples = samples_by_model.get(model.name)
            if samples is None:
                dist = dist_by_model.get(model.name)
                if dist is None:
                    dist = production_batch_distribution(model.max_batch_size)
                samples = dist.sample(num_monitor_samples, gen)
            samples = np.asarray(samples, dtype=int)
            self.batch_samples_by_model[model.name] = samples
            self.estimators[model.name] = ThroughputUpperBoundEstimator(
                self.profiles, model, samples, catalog=self.catalog
            )

    @property
    def model_names(self) -> List[str]:
        return [m.name for m in self.models]

    def enumerate(self) -> List[HeterogeneousConfig]:
        """The shared configuration space: everything affordable under the full budget.

        One model alone may spend up to the whole budget (another model's demand can
        be near zero), so each model ranks the same space; the budget check applies to
        the *sum* of the selections.
        """
        return enumerate_configs(
            self.budget_per_hour,
            self.catalog,
            min_base_count=self.min_base_count,
            max_per_type=self.max_per_type,
        )

    def update_batch_samples(self, model_name: str, batch_samples: Sequence[int]) -> None:
        """Swap one model's monitored window in place (re-plans keep the cutoff table)."""
        samples = np.asarray(batch_samples, dtype=int)
        self.estimators[model_name].update_samples(samples)
        self.batch_samples_by_model[model_name] = samples

    def plan_joint(self, target_qps: Mapping[str, float]) -> MultiModelPlan:
        """Select per-model configurations covering every model's demand target.

        ``target_qps`` maps every registered model to its offered load; the effective
        requirement is ``target * demand_headroom``.
        """
        start = time.perf_counter()
        missing = [m.name for m in self.models if m.name not in target_qps]
        if missing:
            raise KeyError(f"no demand target for models: {missing}")
        space = self.enumerate()
        if not space:
            raise ValueError(
                f"no configuration fits the budget of {self.budget_per_hour}$/hr"
            )
        costs = np.asarray([c.cost_per_hour() for c in space], dtype=float)
        order_keys = np.arange(len(space))

        allocations: List[ModelAllocation] = []
        for model in self.models:
            target = float(target_qps[model.name])
            check_non_negative(target, f"demand target for {model.name}")
            required = target * self.demand_headroom[model.name]
            bounds = self.estimators[model.name].upper_bounds_batch(space)
            feasible = bounds >= required - 1e-9
            if np.any(feasible):
                idx_pool = np.nonzero(feasible)[0]
                # cheapest first; ties by highest bound, then enumeration order
                pick = idx_pool[
                    np.lexsort(
                        (order_keys[idx_pool], -bounds[idx_pool], costs[idx_pool])
                    )[0]
                ]
                demand_met = True
            else:
                # demand not coverable even with the whole budget: best effort
                pick = int(np.lexsort((order_keys, costs, -bounds))[0])
                demand_met = False
            allocations.append(
                ModelAllocation(
                    model_name=model.name,
                    target_qps=target,
                    config=space[int(pick)],
                    upper_bound=float(bounds[int(pick)]),
                    cost_per_hour=float(costs[int(pick)]),
                    demand_met=demand_met,
                )
            )

        total = sum(a.cost_per_hour for a in allocations)
        within_budget = total <= self.budget_per_hour + 1e-9
        if not within_budget:
            allocations = self._proportional_split(target_qps)
        elapsed = time.perf_counter() - start
        return MultiModelPlan(
            budget_per_hour=self.budget_per_hour,
            allocations=tuple(allocations),
            search_space_size=len(space),
            planning_seconds=elapsed,
            within_budget=within_budget,
        )

    def _proportional_split(
        self, target_qps: Mapping[str, float]
    ) -> List[ModelAllocation]:
        """Fallback: split the budget proportionally to demand, plan each model alone."""
        cheapest = min(t.price_per_hour for t in self.catalog.types)
        total_target = sum(float(target_qps[m.name]) for m in self.models)
        allocations: List[ModelAllocation] = []
        for model in self.models:
            target = float(target_qps[model.name])
            share = target / total_target if total_target > 0 else 1.0 / len(self.models)
            budget = max(self.budget_per_hour * share, cheapest)
            planner = KairosPlanner(
                model,
                budget,
                profiles=self.profiles,
                catalog=self.catalog,
                batch_samples=self.batch_samples_by_model[model.name],
                min_base_count=self.min_base_count,
                max_per_type=self.max_per_type,
            )
            plan = planner.plan()
            required = target * self.demand_headroom[model.name]
            allocations.append(
                ModelAllocation(
                    model_name=model.name,
                    target_qps=target,
                    config=plan.selected_config,
                    upper_bound=plan.selected_upper_bound,
                    cost_per_hour=plan.selected_config.cost_per_hour(),
                    demand_met=plan.selected_upper_bound >= required - 1e-9,
                )
            )
        return allocations

    # -- mixed-market joint planning -----------------------------------------------------
    def plan_joint_mixed(
        self,
        target_qps: Mapping[str, float],
        market: Optional[SpotMarket],
        *,
        planning_horizon_ms: float = MS_PER_HOUR,
        ondemand_floor: float = 0.5,
        max_spot_per_type: Optional[int] = None,
    ) -> "MultiModelMixedPlan":
        """Joint risk-aware allocation over on-demand *and* spot capacity.

        The mixed-market generalization of :meth:`plan_joint`: every model picks the
        cheapest on-demand + spot pair whose risk-discounted effective bound covers
        its demand target (see :meth:`SpotAwareKairosPlanner.plan_mixed` for the
        selection semantics — same availability discount, same on-demand floor),
        and the shared budget check applies to the *sum* of effective $/hr burn
        rates.  Over-budget joint selections fall back to a deterministic
        proportional budget split, flagged ``within_budget=False``.
        """
        start = time.perf_counter()
        missing = [m.name for m in self.models if m.name not in target_qps]
        if missing:
            raise KeyError(f"no demand target for models: {missing}")
        if not 0.0 <= ondemand_floor <= 1.0:
            raise ValueError("ondemand_floor must lie in [0, 1]")
        space, costs, spot_space, spot_costs, availability = _mixed_candidates(
            self.budget_per_hour,
            self.catalog,
            market,
            planning_horizon_ms,
            max_per_type=self.max_per_type,
            max_spot_per_type=max_spot_per_type,
            min_base_count=self.min_base_count,
        )
        allocations: List[MixedModelAllocation] = []
        for model in self.models:
            target = float(target_qps[model.name])
            check_non_negative(target, f"demand target for {model.name}")
            required = target * self.demand_headroom[model.name]
            estimator = self.estimators[model.name]
            allocations.append(
                _mixed_allocation(
                    model.name,
                    target,
                    required,
                    required * ondemand_floor,
                    self.budget_per_hour,
                    estimator.upper_bounds_batch(space),
                    costs,
                    space,
                    estimator.upper_bounds_batch(spot_space),
                    spot_costs,
                    spot_space,
                    availability,
                )
            )
        total = math.fsum(a.cost_per_hour for a in allocations)
        within_budget = total <= self.budget_per_hour + 1e-9
        space_size = len(space) + len(spot_space)
        if not within_budget:
            allocations, space_size = self._proportional_split_mixed(
                target_qps,
                market,
                planning_horizon_ms,
                ondemand_floor,
                max_spot_per_type,
            )
        elapsed = time.perf_counter() - start
        return MultiModelMixedPlan(
            budget_per_hour=self.budget_per_hour,
            allocations=tuple(allocations),
            search_space_size=space_size,
            planning_seconds=elapsed,
            within_budget=within_budget,
        )

    def _proportional_split_mixed(
        self,
        target_qps: Mapping[str, float],
        market: Optional[SpotMarket],
        planning_horizon_ms: float,
        ondemand_floor: float,
        max_spot_per_type: Optional[int],
    ) -> Tuple[List["MixedModelAllocation"], int]:
        """Fallback: split the budget proportionally to demand, mixed-plan each alone.

        Returns the allocations plus the total size of the per-share candidate
        spaces actually searched (the full-budget spaces were abandoned).
        """
        cheapest = min(t.price_per_hour for t in self.catalog.types)
        total_target = sum(float(target_qps[m.name]) for m in self.models)
        allocations: List[MixedModelAllocation] = []
        space_size = 0
        for model in self.models:
            target = float(target_qps[model.name])
            share = target / total_target if total_target > 0 else 1.0 / len(self.models)
            budget = max(self.budget_per_hour * share, cheapest)
            required = target * self.demand_headroom[model.name]
            space, costs, spot_space, spot_costs, availability = _mixed_candidates(
                budget,
                self.catalog,
                market,
                planning_horizon_ms,
                max_per_type=self.max_per_type,
                max_spot_per_type=max_spot_per_type,
                min_base_count=self.min_base_count,
            )
            estimator = self.estimators[model.name]
            space_size += len(space) + len(spot_space)
            allocations.append(
                _mixed_allocation(
                    model.name,
                    target,
                    required,
                    required * ondemand_floor,
                    budget,
                    estimator.upper_bounds_batch(space),
                    costs,
                    space,
                    estimator.upper_bounds_batch(spot_space),
                    spot_costs,
                    spot_space,
                    availability,
                )
            )
        return allocations, space_size


# ---------------------------------------------------------------------------------------
# Risk-aware mixed-market planning: on-demand + discounted preemptible capacity
# ---------------------------------------------------------------------------------------

def enumerate_spot_configs(
    budget_per_hour: float,
    catalog: InstanceCatalog,
    market: SpotMarket,
    *,
    max_per_type: Optional[int] = None,
) -> List[HeterogeneousConfig]:
    """All spot allocations whose *discounted* cost fits ``budget_per_hour``.

    Counts range only over the types the market offers (zeros elsewhere, over the
    same catalog object so the vectorized bound path applies); the empty allocation
    is included — "buy no spot" is always a candidate.
    """
    check_positive(budget_per_hour, "budget_per_hour")
    offered = [name for name in catalog.names if market.offers(name)]
    configs: List[HeterogeneousConfig] = []
    counts: Dict[str, int] = {}

    def recurse(idx: int, remaining: float) -> None:
        if idx == len(offered):
            configs.append(HeterogeneousConfig.from_mapping(counts, catalog))
            return
        name = offered[idx]
        price = catalog[name].price_per_hour * market.price_multiplier(name)
        cap = int(math.floor(remaining / price + 1e-9))
        if max_per_type is not None:
            cap = min(cap, max_per_type)
        for c in range(max(cap, 0) + 1):
            counts[name] = c
            recurse(idx + 1, remaining - c * price)
        counts[name] = 0

    recurse(0, budget_per_hour)
    return configs


@dataclass(frozen=True)
class MixedModelAllocation:
    """One mixed on-demand + spot selection (one model's share of a joint plan).

    ``effective_bound`` is the planner's risk-discounted capacity estimate: the
    on-demand portion's full Eq. 15 bound plus the spot portion's bound scaled by
    its expected availability over the planning horizon.  ``cost_per_hour`` is the
    expected burn rate — on-demand at list price, spot at the discounted rate.
    """

    model_name: str
    target_qps: float
    ondemand_config: HeterogeneousConfig
    spot_config: HeterogeneousConfig
    ondemand_bound: float
    spot_bound: float
    availability: float
    effective_bound: float
    ondemand_cost_per_hour: float
    spot_cost_per_hour: float
    demand_met: bool
    floor_met: bool

    @property
    def cost_per_hour(self) -> float:
        """Total expected $/hr of the mixed allocation."""
        return self.ondemand_cost_per_hour + self.spot_cost_per_hour

    @property
    def has_spot(self) -> bool:
        return not self.spot_config.is_empty()

    @property
    def combined_config(self) -> HeterogeneousConfig:
        """On-demand + spot counts summed (what the cluster physically instantiates)."""
        combined = {
            name: od + spot
            for (name, od), (_, spot) in zip(self.ondemand_config, self.spot_config)
        }
        return HeterogeneousConfig.from_mapping(combined, self.ondemand_config.catalog)


@dataclass(frozen=True)
class MixedMarketPlan:
    """Result of one single-model risk-aware mixed-market planning pass.

    A thin wrapper over the selected :class:`MixedModelAllocation` (every selection
    field reads through to it) plus the pass-level diagnostics.
    """

    budget_per_hour: float
    allocation: MixedModelAllocation
    search_space_size: int
    planning_seconds: float

    # -- allocation delegation (the selection surface) -----------------------------------
    @property
    def model_name(self) -> str:
        return self.allocation.model_name

    @property
    def target_qps(self) -> float:
        return self.allocation.target_qps

    @property
    def ondemand_config(self) -> HeterogeneousConfig:
        return self.allocation.ondemand_config

    @property
    def spot_config(self) -> HeterogeneousConfig:
        return self.allocation.spot_config

    @property
    def ondemand_bound(self) -> float:
        return self.allocation.ondemand_bound

    @property
    def spot_bound(self) -> float:
        return self.allocation.spot_bound

    @property
    def availability(self) -> float:
        return self.allocation.availability

    @property
    def effective_bound(self) -> float:
        return self.allocation.effective_bound

    @property
    def ondemand_cost_per_hour(self) -> float:
        return self.allocation.ondemand_cost_per_hour

    @property
    def spot_cost_per_hour(self) -> float:
        return self.allocation.spot_cost_per_hour

    @property
    def demand_met(self) -> bool:
        return self.allocation.demand_met

    @property
    def floor_met(self) -> bool:
        return self.allocation.floor_met

    @property
    def cost_per_hour(self) -> float:
        return self.allocation.cost_per_hour

    @property
    def has_spot(self) -> bool:
        return self.allocation.has_spot

    @property
    def combined_config(self) -> HeterogeneousConfig:
        return self.allocation.combined_config


@dataclass(frozen=True)
class MultiModelMixedPlan:
    """Result of one joint mixed-market planning pass over N co-located models."""

    budget_per_hour: float
    allocations: Tuple[MixedModelAllocation, ...]
    search_space_size: int
    planning_seconds: float
    within_budget: bool

    @property
    def total_cost_per_hour(self) -> float:
        return math.fsum(a.cost_per_hour for a in self.allocations)

    @property
    def meets_all_targets(self) -> bool:
        return all(a.demand_met for a in self.allocations)

    def allocation_of(self, model_name: str) -> MixedModelAllocation:
        for allocation in self.allocations:
            if allocation.model_name == model_name:
                return allocation
        raise KeyError(f"no allocation for model {model_name!r} in the joint plan")


class _MixedSelection(NamedTuple):
    od_index: int
    spot_index: int
    effective_bound: float
    demand_met: bool
    floor_met: bool


def _spot_availability(
    spot_space: Sequence[HeterogeneousConfig],
    catalog: InstanceCatalog,
    market: Optional[SpotMarket],
    horizon_ms: float,
) -> np.ndarray:
    """Per-config availability discount: the worst (minimum) over the types present.

    Conservative by construction — a mixed-type spot pool is only credited with the
    availability of its flakiest member.  The empty allocation scores 1.0.
    """
    if market is None:
        return np.ones(len(spot_space), dtype=float)
    per_type = np.asarray(
        [
            market.expected_availability(name, horizon_ms) if market.offers(name) else 1.0
            for name in catalog.names
        ],
        dtype=float,
    )
    counts = np.asarray([c.counts for c in spot_space], dtype=int)
    if counts.size == 0:
        return np.ones(len(spot_space), dtype=float)
    masked = np.where(counts > 0, per_type[None, :], np.inf)
    values = masked.min(axis=1)
    return np.where(np.isfinite(values), values, 1.0)


def _mixed_candidates(
    budget_per_hour: float,
    catalog: InstanceCatalog,
    market: Optional[SpotMarket],
    planning_horizon_ms: float,
    *,
    max_per_type: Optional[int],
    max_spot_per_type: Optional[int],
    min_base_count: int,
) -> Tuple[List[HeterogeneousConfig], np.ndarray, List[HeterogeneousConfig], np.ndarray, np.ndarray]:
    """The two candidate spaces of a mixed plan plus their cost/availability vectors."""
    space = enumerate_configs(
        budget_per_hour,
        catalog,
        min_base_count=min_base_count,
        max_per_type=max_per_type,
    )
    if not space:
        raise ValueError(f"no configuration fits the budget of {budget_per_hour}$/hr")
    costs = np.asarray([c.cost_per_hour() for c in space], dtype=float)
    if market is not None and len(market):
        spot_space = enumerate_spot_configs(
            budget_per_hour, catalog, market, max_per_type=max_spot_per_type
        )
        multipliers = np.asarray(
            [
                market.price_multiplier(name) if market.offers(name) else 1.0
                for name in catalog.names
            ],
            dtype=float,
        )
        prices = np.asarray(catalog.price_vector(), dtype=float) * multipliers
        spot_counts = np.asarray([c.counts for c in spot_space], dtype=int)
        spot_costs = spot_counts @ prices
    else:
        spot_space = [HeterogeneousConfig.empty(catalog)]
        spot_costs = np.zeros(1, dtype=float)
    availability = _spot_availability(spot_space, catalog, market, planning_horizon_ms)
    return space, costs, spot_space, spot_costs, availability


def _select_mixed(
    bounds: np.ndarray,
    costs: np.ndarray,
    disc_spot_bounds: np.ndarray,
    spot_costs: np.ndarray,
    required: float,
    floor_required: float,
    budget_per_hour: float,
) -> _MixedSelection:
    """Pick the cheapest (on-demand, spot) pair covering ``required``.

    Fully vectorized: spot candidates are sorted by discounted cost with a running
    bound maximum, so "cheapest spot allocation reaching bound x" is one
    ``searchsorted``; each on-demand candidate then pairs with exactly that
    allocation for its shortfall.  Ties break toward the highest effective bound,
    then enumeration order.  When nothing covers the demand (or the floor), the
    selection degrades to best effort and flags ``demand_met=False``.
    """
    n_od = len(bounds)
    n_spot = len(spot_costs)
    od_keys = np.arange(n_od)
    spot_keys = np.arange(n_spot)
    order = np.lexsort((spot_keys, -disc_spot_bounds, spot_costs))
    sorted_costs = spot_costs[order]
    sorted_disc = disc_spot_bounds[order]
    run_max = np.maximum.accumulate(sorted_disc)

    shortfall = np.maximum(0.0, required - bounds)
    positions = np.searchsorted(run_max, np.maximum(shortfall - 1e-9, 0.0), side="left")
    coverable = positions < n_spot
    safe_pos = np.minimum(positions, n_spot - 1)
    totals = np.where(coverable, costs + sorted_costs[safe_pos], np.inf)
    effective = np.where(coverable, bounds + sorted_disc[safe_pos], bounds)

    feasible = (
        (bounds >= floor_required - 1e-9)
        & coverable
        & (totals <= budget_per_hour + 1e-9)
    )
    if np.any(feasible):
        pool = np.nonzero(feasible)[0]
        pick = pool[
            np.lexsort((od_keys[pool], -effective[pool], totals[pool]))[0]
        ]
        return _MixedSelection(
            od_index=int(pick),
            spot_index=int(order[safe_pos[pick]]),
            effective_bound=float(effective[pick]),
            demand_met=True,
            floor_met=True,
        )

    # Best effort: the highest-bound on-demand config (ties: cheapest, then order),
    # topped up with the best affordable spot allocation.
    od_pick = int(np.lexsort((od_keys, costs, -bounds))[0])
    remaining = budget_per_hour - costs[od_pick]
    affordable = spot_costs <= remaining + 1e-9
    if np.any(affordable):
        pool = np.nonzero(affordable)[0]
        spot_pick = int(
            pool[np.lexsort((spot_keys[pool], spot_costs[pool], -disc_spot_bounds[pool]))[0]]
        )
    else:  # pragma: no cover - the empty allocation always fits
        spot_pick = int(np.argmin(spot_costs))
    eff = float(bounds[od_pick] + disc_spot_bounds[spot_pick])
    return _MixedSelection(
        od_index=od_pick,
        spot_index=spot_pick,
        effective_bound=eff,
        demand_met=eff >= required - 1e-9,
        floor_met=bool(bounds[od_pick] >= floor_required - 1e-9),
    )


def _mixed_allocation(
    model_name: str,
    target: float,
    required: float,
    floor_required: float,
    budget_per_hour: float,
    bounds: np.ndarray,
    costs: np.ndarray,
    space: Sequence[HeterogeneousConfig],
    spot_bounds: np.ndarray,
    spot_costs: np.ndarray,
    spot_space: Sequence[HeterogeneousConfig],
    availability: np.ndarray,
) -> MixedModelAllocation:
    """Run the mixed selection and package one model's allocation."""
    selection = _select_mixed(
        bounds,
        costs,
        availability * spot_bounds,
        spot_costs,
        required,
        floor_required,
        budget_per_hour,
    )
    return MixedModelAllocation(
        model_name=model_name,
        target_qps=target,
        ondemand_config=space[selection.od_index],
        spot_config=spot_space[selection.spot_index],
        ondemand_bound=float(bounds[selection.od_index]),
        spot_bound=float(spot_bounds[selection.spot_index]),
        availability=float(availability[selection.spot_index]),
        effective_bound=selection.effective_bound,
        ondemand_cost_per_hour=float(costs[selection.od_index]),
        spot_cost_per_hour=float(spot_costs[selection.spot_index]),
        demand_met=selection.demand_met,
        floor_met=selection.floor_met,
    )


class SpotAwareKairosPlanner(KairosPlanner):
    """Rank mixed on-demand + spot allocations against a demand target.

    Where :class:`KairosPlanner` maximizes one market's throughput bound under the
    budget, the risk-aware planner answers the spot-market question: *what is the
    cheapest combination of reliable and preemptible capacity whose risk-discounted
    Eq. 15 bound still covers the demand?*  Spot capacity is cheap but revocable, so
    its bound is discounted by the market's expected availability over the planning
    horizon, and a **minimum on-demand floor** (``ondemand_floor`` of the required
    demand must be coverable by the on-demand portion alone) guarantees QoS survives
    a worst-case correlated preemption burst that reclaims every spot instance at
    once.  Both candidate spaces are ranked through the vectorized
    ``upper_bounds_batch`` path.

    With ``market=None`` (or an empty market) the planner degenerates to the
    cheapest all-on-demand allocation covering the demand — the baseline arm of the
    fig18 scenario.
    """

    def __init__(
        self,
        model: Union[str, MLModel],
        budget_per_hour: float,
        *,
        market: Optional[SpotMarket] = None,
        planning_horizon_ms: float = MS_PER_HOUR,
        ondemand_floor: float = 0.5,
        demand_headroom: float = 1.0,
        max_spot_per_type: Optional[int] = None,
        **kwargs,
    ):
        super().__init__(model, budget_per_hour, **kwargs)
        check_positive(planning_horizon_ms, "planning_horizon_ms")
        if not 0.0 <= ondemand_floor <= 1.0:
            raise ValueError("ondemand_floor must lie in [0, 1]")
        if demand_headroom < 1.0:
            raise ValueError("demand_headroom must be >= 1 (provision at least the demand)")
        self.market = market
        self.planning_horizon_ms = float(planning_horizon_ms)
        self.ondemand_floor = float(ondemand_floor)
        self.demand_headroom = float(demand_headroom)
        self.max_spot_per_type = max_spot_per_type

    def plan_mixed(self, target_qps: float) -> MixedMarketPlan:
        """Select the cheapest mixed allocation covering ``target_qps``."""
        start = time.perf_counter()
        target = float(target_qps)
        check_non_negative(target, "target_qps")
        required = target * self.demand_headroom
        space, costs, spot_space, spot_costs, availability = _mixed_candidates(
            self.budget_per_hour,
            self.catalog,
            self.market,
            self.planning_horizon_ms,
            max_per_type=self.max_per_type,
            max_spot_per_type=self.max_spot_per_type,
            min_base_count=self.min_base_count,
        )
        allocation = _mixed_allocation(
            self.model.name,
            target,
            required,
            required * self.ondemand_floor,
            self.budget_per_hour,
            self.estimator.upper_bounds_batch(space),
            costs,
            space,
            self.estimator.upper_bounds_batch(spot_space),
            spot_costs,
            spot_space,
            availability,
        )
        elapsed = time.perf_counter() - start
        return MixedMarketPlan(
            budget_per_hour=self.budget_per_hour,
            allocation=allocation,
            search_space_size=len(space) + len(spot_space),
            planning_seconds=elapsed,
        )
