"""Throughput upper-bound estimation (paper Sec. 5.2, Eqs. 9-15).

Evaluating the real allowable throughput of a configuration is expensive (it requires
allocating instances and driving load).  Kairos instead computes, in closed form, an
*upper bound* on the throughput any query-distribution policy could achieve on that
configuration, and uses the bound only to rank configurations.

The model: partition the query mix at the auxiliary types' QoS cutoff batch size ``s``.
A fraction ``f`` of queries (those with batch <= s) can run on auxiliary instances at
their standalone rate ``Q_a``; the remaining ``1 - f`` *must* run on base instances,
which serve those larger-than-``s`` queries at rate ``Q_b^{s+}``.  Whichever side
saturates first is the bottleneck:

* base bottleneck (``u * Q_b^{s+} <= (1-f)/f * sum_i v_i Q_a^i``): the bound is
  ``u * Q_b^{s+} / (1 - f)`` (Eqs. 9/12);
* auxiliary bottleneck: the bound is ``sum_i v_i Q_a^i / f`` plus the base types'
  left-over slack converted back into full-mix throughput (Eqs. 11/13/15).

With several auxiliary types the paper approximates all of them as sharing the largest
cutoff ``s`` (and hence the largest fraction ``f' = max_i f_i``), which only makes the
bound more optimistic — rankings are preserved (Sec. 8.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import InstanceCatalog
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive
from repro.workload.batch_sizes import BatchSizeDistribution


@dataclass(frozen=True)
class UpperBoundInputs:
    """The per-configuration rates entering Eq. 15 (useful for reporting and tests).

    ``aux`` holds one ``(count, q_a)`` pair per auxiliary type with a non-zero count.
    """

    base_count: int
    q_b: float
    q_b_splus: float
    aux: Tuple[Tuple[int, float], ...]
    f: float
    s: int


def upper_bound_from_rates(
    base_count: int,
    q_b: float,
    q_b_splus: float,
    aux: Sequence[Tuple[int, float]],
    f: float,
) -> float:
    """Eq. 15 evaluated directly from rates (the Fig. 7 worked examples call this).

    Parameters
    ----------
    base_count:
        ``u`` — number of base instances.
    q_b:
        Standalone full-mix throughput of one base instance.
    q_b_splus:
        Throughput of one base instance on the larger-than-``s`` queries only.
    aux:
        ``(v_i, Q_a^i)`` pairs for the auxiliary types present.
    f:
        Fraction of queries with batch size at or below the cutoff ``s``.
    """
    if base_count < 0:
        raise ValueError("base_count must be non-negative")
    if not 0.0 <= f <= 1.0:
        raise ValueError(f"f must lie in [0, 1], got {f}")
    for v, q_a in aux:
        if v < 0 or q_a < 0:
            raise ValueError("auxiliary counts and rates must be non-negative")
    if q_b < 0 or q_b_splus < 0:
        raise ValueError("base rates must be non-negative")

    aux_rate = float(sum(v * q_a for v, q_a in aux))

    # Degenerate cases ------------------------------------------------------------------
    if base_count == 0 or q_b <= 0:
        # Without base instances only the f-fraction of small queries can ever be
        # served within QoS; queries above the cutoff make the tail violate QoS at any
        # sustained rate, so the allowable throughput is zero unless f == 1.
        if f >= 1.0 - 1e-12:
            return aux_rate
        return 0.0
    if aux_rate <= 0:
        # Homogeneous base-only pool: the bound is its aggregate full-mix throughput.
        return base_count * q_b
    if f <= 0.0:
        # No query fits the auxiliary types: they contribute nothing.
        return base_count * q_b
    if f >= 1.0 - 1e-12:
        # Every query fits the auxiliary types; the base keeps its full-mix rate.
        return aux_rate + base_count * q_b

    offload_rate = (1.0 - f) / f * aux_rate  # Eq. 14's C term
    base_splus_capacity = base_count * q_b_splus

    if base_splus_capacity <= offload_rate:
        # Base instances are the bottleneck (Eq. 9 / 12).
        value = base_splus_capacity / (1.0 - f)
    else:
        # Auxiliary instances are the bottleneck; base slack serves extra full-mix
        # queries (Eq. 11 / 13 / 15).
        slack_ratio = (base_splus_capacity - offload_rate) / base_splus_capacity
        value = aux_rate / f + slack_ratio * base_count * q_b
    # The pool can always ignore its auxiliary instances and serve the full mix on the
    # base instances alone, so no valid upper bound can fall below u * Q_b.  (The paper's
    # closed form can dip below that in extreme base-bottleneck corners; flooring it
    # keeps the bound sound and monotone without affecting the rankings it produces.)
    return max(value, base_count * q_b)


def _bounds_for_group(
    base_counts: np.ndarray,
    q_b: float,
    q_b_splus: float,
    aux_rate: np.ndarray,
    f: float,
) -> np.ndarray:
    """Vectorized :func:`upper_bound_from_rates` for configurations sharing a cutoff.

    ``f``, ``q_b`` and ``q_b_splus`` are scalars for the whole group; ``base_counts``
    and ``aux_rate`` vary per configuration.  The branch structure mirrors the scalar
    function case for case so results are bit-identical.
    """
    values = np.empty(base_counts.shape, dtype=float)

    # Degenerate: no base instances (q_b > 0 is guaranteed by _mean_rate).
    no_base = (base_counts == 0) | (q_b <= 0)
    values[no_base] = aux_rate[no_base] if f >= 1.0 - 1e-12 else 0.0
    rest = ~no_base
    if not np.any(rest):
        return values

    if f <= 0.0:
        # No query fits the auxiliary types (also covers aux_rate == 0: same formula).
        values[rest] = base_counts[rest] * q_b
        return values
    if f >= 1.0 - 1e-12:
        # Every query fits the auxiliary types; adding 0 when aux_rate == 0 matches
        # the scalar's homogeneous branch exactly.
        values[rest] = aux_rate[rest] + base_counts[rest] * q_b
        return values

    # Configurations whose present aux types all have rate 0 reduce to base-only.
    no_aux_rate = rest & (aux_rate <= 0)
    values[no_aux_rate] = base_counts[no_aux_rate] * q_b
    main = rest & ~no_aux_rate
    if not np.any(main):
        return values

    base = base_counts[main]
    rate = aux_rate[main]
    offload_rate = (1.0 - f) / f * rate  # Eq. 14's C term
    base_splus_capacity = base * q_b_splus
    base_bottleneck = base_splus_capacity <= offload_rate
    with np.errstate(divide="ignore", invalid="ignore"):
        slack_ratio = (base_splus_capacity - offload_rate) / base_splus_capacity
        value = np.where(
            base_bottleneck,
            base_splus_capacity / (1.0 - f),  # Eq. 9 / 12
            rate / f + slack_ratio * base * q_b,  # Eq. 11 / 13 / 15
        )
    values[main] = np.maximum(value, base * q_b)  # same soundness floor as the scalar
    return values


class ThroughputUpperBoundEstimator:
    """Computes Eq. 15 upper bounds for arbitrary configurations of one model.

    The estimator needs (a) the latency profiles and (b) the query-size mix.  The mix is
    supplied as a sample of observed batch sizes — in the real system Kairos obtains it
    by monitoring the most recent queries (the paper uses the last ~10000) — or drawn
    from a :class:`~repro.workload.batch_sizes.BatchSizeDistribution` via
    :meth:`from_distribution`.
    """

    def __init__(
        self,
        profiles: ProfileRegistry,
        model: Union[str, MLModel],
        batch_samples: Sequence[int],
        *,
        catalog: Optional[InstanceCatalog] = None,
    ):
        self.profiles = profiles
        self.model = model if isinstance(model, MLModel) else profiles.models[model]
        self.catalog = catalog if catalog is not None else profiles.catalog
        samples = np.asarray(batch_samples, dtype=int)
        if samples.size == 0:
            raise ValueError("batch_samples must be non-empty")
        if np.any(samples < 1):
            raise ValueError("batch sizes must be >= 1")
        self._samples = samples
        self._base_name = self.catalog.base_type.name
        # cache: cutoff s -> (f, Q_b^{s+}, {type: Q_a})
        self._cache: Dict[int, Tuple[float, float, Dict[str, float]]] = {}
        # per-type QoS cutoffs
        self._cutoffs: Dict[str, int] = {
            t.name: profiles.qos_cutoff_batch(self.model, t.name) for t in self.catalog.types
        }
        self._q_b_full = self._mean_rate(self._base_name, self._samples)

    @classmethod
    def from_distribution(
        cls,
        profiles: ProfileRegistry,
        model: Union[str, MLModel],
        distribution: BatchSizeDistribution,
        *,
        num_samples: int = 10_000,
        rng: RngLike = None,
        catalog: Optional[InstanceCatalog] = None,
    ) -> "ThroughputUpperBoundEstimator":
        """Build the estimator by monitoring ``num_samples`` queries from a distribution."""
        samples = distribution.sample(num_samples, ensure_rng(rng))
        return cls(profiles, model, samples, catalog=catalog)

    # -- public API ---------------------------------------------------------------------
    @property
    def base_type_name(self) -> str:
        return self._base_name

    def update_samples(self, batch_samples: Sequence[int]) -> None:
        """Replace the monitored query-size window in place.

        Only the sample-dependent state is recomputed (the per-cutoff rate cache and
        the base full-mix rate); the per-type QoS cutoff table depends solely on the
        profiles and the model, so re-plans keep it instead of re-deriving every
        cutoff from scratch the way rebuilding the estimator would.
        """
        samples = np.asarray(batch_samples, dtype=int)
        if samples.size == 0:
            raise ValueError("batch_samples must be non-empty")
        if np.any(samples < 1):
            raise ValueError("batch sizes must be >= 1")
        self._samples = samples
        self._cache.clear()
        self._q_b_full = self._mean_rate(self._base_name, samples)

    def cutoff_of(self, type_name: str) -> int:
        """QoS cutoff batch size ``s_j`` of an instance type."""
        return self._cutoffs[type_name]

    def inputs_for(self, config: HeterogeneousConfig) -> UpperBoundInputs:
        """The Eq. 15 input rates for one configuration."""
        base_count = config.count_of(self._base_name)
        aux_counts = [
            (name, count)
            for name, count in config.as_mapping().items()
            if name != self._base_name and count > 0
        ]
        if not aux_counts:
            return UpperBoundInputs(
                base_count=base_count,
                q_b=self._q_b_full,
                q_b_splus=self._q_b_full,
                aux=(),
                f=0.0,
                s=0,
            )
        s = max(self._cutoffs[name] for name, _ in aux_counts)
        f, q_b_splus, q_a_by_type = self._rates_for_cutoff(s)
        aux = tuple((count, q_a_by_type[name]) for name, count in aux_counts)
        return UpperBoundInputs(
            base_count=base_count,
            q_b=self._q_b_full,
            q_b_splus=q_b_splus,
            aux=aux,
            f=f,
            s=s,
        )

    def upper_bound(self, config: HeterogeneousConfig) -> float:
        """``QPS_max`` of Eq. 15 for ``config``."""
        inputs = self.inputs_for(config)
        return upper_bound_from_rates(
            inputs.base_count, inputs.q_b, inputs.q_b_splus, inputs.aux, inputs.f
        )

    def upper_bounds(self, configs: Sequence[HeterogeneousConfig]) -> np.ndarray:
        """Vector of upper bounds for many configurations (vectorized fast path)."""
        return self.upper_bounds_batch(configs)

    def upper_bounds_batch(self, configs: Sequence[HeterogeneousConfig]) -> np.ndarray:
        """Eq. 15 over a whole configuration space as grouped numpy array math.

        The space is partitioned by the effective cutoff ``s`` (the maximum cutoff of
        the auxiliary types present in a configuration); all configurations sharing a
        cutoff share the same ``(f, Q_b^{s+}, Q_a)`` rates, so the bound reduces to
        arithmetic over per-group count vectors.  Produces bit-identical values to the
        scalar :meth:`upper_bound` — the planner's ranking is unchanged, only ~100x
        cheaper at Fig. 15a-scale spaces.
        """
        configs = list(configs)
        if not configs:
            return np.zeros(0, dtype=float)
        names = list(self.catalog.names)
        if not all(c.catalog is self.catalog for c in configs):
            # Identity check first: name-list comparison per config is itself hot-path
            # overhead, and enumerate_configs spaces all share one catalog object.
            if any(
                list(c.catalog.names) != names
                for c in configs
                if c.catalog is not self.catalog
            ):
                # Foreign catalogs fall back to the scalar path (name-based lookups).
                return np.asarray([self.upper_bound(c) for c in configs], dtype=float)

        counts = np.asarray([c.counts for c in configs], dtype=int)
        base_index = self.catalog.index_of(self._base_name)
        aux_indices = [i for i in range(len(names)) if i != base_index]
        aux_names = [names[i] for i in aux_indices]
        q_b = self._q_b_full

        base_counts = counts[:, base_index].astype(float)
        bounds = np.empty(len(configs), dtype=float)
        if not aux_indices:
            # Single-type catalog: every configuration is base-only.
            bounds[:] = base_counts * q_b
            return bounds

        aux_counts = counts[:, aux_indices]
        present = aux_counts > 0
        cutoffs = np.asarray([self._cutoffs[name] for name in aux_names], dtype=int)
        # effective cutoff s = max cutoff over the aux types present (-1: no aux)
        s_values = np.where(present, cutoffs[None, :], -1).max(axis=1)

        no_aux = s_values < 0
        bounds[no_aux] = base_counts[no_aux] * q_b

        for s in np.unique(s_values[~no_aux]):
            group = s_values == s
            f, q_b_splus, q_a_by_type = self._rates_for_cutoff(int(s))
            q_a = [q_a_by_type[name] for name in aux_names]
            group_counts = aux_counts[group]
            # accumulate in catalog order, matching the scalar sum term by term
            aux_rate = np.zeros(group_counts.shape[0], dtype=float)
            for k in range(len(aux_names)):
                aux_rate = aux_rate + group_counts[:, k] * q_a[k]
            bounds[group] = _bounds_for_group(
                base_counts[group], q_b, q_b_splus, aux_rate, f
            )
        return bounds

    def rank_configs(
        self, configs: Sequence[HeterogeneousConfig]
    ) -> List[Tuple[HeterogeneousConfig, float]]:
        """Configurations sorted by decreasing upper bound (ties keep input order)."""
        bounds = self.upper_bounds(configs)
        order = np.argsort(-bounds, kind="stable")
        values = bounds[order].tolist()  # bulk-convert: no per-element numpy boxing
        return [(configs[i], value) for i, value in zip(order.tolist(), values)]

    # -- internals ------------------------------------------------------------------------
    def _rates_for_cutoff(self, s: int) -> Tuple[float, float, Dict[str, float]]:
        if s in self._cache:
            return self._cache[s]
        samples = self._samples
        below = samples[samples <= s]
        above = samples[samples > s]
        f = float(below.size) / float(samples.size)
        q_b_splus = self._mean_rate(self._base_name, above) if above.size else self._q_b_full
        q_a_by_type: Dict[str, float] = {}
        for t in self.catalog.types:
            if t.name == self._base_name:
                continue
            if below.size == 0 or self._cutoffs[t.name] == 0:
                q_a_by_type[t.name] = 0.0
            else:
                q_a_by_type[t.name] = self._mean_rate(t.name, below)
        self._cache[s] = (f, q_b_splus, q_a_by_type)
        return self._cache[s]

    def _mean_rate(self, type_name: str, batches: np.ndarray) -> float:
        if batches.size == 0:
            return 0.0
        latencies = np.asarray(
            self.profiles.latency_ms(self.model, type_name, batches), dtype=float
        )
        mean = float(np.mean(latencies))
        if mean <= 0:
            raise ValueError("profiles produced non-positive latency")
        return 1000.0 / mean
