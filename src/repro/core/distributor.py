"""Kairos's query-distribution mechanism (paper Sec. 5.1).

At every scheduling point the distributor builds the heterogeneity-weighted,
QoS-penalized cost matrix over (pending queries) x (instances) and solves the resulting
rectangular min-cost bipartite matching with the Jonker-Volgenant algorithm.  The
matching maximizes the future availability of all instances combined (Eq. 2), which is
what lets Kairos keep larger, higher-speedup queries on powerful instances and pack
smaller queries onto the cheaper auxiliary instances without violating QoS (Fig. 5).

Per Eq. 6 at most one query is assigned to each instance per round; unassigned queries
remain in the central queue and their accumulated waiting time ``W_i`` tightens their
QoS constraint in later rounds, which prevents starvation (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_matrix import (
    DEFAULT_PENALTY_FACTOR,
    DEFAULT_QOS_HEADROOM,
    CostMatrix,
    build_cost_matrix,
)
from repro.core.latency_model import LatencyEstimator
from repro.sim.server import ServerInstance
from repro.solvers.assignment import solve_assignment
from repro.utils.validation import check_positive_int
from repro.workload.query import Query


@dataclass(frozen=True)
class Assignment:
    """One query-to-instance decision produced by a distribution round."""

    query: Query
    server_index: int
    predicted_usage_ms: float
    predicted_feasible: bool


@dataclass(frozen=True)
class DistributionRound:
    """Full outcome of one distribution round (assignments + the matrices behind them)."""

    assignments: Tuple[Assignment, ...]
    cost_matrix: CostMatrix
    objective_value: float

    def __len__(self) -> int:
        return len(self.assignments)


class QueryDistributor:
    """Solves the per-round query-to-instance matching.

    Parameters
    ----------
    estimator:
        Latency predictor used to build the ``L`` matrix.
    coefficients:
        Heterogeneity coefficients ``C_j`` keyed by instance-type name.
    qos_ms:
        The model's QoS target.
    solver_method:
        Assignment solver passed to :func:`repro.solvers.assignment.solve_assignment`
        (default: the from-scratch Jonker-Volgenant implementation).
    max_queries_per_round:
        Upper bound on how many pending queries enter one matching (earliest arrivals
        first).  The paper's controller solves 20x20 matchings in well under a
        millisecond; bounding the round size keeps the distributor's cost independent of
        transient queue build-up.
    """

    def __init__(
        self,
        estimator: LatencyEstimator,
        coefficients: Mapping[str, float],
        qos_ms: float,
        *,
        solver_method: str = "jv",
        qos_headroom: float = DEFAULT_QOS_HEADROOM,
        penalty_factor: float = DEFAULT_PENALTY_FACTOR,
        max_queries_per_round: Optional[int] = 64,
    ):
        if qos_ms <= 0:
            raise ValueError("qos_ms must be positive")
        self.estimator = estimator
        self.coefficients = dict(coefficients)
        self.qos_ms = float(qos_ms)
        self.solver_method = solver_method
        self.qos_headroom = float(qos_headroom)
        self.penalty_factor = float(penalty_factor)
        if max_queries_per_round is not None:
            check_positive_int(max_queries_per_round, "max_queries_per_round")
        self.max_queries_per_round = max_queries_per_round

    def distribute(
        self,
        now_ms: float,
        pending: Sequence[Query],
        servers: Sequence[ServerInstance],
    ) -> DistributionRound:
        """Match pending queries to instances at time ``now_ms``.

        Queries beyond ``max_queries_per_round`` (in arrival order) are deferred to the
        next round.  Exactly ``min(#considered queries, #servers)`` assignments are
        produced (Eq. 7).
        """
        if not pending or not servers:
            empty_matrix = build_cost_matrix(
                [], [], self.estimator, now_ms, self.qos_ms, self.coefficients
            )
            return DistributionRound(assignments=(), cost_matrix=empty_matrix, objective_value=0.0)

        considered = list(pending)
        if self.max_queries_per_round is not None and len(considered) > self.max_queries_per_round:
            considered = considered[: self.max_queries_per_round]

        matrix = build_cost_matrix(
            considered,
            servers,
            self.estimator,
            now_ms,
            self.qos_ms,
            self.coefficients,
            qos_headroom=self.qos_headroom,
            penalty_factor=self.penalty_factor,
        )
        result = solve_assignment(matrix.weighted, method=self.solver_method)

        assignments: List[Assignment] = []
        for row, col in zip(result.row_indices, result.col_indices):
            assignments.append(
                Assignment(
                    query=considered[int(row)],
                    server_index=int(col),
                    predicted_usage_ms=float(matrix.usage_ms[row, col]),
                    predicted_feasible=bool(matrix.qos_feasible[row, col]),
                )
            )
        return DistributionRound(
            assignments=tuple(assignments),
            cost_matrix=matrix,
            objective_value=float(result.total_cost),
        )
