"""Kairos's query-distribution mechanism (paper Sec. 5.1).

At every scheduling point the distributor builds the heterogeneity-weighted,
QoS-penalized cost matrix over (pending queries) x (instances) and solves the resulting
rectangular min-cost bipartite matching with the Jonker-Volgenant algorithm.  The
matching maximizes the future availability of all instances combined (Eq. 2), which is
what lets Kairos keep larger, higher-speedup queries on powerful instances and pack
smaller queries onto the cheaper auxiliary instances without violating QoS (Fig. 5).

Per Eq. 6 at most one query is assigned to each instance per round; unassigned queries
remain in the central queue and their accumulated waiting time ``W_i`` tightens their
QoS constraint in later rounds, which prevents starvation (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core import cost_matrix as cost_matrix_lib
from repro.core.cost_matrix import (
    DEFAULT_PENALTY_FACTOR,
    DEFAULT_QOS_HEADROOM,
    CostMatrix,
    RoundColumns,
    build_cost_matrix,
)
from repro.core.latency_model import LatencyEstimator
from repro.sim.server import ServerInstance
from repro.solvers.assignment import round_solver
from repro.utils.validation import check_positive_int
from repro.workload.query import Query


@dataclass(frozen=True)
class Assignment:
    """One query-to-instance decision produced by a distribution round."""

    query: Query
    server_index: int
    predicted_usage_ms: float
    predicted_feasible: bool


@dataclass(frozen=True)
class DistributionRound:
    """Full outcome of one distribution round (assignments + the matrices behind them)."""

    assignments: Tuple[Assignment, ...]
    cost_matrix: CostMatrix
    objective_value: float

    def __len__(self) -> int:
        return len(self.assignments)


class QueryDistributor:
    """Solves the per-round query-to-instance matching.

    Parameters
    ----------
    estimator:
        Latency predictor used to build the ``L`` matrix.
    coefficients:
        Heterogeneity coefficients ``C_j`` keyed by instance-type name.
    qos_ms:
        The model's QoS target.
    solver_method:
        Assignment solver passed to :func:`repro.solvers.assignment.solve_assignment`
        (default: the from-scratch Jonker-Volgenant implementation).
    max_queries_per_round:
        Upper bound on how many pending queries enter one matching (earliest arrivals
        first).  The paper's controller solves 20x20 matchings in well under a
        millisecond; bounding the round size keeps the distributor's cost independent of
        transient queue build-up.
    """

    def __init__(
        self,
        estimator: LatencyEstimator,
        coefficients: Mapping[str, float],
        qos_ms: float,
        *,
        solver_method: str = "jv",
        qos_headroom: float = DEFAULT_QOS_HEADROOM,
        penalty_factor: float = DEFAULT_PENALTY_FACTOR,
        max_queries_per_round: Optional[int] = 64,
        solver=None,
    ):
        if qos_ms <= 0:
            raise ValueError("qos_ms must be positive")
        self.estimator = estimator
        self.coefficients = dict(coefficients)
        self.qos_ms = float(qos_ms)
        self.solver_method = solver_method
        self.qos_headroom = float(qos_headroom)
        self.penalty_factor = float(penalty_factor)
        if max_queries_per_round is not None:
            check_positive_int(max_queries_per_round, "max_queries_per_round")
        self.max_queries_per_round = max_queries_per_round
        # One persistent solver: for "jv" its scratch buffers are reused across every
        # round of a simulation run (solve_many semantics).  Callers that rebuild
        # distributors mid-run (KairosPolicy's coefficient refresh) pass their own
        # long-lived solver so the scratch survives the rebuild.
        self._solver = solver if solver is not None else round_solver(solver_method)

    def distribute(
        self,
        now_ms: float,
        pending: Sequence[Query],
        servers: Sequence[ServerInstance],
    ) -> DistributionRound:
        """Match pending queries to instances at time ``now_ms``.

        Queries beyond ``max_queries_per_round`` (in arrival order) are deferred to the
        next round.  Exactly ``min(#considered queries, #servers)`` assignments are
        produced (Eq. 7).
        """
        if not pending or not servers:
            empty_matrix = build_cost_matrix(
                [], [], self.estimator, now_ms, self.qos_ms, self.coefficients
            )
            return DistributionRound(assignments=(), cost_matrix=empty_matrix, objective_value=0.0)

        considered = list(pending)
        if self.max_queries_per_round is not None and len(considered) > self.max_queries_per_round:
            considered = considered[: self.max_queries_per_round]

        matrix = build_cost_matrix(
            considered,
            servers,
            self.estimator,
            now_ms,
            self.qos_ms,
            self.coefficients,
            qos_headroom=self.qos_headroom,
            penalty_factor=self.penalty_factor,
        )
        return self._solve_round(considered, matrix)

    def distribute_prepared(
        self,
        considered: Sequence[Query],
        batches,
        waits,
        columns: RoundColumns,
    ) -> DistributionRound:
        """The incremental entry point: match pre-capped queries to prepared columns.

        ``considered``/``batches``/``waits`` come from the pending queue's memoized
        snapshot arrays (already capped at ``max_queries_per_round``), ``columns``
        from a :class:`~repro.core.cost_matrix.RoundColumnState` refresh.  Produces
        the exact round :meth:`distribute` would, element for element — only the
        Python-level re-materialization work is skipped.  Server indices in the
        result address ``columns``' filtered column space; callers map them back
        through ``columns.indices``.
        """
        matrix = cost_matrix_lib.assemble_cost_matrix(
            considered,
            self.estimator,
            self.qos_ms,
            self.coefficients,
            self.qos_headroom,
            self.penalty_factor,
            batches,
            waits,
            columns.offsets,
            columns.groups,
            columns.server_ids,
        )
        return self._solve_round(considered, matrix)

    def _solve_round(
        self, considered: Sequence[Query], matrix: CostMatrix
    ) -> DistributionRound:
        rows, cols = self._solver(matrix.weighted)
        if rows.size:
            objective = float(matrix.weighted[rows, cols].sum())
            usage_vals = matrix.usage_ms[rows, cols].tolist()
            feasible_vals = matrix.qos_feasible[rows, cols].tolist()
        else:
            objective = 0.0
            usage_vals = []
            feasible_vals = []
        assignments = tuple(
            Assignment(
                query=considered[int(row)],
                server_index=int(col),
                predicted_usage_ms=usage,
                predicted_feasible=feasible,
            )
            for row, col, usage, feasible in zip(rows, cols, usage_vals, feasible_vals)
        )
        return DistributionRound(
            assignments=assignments,
            cost_matrix=matrix,
            objective_value=objective,
        )
