"""Heterogeneity coefficients (paper Definition 1).

One second of GPU time is not worth one second of CPU time.  Kairos weights instance
usage with a per-type coefficient ``C_j in (0, 1]``: the base type gets 1 and every
other type gets the ratio of the *largest* query's latency on the base type to its
latency on that type (larger queries best expose the relative capability of the
hardware).  The paper's example: largest-query latencies of 100 / 200 / 500 ms give
coefficients 1 / 0.5 / 0.2.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Union

from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry
from repro.core.latency_model import LatencyEstimator, PerfectLatencyEstimator
from repro.utils.validation import check_positive_int


def heterogeneity_coefficients(
    estimator: LatencyEstimator,
    type_names: Sequence[str],
    base_type: str,
    *,
    reference_batch_size: int = 1000,
) -> Dict[str, float]:
    """Compute ``C_j`` for each type in ``type_names``.

    Parameters
    ----------
    estimator:
        Latency source (true profiles or the online learner).
    base_type:
        The normalization point; its coefficient is exactly 1.
    reference_batch_size:
        The "largest query the system can serve" — the paper uses the 1000-request cap.

    Returns
    -------
    Mapping of type name to coefficient, clipped into ``(0, 1]``.
    """
    check_positive_int(reference_batch_size, "reference_batch_size")
    if base_type not in type_names:
        raise ValueError(f"base type {base_type!r} is not among {list(type_names)}")
    base_latency = float(estimator.predict_ms(base_type, reference_batch_size))
    if base_latency <= 0:
        raise ValueError("base-type latency for the reference batch must be positive")
    coefficients: Dict[str, float] = {}
    for name in type_names:
        if name == base_type:
            coefficients[name] = 1.0
            continue
        latency = float(estimator.predict_ms(name, reference_batch_size))
        if latency <= 0:
            raise ValueError(f"latency for type {name!r} must be positive")
        # Definition 1 restricts C_j to (0, 1]; if a type were somehow faster than the
        # base on the largest query it is simply treated as equally important.
        coefficients[name] = min(1.0, base_latency / latency)
    return coefficients


def coefficients_from_profiles(
    profiles: ProfileRegistry,
    model: Union[str, MLModel],
    type_names: Optional[Iterable[str]] = None,
    *,
    base_type: Optional[str] = None,
    reference_batch_size: Optional[int] = None,
) -> Dict[str, float]:
    """Convenience wrapper computing coefficients straight from true profiles."""
    mdl = model if isinstance(model, MLModel) else profiles.models[model]
    names = list(type_names) if type_names is not None else profiles.catalog.names
    base = base_type if base_type is not None else profiles.catalog.base_type.name
    ref = reference_batch_size if reference_batch_size is not None else mdl.max_batch_size
    estimator = PerfectLatencyEstimator(profiles, mdl)
    return heterogeneity_coefficients(estimator, names, base, reference_batch_size=ref)
