"""Sharded-controller round-cost characterization (ROADMAP sharded-controller item).

The joint multi-model scheduling round solves one matching over the *union* of every
co-located model's pending queries and instances, so its cost grows superlinearly with
the number of tenants (the JV solver is ``O(m^2 n)`` on the union sizes).  Because an
instance can only ever serve its own model, the joint matrix is block-diagonal
whenever no model's backlog exceeds its own eligible capacity — and
``MultiModelKairosPolicy(sharded=True)`` then solves the per-model blocks
independently, falling back to the union matching on contended rounds and on
rounds whose shard solutions contain a QoS-penalized assignment (where the union
may arbitrate cross-model).

``fig10_sharded_round_cost`` measures the scaling the way Fig. 10 measures evaluation
overhead: a fixed uncontended round shape (k pending queries per model, one shared
cluster), swept over the number of co-located models, reporting solved matrix cells
and wall time per scheduling round for the union and sharded paths — and asserting
they commit the same per-model matchings on these rounds.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.analysis.reporting import FigureTable
from repro.cloud.config import HeterogeneousConfig
from repro.cloud.profiles import default_profile_registry
from repro.schedulers.kairos_policy import MultiModelKairosPolicy
from repro.sim.cluster import MultiModelCluster
from repro.workload.query import Query

#: Co-location order for the sweep (all registered in the default profile set).
SHARDING_MODELS = ("RM2", "WND", "DIEN", "MT-WND")


def _round_inputs(model_names: Sequence[str], queries_per_model: int, seed: int):
    """One deterministic uncontended round: cluster view + pending queries."""
    profiles = default_profile_registry()
    cluster = MultiModelCluster(
        {name: HeterogeneousConfig((4, 4, 10, 0), profiles.catalog) for name in model_names},
        profiles,
    )
    rng = np.random.default_rng(seed)
    # a realistic mid-round state: some servers busy, all still eligible
    for i, server in enumerate(cluster):
        if i % 3 == 0:
            server.busy_until_ms = float(5 * (i % 7))
    queries = []
    qid = 0
    for name in model_names:
        for _ in range(queries_per_model):
            queries.append(Query(qid, int(rng.integers(1, 96)), 0.0, name))
            qid += 1
    return cluster, queries


def _policy(sharded: bool) -> MultiModelKairosPolicy:
    # Perfect estimators keep repeated rounds deterministic (no online learning
    # state), which is what lets wall time be measured over many identical rounds.
    return MultiModelKairosPolicy(use_perfect_estimator=True, sharded=sharded)


def _time_rounds(policy, view, queries, *, min_seconds: float) -> float:
    """Mean wall seconds per scheduling round (repeated identical rounds)."""
    policy.schedule(10.0, queries, view)  # warm caches outside the timed region
    rounds = 0
    total = 0.0
    while total < min_seconds:
        start = time.perf_counter()
        policy.schedule(10.0, queries, view)
        total += time.perf_counter() - start
        rounds += 1
    return total / rounds


def fig10_sharded_round_cost(
    *,
    max_models: int = 4,
    queries_per_model: int = 14,
    min_seconds: float = 0.2,
    seed: int = 20230715,
) -> FigureTable:
    """Round-cost scaling of union vs sharded dispatch over co-located model count."""
    if not 1 <= max_models <= len(SHARDING_MODELS):
        raise ValueError(f"max_models must be in [1, {len(SHARDING_MODELS)}]")
    rows = []
    for n_models in range(1, max_models + 1):
        model_names = SHARDING_MODELS[:n_models]
        cluster, queries = _round_inputs(model_names, queries_per_model, seed)
        view = cluster.active_view()

        union_policy = _policy(sharded=False)
        union_policy.bind(view)
        sharded_policy = _policy(sharded=True)
        sharded_policy.bind(view)

        union_decisions = union_policy.schedule(10.0, queries, view)
        sharded_decisions = sharded_policy.schedule(10.0, queries, view)
        union_cells = union_policy.solved_cells
        sharded_cells = sharded_policy.solved_cells
        if sharded_policy.union_rounds:
            raise RuntimeError("sharding fell back on an uncontended benchmark round")
        if {(q.query_id, s) for q, s in union_decisions} != {
            (q.query_id, s) for q, s in sharded_decisions
        }:
            raise RuntimeError(
                "sharded dispatch committed a different matching than the union "
                f"round at {n_models} models"
            )

        union_s = _time_rounds(union_policy, view, queries, min_seconds=min_seconds)
        sharded_s = _time_rounds(sharded_policy, view, queries, min_seconds=min_seconds)
        rows.append(
            [
                n_models,
                len(queries),
                union_cells,
                sharded_cells,
                union_s * 1e6,
                sharded_s * 1e6,
                union_s / sharded_s if sharded_s > 0 else float("inf"),
            ]
        )
    return FigureTable(
        figure_id="fig10-sharded",
        title="Scheduling-round cost: union matching vs per-model sharded dispatch",
        headers=[
            "models",
            "pending",
            "union_cells",
            "sharded_cells",
            "union_us_per_round",
            "sharded_us_per_round",
            "round_speedup",
        ],
        rows=rows,
        notes=[
            f"uncontended rounds: {queries_per_model} pending queries per model, "
            "18 eligible instances per model partition (4,4,10,0)",
            "identical per-model matchings committed by both paths on every row "
            "(checked before timing); contended or penalty-containing rounds fall "
            "back to the union",
            "cells = solved cost-matrix entries per round; the union matrix grows "
            "with the tenant count squared, the sharded blocks stay constant",
        ],
    )
