"""Motivation-section experiments: Figs. 1, 2, 3, 5 and the worked examples of Fig. 7."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.comparison import relative_gain
from repro.analysis.reporting import FigureTable
from repro.analysis.schemes import SchemeRunner
from repro.analysis.settings import ExperimentSettings
from repro.cloud.config import HeterogeneousConfig, parse_config
from repro.cloud.instances import InstanceCatalog, InstanceType, InstanceClass
from repro.cloud.models import MLModel, ModelRegistry
from repro.cloud.profiles import LinearLatencyProfile, ProfileRegistry
from repro.core.config_space import enumerate_configs
from repro.core.upper_bound import upper_bound_from_rates
from repro.schedulers.fcfs import RibbonFCFSPolicy
from repro.schedulers.kairos_policy import KairosPolicy
from repro.search.annealing import SimulatedAnnealingSearch
from repro.sim.simulation import simulate_serving
from repro.workload.generator import queries_from_batches

#: Configurations highlighted in the Fig. 1 reproduction (over the g4dn / c5n / r5n / t3
#: catalog).  The first four are the paper's own examples; the last two are additional
#: points that are *worse* than the homogeneous baseline under this substrate's
#: calibration, preserving the figure's message that heterogeneity by itself is not
#: automatically better.
FIG1_CONFIGS = (
    "(4, 0, 0, 0)",
    "(3, 1, 3, 0)",
    "(2, 0, 9, 0)",
    "(1, 4, 2, 0)",
    "(1, 4, 0, 0)",
    "(1, 0, 0, 11)",
)


def fig1_hetero_vs_homogeneous(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    config_specs: Sequence[str] = FIG1_CONFIGS,
) -> FigureTable:
    """Fig. 1: some heterogeneous configurations beat the best homogeneous one, some don't.

    All configurations are evaluated with Ribbon's FCFS distribution mechanism, exactly
    as the paper's motivation section does, and the homogeneous configuration's
    throughput is scaled up proportionally to the full budget.
    """
    settings = settings or ExperimentSettings()
    runner = SchemeRunner(settings, model_name)
    billing = settings.billing()
    catalog = settings.catalog()
    rows: List[Sequence] = []
    for spec in config_specs:
        config = parse_config(spec, catalog)
        cost = config.cost_per_hour()
        qps = runner.measure(config, "RIBBON")
        scaled_note = ""
        if config.is_homogeneous() and config.base_count > 0:
            scale = settings.budget_per_hour / cost if cost > 0 else 1.0
            qps *= scale
            cost = settings.budget_per_hour
            scaled_note = "scaled to full budget"
        rows.append([str(config), cost, qps, scaled_note])
    return FigureTable(
        figure_id="fig1",
        title=f"Heterogeneous vs. best homogeneous configuration ({model_name}, "
        f"budget {settings.budget_per_hour}$/hr, Ribbon FCFS distribution)",
        headers=["config", "cost_per_hr", "throughput_qps", "note"],
        rows=rows,
        notes=[
            "Paper Fig. 1's message: some heterogeneous configurations beat the best homogeneous "
            "one, others are clearly worse — being heterogeneity-aware alone is not enough.",
        ],
    )


def fig2_annealing_exploration(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    max_evaluations: int = 25,
    min_oracle_qps: float = 20.0,
) -> FigureTable:
    """Fig. 2: most configurations explored by simulated annealing are worse than homogeneous.

    The explored configurations are evaluated online (capacity measurement) under
    Ribbon's FCFS mechanism; configurations whose clairvoyant oracle throughput is below
    ``min_oracle_qps`` are pre-filtered, mirroring the paper's 20-QPS pre-filter.
    """
    settings = settings or ExperimentSettings()
    runner = SchemeRunner(settings, model_name)
    baseline = runner.homogeneous_baseline()
    homog_qps = baseline["scaled_qps"]

    configs = enumerate_configs(settings.budget_per_hour, settings.catalog(), min_base_count=0)
    filtered = [c for c in configs if runner.oracle_throughput(c) >= min_oracle_qps]
    search = SimulatedAnnealingSearch(max_evaluations=max_evaluations)
    result = search.search(filtered, runner.config_evaluator("sim", scheme="RIBBON"), rng=settings.rng(2))

    rows: List[Sequence] = []
    worse = 0
    for i, (config, qps) in enumerate(result.evaluations, start=1):
        gain = relative_gain(qps, homog_qps)
        worse += int(gain < 0)
        rows.append([i, str(config), qps, gain])
    fraction_worse = worse / max(1, len(result.evaluations))
    return FigureTable(
        figure_id="fig2",
        title=f"Simulated-annealing exploration vs. homogeneous ({model_name})",
        headers=["evaluation", "config", "throughput_qps", "gain_over_homog_pct"],
        rows=rows,
        notes=[
            f"homogeneous (scaled) throughput: {homog_qps:.1f} QPS",
            f"{100 * fraction_worse:.0f}% of explored configurations are worse than homogeneous "
            "(paper reports about 70%)",
        ],
        extras={"homogeneous_qps": homog_qps, "fraction_worse": fraction_worse},
    )


def fig3_distribution_schemes(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    config_specs: Sequence[str] = ("(4, 0, 0, 0)", "(2, 0, 9, 0)", "(3, 1, 3, 0)"),
    schemes: Sequence[str] = ("RIBBON", "DRS", "CLKWRK", "ORCL"),
) -> FigureTable:
    """Fig. 3: the same configuration performs very differently under different schemes."""
    settings = settings or ExperimentSettings()
    runner = SchemeRunner(settings, model_name)
    catalog = settings.catalog()
    rows: List[Sequence] = []
    for spec in config_specs:
        config = parse_config(spec, catalog)
        row: List = [str(config)]
        for scheme in schemes:
            row.append(runner.measure(config, scheme))
        rows.append(row)
    return FigureTable(
        figure_id="fig3",
        title=f"Throughput of fixed configurations under different distribution schemes ({model_name})",
        headers=["config", *[s.lower() + "_qps" for s in schemes]],
        rows=rows,
        notes=["Paper Fig. 3: all state-of-the-art schemes are below the Oracle, none dominates."],
    )


class _NaiveFCFSPolicy(RibbonFCFSPolicy):
    """A truly naive FCFS scheme for the Fig. 5 illustration.

    Unlike the Ribbon baseline (which at least refuses instances that cannot meet QoS in
    isolation), this policy places the oldest pending query on *any* idle instance, base
    first — the paper's "naive scheme (e.g., FCFS)".
    """

    name = "naive-FCFS"

    def on_bind(self) -> None:  # no QoS feasibility table
        cluster = self._require_bound()
        self._max_batch = [cluster.model.max_batch_size] * len(cluster)


def _toy_substrate() -> Tuple[ProfileRegistry, MLModel, HeterogeneousConfig]:
    """The 2-instance illustrative setup of Fig. 5 (one fast base, one slow auxiliary)."""
    gpu = InstanceType(
        name="toy-gpu", instance_class=InstanceClass.GPU_ACCELERATED, price_per_hour=0.5,
        is_accelerated=True,
    )
    cpu = InstanceType(
        name="toy-cpu", instance_class=InstanceClass.MEMORY_OPTIMIZED, price_per_hour=0.15
    )
    catalog = InstanceCatalog([gpu, cpu], base_type="toy-gpu")
    model = MLModel(name="TOY", qos_ms=100.0, max_batch_size=1000)
    models = ModelRegistry([model])
    profiles = ProfileRegistry(
        {
            ("TOY", "toy-gpu"): LinearLatencyProfile(10.0, 0.05),
            ("TOY", "toy-cpu"): LinearLatencyProfile(20.0, 0.30),
        },
        catalog=catalog,
        models=models,
    )
    config = HeterogeneousConfig((1, 1), catalog)
    return profiles, model, config


def fig5_slack_example(settings: Optional[ExperimentSettings] = None) -> FigureTable:
    """Fig. 5: prioritizing high-speedup queries on powerful instances creates slack.

    A 2-instance, 4-query scenario where a naive FCFS scheme (Ribbon) completes only 3
    queries within QoS while Kairos's matching completes all 4.
    """
    profiles, model, config = _toy_substrate()
    # Two small and two large queries.  The naive FCFS scheme parks the first small
    # query on the (preferred) base instance, so the first large query is forced onto
    # the auxiliary instance and misses QoS; Kairos keeps small queries on the auxiliary
    # instance and serves all four in time.
    queries = queries_from_batches(
        batch_sizes=[100, 900, 110, 800], arrival_times_ms=[0.0, 5.0, 10.0, 70.0]
    )
    rows: List[Sequence] = []
    for name, policy in (
        ("naive FCFS", _NaiveFCFSPolicy()),
        ("KAIROS", KairosPolicy(use_perfect_estimator=True)),
    ):
        report = simulate_serving(config, model, profiles, policy, queries)
        ok = sum(1 for r in report.metrics.records if r.meets_qos(model.qos_ms))
        rows.append([name, len(queries), ok, report.metrics.goodput_qps()])
    return FigureTable(
        figure_id="fig5",
        title="Two-instance illustrative example: queries served within QoS",
        headers=["scheme", "queries", "served_within_qos", "goodput_qps"],
        rows=rows,
        notes=["Paper Fig. 5: the naive scheme finishes 3 of 4 queries in time; Kairos finishes all 4."],
    )


def fig7_upper_bound_scenarios() -> FigureTable:
    """Fig. 7: the two worked upper-bound examples (base-bottleneck and aux-bottleneck)."""
    scenario1 = upper_bound_from_rates(1, 100.0, 90.0, [(1, 150.0)], 0.6)
    scenario2 = upper_bound_from_rates(1, 100.0, 90.0, [(1, 140.0)], 0.7)
    rows = [
        ["scenario 1 (base bottleneck)", 100.0, 90.0, 150.0, 0.6, scenario1, 225.0],
        ["scenario 2 (aux bottleneck)", 100.0, 90.0, 140.0, 0.7, scenario2, 233.3],
    ]
    return FigureTable(
        figure_id="fig7",
        title="Upper-bound calculation worked examples",
        headers=["scenario", "Q_b", "Q_b_s+", "Q_a", "f", "computed_QPS_max", "paper_QPS_max"],
        rows=rows,
        notes=["Computed values must match the paper's 225 and 233 QPS."],
    )
