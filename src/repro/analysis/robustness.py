"""Adaptivity and robustness experiments: Figs. 12, 13, 14, 15 and 16."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import FigureTable
from repro.analysis.schemes import SchemeRunner
from repro.analysis.settings import ExperimentSettings
from repro.cloud.config import HeterogeneousConfig
from repro.core.config_space import enumerate_configs
from repro.core.kairos import KairosPlanner
from repro.core.kairos_plus import KairosPlusSearch
from repro.core.selection import select_configuration
from repro.schedulers.oracle import OracleScheduler
from repro.search.bayesian import BayesianOptimizationSearch
from repro.workload.batch_sizes import GaussianBatchSizes, TruncatedLogNormalBatchSizes


def fig12_load_change(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    schemes: Sequence[str] = ("RIBBON", "DRS", "CLKWRK"),
    time_steps: int = 12,
    backend: str = "sim",
) -> FigureTable:
    """Fig. 12: transient behaviour when the query-size distribution changes.

    The query-size distribution switches from the production-like log-normal to a
    Gaussian.  Every scheme restarts its configuration search against the new
    distribution: the competing schemes explore with Bayesian optimization (one online
    evaluation per time step, under their own distribution mechanism), Kairos re-plans
    in one shot, and Kairos+ runs its upper-bound-guided search.  The table reports the
    throughput of the configuration each scheme is running at each time step.
    """
    settings = settings or ExperimentSettings()
    new_distribution = GaussianBatchSizes(mean=250.0, std=120.0)
    shifted = settings.scaled(batch_distribution=new_distribution)
    runner = SchemeRunner(shifted, model_name)

    planner = KairosPlanner(
        shifted.model(model_name),
        shifted.budget_per_hour,
        profiles=shifted.registry(),
        batch_samples=shifted.monitored_batches(),
    )
    plan = planner.plan()
    configs = [config for config, _ in plan.ranked]

    series: Dict[str, List[float]] = {}

    # Competing schemes: Bayesian-optimization exploration, one evaluation per step.
    for scheme in schemes:
        evaluator = runner.config_evaluator(
            "sim" if backend == "sim" else "oracle", scheme=scheme
        )
        search = BayesianOptimizationSearch(max_evaluations=time_steps, use_pruning=False)
        result = search.search(configs, evaluator, rng=shifted.rng(12))
        trace = list(result.value_trace())
        # pad with the best-so-far once the search stops early
        best_so_far = list(result.running_best())
        while len(trace) < time_steps:
            trace.append(best_so_far[-1] if best_so_far else 0.0)
        series[scheme] = trace[:time_steps]

    # Kairos: one-shot reconfiguration, constant from the first step.
    kairos_qps = runner.measure(plan.selected_config, "KAIROS")
    series["KAIROS"] = [kairos_qps] * time_steps

    # Kairos+: upper-bound-guided online search.
    plus_evaluator = runner.config_evaluator(backend, scheme="KAIROS")
    plus = KairosPlusSearch(plan.ranked, plus_evaluator, max_evaluations=time_steps).run()
    plus_trace = [v for _, v in plus.evaluations]
    plus_best = float(np.max(plus_trace)) if plus_trace else kairos_qps
    while len(plus_trace) < time_steps:
        plus_trace.append(plus_best)
    series["KAIROS+"] = plus_trace[:time_steps]

    rows: List[Sequence] = []
    for step in range(time_steps):
        rows.append([step + 1, *[series[name][step] for name in (*schemes, "KAIROS", "KAIROS+")]])
    return FigureTable(
        figure_id="fig12",
        title=f"Transient response to a query-size distribution change ({model_name}, "
        "log-normal to Gaussian)",
        headers=["time_step", *[s for s in schemes], "KAIROS", "KAIROS+"],
        rows=rows,
        notes=[
            "Paper Fig. 12: Kairos reaches a near-optimal configuration in one shot (about 2x the "
            "throughput of Ribbon/DRS during their exploration); Kairos+ finishes within a few "
            "evaluations and ends slightly above Kairos.",
        ],
        extras={"selected_config": str(plan.selected_config)},
    )


def fig13_top_upper_bound_configs(
    settings: Optional[ExperimentSettings] = None,
    *,
    models: Optional[Sequence[str]] = None,
    top_k: int = 20,
) -> FigureTable:
    """Fig. 13: actual throughput of the top-``k`` upper-bound configurations per model.

    Throughputs are reported as a percentage of the best observed among the top-``k``;
    the configuration Kairos's similarity-based selection picks is marked.
    """
    settings = settings or ExperimentSettings()
    models = list(models) if models is not None else list(settings.models)
    rows: List[Sequence] = []
    for offset, model_name in enumerate(models):
        runner = SchemeRunner(settings, model_name)
        planner = KairosPlanner(
            settings.model(model_name),
            settings.budget_per_hour,
            profiles=settings.registry(),
            batch_samples=settings.monitored_batches(),
        )
        plan = planner.plan()
        top = plan.top(top_k)
        measured = [
            runner.measure(config, "KAIROS", rng_offset=offset) for config, _ in top
        ]
        best = max(measured) if measured else 1.0
        best_rank = int(np.argmax(measured)) + 1 if measured else 0
        for rank, ((config, bound), qps) in enumerate(zip(top, measured), start=1):
            rows.append(
                [
                    model_name,
                    rank,
                    str(config),
                    bound,
                    qps,
                    100.0 * qps / best if best else 0.0,
                    config == plan.selected_config,
                ]
            )
        rows.append([model_name, "-", "best observed rank", "-", best, 100.0, best_rank == 1])
    return FigureTable(
        figure_id="fig13",
        title=f"Actual throughput of the top-{top_k} upper-bound configurations",
        headers=["model", "ub_rank", "config", "upper_bound_qps", "actual_qps", "pct_of_best", "selected"],
        rows=rows,
        notes=[
            "Paper Fig. 13: the true optimum is always within the top-10 upper-bound configurations "
            "and the actual throughput broadly follows the upper-bound ordering.",
        ],
    )


def fig14_codesign(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    top_k: int = 12,
    schemes: Sequence[str] = ("RIBBON", "DRS", "CLKWRK", "KAIROS"),
) -> FigureTable:
    """Fig. 14: the same top-upper-bound configurations under different distribution schemes.

    Shows (i) that the upper bound tracks Kairos's achieved throughput and stays below
    the Oracle, and (ii) that replacing Kairos's distribution mechanism with any baseline
    makes the high-upper-bound configurations underperform — the two components are
    co-designed.
    """
    settings = settings or ExperimentSettings()
    runner = SchemeRunner(settings, model_name)
    planner = KairosPlanner(
        settings.model(model_name),
        settings.budget_per_hour,
        profiles=settings.registry(),
        batch_samples=settings.monitored_batches(),
    )
    plan = planner.plan()
    top = plan.top(top_k)

    oracle = OracleScheduler(settings.registry(), settings.model(model_name))
    monitor = settings.monitored_batches()
    oracle_best = max(oracle.throughput_qps(config, monitor) for config, _ in top)

    rows: List[Sequence] = []
    for rank, (config, bound) in enumerate(top, start=1):
        row: List = [rank, str(config), bound]
        for scheme in schemes:
            row.append(runner.measure(config, scheme))
        row.append(oracle_best)
        rows.append(row)
    return FigureTable(
        figure_id="fig14",
        title=f"Top upper-bound configurations under different distribution schemes ({model_name})",
        headers=["ub_rank", "config", "upper_bound_qps", *[s for s in schemes], "oracle_best_qps"],
        rows=rows,
        notes=[
            "Paper Fig. 14: UB is below but close to the Oracle; Kairos tracks the UB; the baseline "
            "schemes fall well short on the same configurations.",
        ],
    )


def _normalized_vs_homogeneous(
    settings: ExperimentSettings,
    models: Sequence[str],
    *,
    budget: Optional[float] = None,
    qos_scale: float = 1.0,
    prediction_noise_std: float = 0.0,
) -> List[Sequence]:
    """Shared helper for Figs. 15 and 16: Kairos vs. homogeneous under modified knobs."""
    rows: List[Sequence] = []
    effective_budget = budget if budget is not None else settings.budget_per_hour
    for offset, model_name in enumerate(models):
        model = settings.model(model_name)
        qos = model.qos_ms * qos_scale
        runner = SchemeRunner(settings, model_name)
        baseline = runner.homogeneous_baseline(
            rng_offset=offset, qos_ms=qos, budget_per_hour=effective_budget
        )
        planner = KairosPlanner(
            model.with_qos(qos),
            effective_budget,
            profiles=settings.registry(),
            batch_samples=settings.monitored_batches(),
        )
        plan = planner.plan()
        kairos_qps = runner.measure(
            plan.selected_config,
            "KAIROS",
            rng_offset=offset,
            qos_ms=qos,
            prediction_noise_std=prediction_noise_std,
        )
        rows.append(
            [
                model_name,
                str(plan.selected_config),
                baseline["scaled_qps"],
                kairos_qps,
                kairos_qps / baseline["scaled_qps"] if baseline["scaled_qps"] else float("nan"),
            ]
        )
    return rows


def fig15_budget_and_qos(
    settings: Optional[ExperimentSettings] = None,
    *,
    models: Optional[Sequence[str]] = None,
    budget_scale: float = 4.0,
    qos_scale: float = 1.2,
) -> FigureTable:
    """Fig. 15: robustness to (a) a 4x budget and (b) a 20% looser QoS target."""
    settings = settings or ExperimentSettings()
    models = list(models) if models is not None else list(settings.models)
    rows: List[Sequence] = []
    budget_rows = _normalized_vs_homogeneous(
        settings, models, budget=settings.budget_per_hour * budget_scale
    )
    for row in budget_rows:
        rows.append([f"{budget_scale:.0f}x budget", *row])
    qos_rows = _normalized_vs_homogeneous(settings, models, qos_scale=qos_scale)
    for row in qos_rows:
        rows.append(["high QoS", *row])
    return FigureTable(
        figure_id="fig15",
        title="Robustness to the cost budget and the QoS target (normalized to homogeneous)",
        headers=["scenario", "model", "kairos_config", "homog_qps_scaled", "kairos_qps", "normalized"],
        rows=rows,
        notes=["Paper Fig. 15: the improvement over homogeneous persists at 4x budget and looser QoS."],
    )


def fig16_gaussian_and_noise(
    settings: Optional[ExperimentSettings] = None,
    *,
    models: Optional[Sequence[str]] = None,
    gaussian_mean: float = 250.0,
    gaussian_std: float = 120.0,
    noise_std: float = 0.05,
) -> FigureTable:
    """Fig. 16: robustness to (a) Gaussian batch sizes and (b) 5% latency-prediction noise."""
    settings = settings or ExperimentSettings()
    models = list(models) if models is not None else list(settings.models)
    rows: List[Sequence] = []

    gaussian_settings = settings.scaled(
        batch_distribution=GaussianBatchSizes(mean=gaussian_mean, std=gaussian_std)
    )
    for row in _normalized_vs_homogeneous(gaussian_settings, models):
        rows.append(["gaussian batches", *row])

    for row in _normalized_vs_homogeneous(settings, models, prediction_noise_std=noise_std):
        rows.append(["latency noise", *row])

    return FigureTable(
        figure_id="fig16",
        title="Robustness to the batch-size distribution and latency-prediction noise "
        "(normalized to homogeneous)",
        headers=["scenario", "model", "kairos_config", "homog_qps_scaled", "kairos_qps", "normalized"],
        rows=rows,
        notes=[
            "Paper Fig. 16: Kairos keeps a significant advantage with Gaussian batch sizes and is "
            "insensitive to 5% white noise in latency prediction.",
        ],
    )
