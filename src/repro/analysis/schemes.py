"""Scheme runners: measure the allowable throughput of a configuration under any scheme.

A *scheme* is one of the paper's query-distribution mechanisms — RIBBON, DRS, CLKWRK,
KAIROS — plus the clairvoyant ORCL reference.  The simulator-backed schemes share the
capacity-search machinery of :mod:`repro.sim.capacity`; ORCL is evaluated through the
oracle packing (it needs no arrival process by definition).

``SchemeRunner`` also provides configuration *evaluators* for the search experiments:
``backend="sim"`` performs a genuine capacity measurement per evaluation (expensive, as
on the real cloud) while ``backend="oracle"`` uses the oracle packing as a cheap
surrogate with the same ordering of configurations — which is what the evaluation-count
experiments (Figs. 10-12) need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.models import MLModel
from repro.core.latency_model import NoisyLatencyEstimator, OnlineLatencyEstimator
from repro.analysis.settings import ExperimentSettings
from repro.schedulers.clockwork import ClockworkPolicy
from repro.schedulers.fcfs import RibbonFCFSPolicy
from repro.schedulers.kairos_policy import KairosPolicy
from repro.schedulers.oracle import OracleScheduler
from repro.schedulers.threshold import DRSThresholdPolicy
from repro.sim.capacity import AllowableThroughputResult, measure_allowable_throughput
from repro.utils.rng import ensure_rng

#: Scheme names as used in the paper's figures.
SCHEME_NAMES = ("RIBBON", "DRS", "CLKWRK", "KAIROS", "ORCL")


class SchemeRunner:
    """Evaluates configurations under the paper's query-distribution schemes."""

    def __init__(self, settings: ExperimentSettings, model_name: str):
        self.settings = settings
        self.model_name = model_name
        self.profiles = settings.registry()
        self.model: MLModel = settings.model(model_name)
        self._oracle = OracleScheduler(self.profiles, self.model)
        self._monitor = settings.monitored_batches()

    # -- DRS threshold tuning ------------------------------------------------------------
    def tuned_drs_threshold(self, config: HeterogeneousConfig, *, grid: int = 40) -> int:
        """The batch-size threshold DeepRecSys's hill-climbing sweep converges to.

        The sweep's fixed point balances the load between the two instance classes, so
        the tuner picks (from a grid of candidate thresholds) the one minimizing the
        maximum of the per-class utilizations on the monitored query mix.  The tuning
        overhead is not charged to DRS, per the paper's advantageous baseline treatment.
        """
        base_name = self.profiles.catalog.base_type.name
        base_count = config.count_of(base_name)
        aux_counts = [
            (name, count) for name, count in config.as_mapping().items()
            if name != base_name and count > 0
        ]
        if not aux_counts or base_count == 0:
            return self.model.max_batch_size
        samples = np.asarray(self._monitor, dtype=int)
        aux_cutoffs = {
            name: self.profiles.qos_cutoff_batch(self.model, name) for name, _ in aux_counts
        }
        max_cutoff = max(aux_cutoffs.values())
        if max_cutoff < 1:
            return self.model.max_batch_size
        candidates = np.unique(
            np.linspace(1, max_cutoff, num=min(grid, max_cutoff)).astype(int)
        )
        total_aux = sum(count for _, count in aux_counts)
        best_threshold, best_objective = int(max_cutoff), float("inf")
        base_latency = np.asarray(
            self.profiles.latency_ms(self.model, base_name, samples), dtype=float
        )
        aux_latency = np.zeros(samples.shape[0], dtype=float)
        for name, count in aux_counts:
            aux_latency += (count / total_aux) * np.asarray(
                self.profiles.latency_ms(self.model, name, samples), dtype=float
            )
        for threshold in candidates:
            small = samples <= threshold
            aux_load = float(np.sum(aux_latency[small])) / total_aux
            base_load = float(np.sum(base_latency[~small])) / base_count
            objective = max(aux_load, base_load)
            if objective < best_objective:
                best_objective, best_threshold = objective, int(threshold)
        return best_threshold

    def _drs_threshold_candidates(self, config: HeterogeneousConfig) -> set:
        """Candidate thresholds the emulated DRS sweep measures (balanced + cutoffs)."""
        base_name = self.profiles.catalog.base_type.name
        cutoffs = [
            self.profiles.qos_cutoff_batch(self.model, name)
            for name, count in config.as_mapping().items()
            if name != base_name and count > 0
        ]
        candidates = {self.tuned_drs_threshold(config)}
        if cutoffs:
            max_cutoff = max(max(cutoffs), 1)
            candidates.update({max_cutoff, max(1, int(0.6 * max_cutoff))})
        else:
            candidates.add(self.model.max_batch_size)
        return candidates

    # -- policy factories -----------------------------------------------------------------
    def policy_factory(
        self,
        scheme: str,
        *,
        drs_threshold: Optional[int] = None,
        prediction_noise_std: float = 0.0,
        noise_seed: int = 0,
    ) -> Callable[[], object]:
        """A zero-argument factory producing fresh policies of the given scheme.

        DRS uses its per-configuration tuned threshold (the hill-climbing fixed point on
        deterministic profiles) unless ``drs_threshold`` is given explicitly; its tuning
        overhead is not charged, following the paper's advantageous baseline treatment.
        """
        name = scheme.upper()
        if name == "RIBBON":
            return RibbonFCFSPolicy
        if name == "DRS":
            return lambda: DRSThresholdPolicy(drs_threshold)
        if name == "CLKWRK":
            return ClockworkPolicy
        if name == "KAIROS":
            if prediction_noise_std > 0:
                def make_noisy() -> KairosPolicy:
                    inner = OnlineLatencyEstimator()
                    noisy = NoisyLatencyEstimator(
                        inner, prediction_noise_std, ensure_rng(noise_seed)
                    )
                    return KairosPolicy(estimator=noisy)

                return make_noisy
            return KairosPolicy
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEME_NAMES}")

    # -- throughput measurement --------------------------------------------------------------
    def measure(
        self,
        config: HeterogeneousConfig,
        scheme: str,
        *,
        rng_offset: int = 0,
        qos_ms: Optional[float] = None,
        drs_threshold: Optional[int] = None,
        prediction_noise_std: float = 0.0,
    ) -> float:
        """Allowable throughput (QPS) of ``config`` under ``scheme``."""
        name = scheme.upper()
        if name == "ORCL":
            return self._oracle.throughput_qps(config, self._monitor)
        result = self.measure_detailed(
            config,
            scheme,
            rng_offset=rng_offset,
            qos_ms=qos_ms,
            drs_threshold=drs_threshold,
            prediction_noise_std=prediction_noise_std,
        )
        return result.qps

    def measure_detailed(
        self,
        config: HeterogeneousConfig,
        scheme: str,
        *,
        rng_offset: int = 0,
        qos_ms: Optional[float] = None,
        drs_threshold: Optional[int] = None,
        prediction_noise_std: float = 0.0,
    ) -> AllowableThroughputResult:
        """Full capacity-measurement result for a simulator-backed scheme."""
        name = scheme.upper()
        if name == "ORCL":
            raise ValueError("ORCL is evaluated analytically; use measure()")
        if name == "DRS" and drs_threshold is None:
            # DeepRecSys tunes the threshold by hill-climbing on measured throughput.
            # Emulate the sweep's outcome by measuring a small set of candidate
            # thresholds and keeping the best (the sweep's cost is not charged).
            candidates = sorted(self._drs_threshold_candidates(config))
            best: Optional[AllowableThroughputResult] = None
            for candidate in candidates:
                result = self.measure_detailed(
                    config,
                    "DRS",
                    rng_offset=rng_offset,
                    qos_ms=qos_ms,
                    drs_threshold=candidate,
                    prediction_noise_std=prediction_noise_std,
                )
                if best is None or result.qps > best.qps:
                    best = result
            assert best is not None
            return best
        factory = self.policy_factory(
            name,
            drs_threshold=drs_threshold,
            prediction_noise_std=prediction_noise_std,
            noise_seed=self.settings.seed + 77 + rng_offset,
        )
        return measure_allowable_throughput(
            config,
            self.model,
            self.profiles,
            factory,
            workload_spec=self.settings.workload_spec(),
            rng=self.settings.rng(rng_offset),
            qos_ms=qos_ms,
            max_iterations=self.settings.capacity_iterations,
        )

    def oracle_throughput(self, config: HeterogeneousConfig) -> float:
        """ORCL throughput of one configuration on the monitored query mix."""
        return self._oracle.throughput_qps(config, self._monitor)

    # -- evaluators for search experiments -------------------------------------------------------
    def config_evaluator(
        self,
        backend: str = "oracle",
        *,
        scheme: str = "KAIROS",
        rng_offset: int = 0,
    ) -> Callable[[HeterogeneousConfig], float]:
        """An evaluation function ``config -> throughput`` for the search algorithms.

        ``backend="oracle"`` (default) scores configurations with the cheap oracle
        packing; ``backend="sim"`` performs a full capacity measurement under ``scheme``.
        """
        if backend == "oracle":
            return self.oracle_throughput
        if backend == "sim":
            return lambda config: self.measure(config, scheme, rng_offset=rng_offset)
        raise ValueError(f"unknown evaluator backend {backend!r}; use 'oracle' or 'sim'")

    # -- homogeneous baseline -----------------------------------------------------------------
    def homogeneous_baseline(
        self, *, rng_offset: int = 0, qos_ms: Optional[float] = None,
        budget_per_hour: Optional[float] = None,
    ) -> Dict[str, float]:
        """The paper's optimal-homogeneous baseline with proportional budget scaling."""
        billing = self.settings.billing()
        budget = (
            budget_per_hour if budget_per_hour is not None else self.settings.budget_per_hour
        )
        config = billing.best_homogeneous_config(self.settings.base_type, budget)
        scale = billing.homogeneous_budget_scaling(self.settings.base_type, budget)
        result = measure_allowable_throughput(
            config,
            self.model,
            self.profiles,
            lambda: KairosPolicy(use_perfect_estimator=True),
            workload_spec=self.settings.workload_spec(),
            rng=self.settings.rng(rng_offset),
            qos_ms=qos_ms,
            max_iterations=self.settings.capacity_iterations,
        )
        return {
            "config": config,
            "raw_qps": result.qps,
            "scale": scale,
            "scaled_qps": result.qps * scale,
        }
