"""Small helpers for normalized-throughput comparisons used across figures."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np


def normalized_throughput(values: Mapping[str, float], reference: str) -> Dict[str, float]:
    """Normalize each entry of ``values`` by the entry named ``reference``.

    The paper normalizes Fig. 8/15/16 by the homogeneous baseline and Fig. 9 by a chosen
    scheme; a zero or missing reference raises immediately rather than producing NaNs.
    """
    if reference not in values:
        raise KeyError(f"reference {reference!r} not among {sorted(values)}")
    ref = float(values[reference])
    if ref <= 0:
        raise ValueError(f"reference value for {reference!r} must be positive, got {ref}")
    return {name: float(v) / ref for name, v in values.items()}


def relative_gain(value: float, baseline: float) -> float:
    """Percentage gain of ``value`` over ``baseline`` (Fig. 2's y-axis)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (value - baseline) / baseline


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used in summary reporting)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
