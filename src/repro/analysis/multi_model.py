"""Multi-model co-location: joint shared-budget planning vs. independent clusters.

The paper sizes one heterogeneous pool per model under a per-model budget.  When N
models are co-located on one cluster with one *shared* dollar budget, the joint planner
(:class:`~repro.core.kairos.MultiModelKairosPlanner`) can do strictly better than
splitting the budget up front: each model only provisions the cheapest configuration
whose Eq. 15 upper bound covers its own demand, so slack from an over-provisioned model
is returned to the shared pool instead of being burned on its private cluster.

``fig17_multi_model_joint`` quantifies that: two models, per-model offered loads, and
two arms — *independent* (each model gets an equal budget share and the standard
single-model Kairos plan) and *joint* (one shared-budget joint plan served by the
multi-model scheduling round over the union of pending queries).  Both arms serve the
identical per-model query streams; the table reports per-model tail latency, QoS
verdicts, and $/hr, and the benchmark asserts the joint arm meets every model's QoS at
a strictly lower total cost.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.analysis.reporting import FigureTable
from repro.analysis.settings import ExperimentSettings
from repro.core.kairos import KairosPlanner, MultiModelKairosPlanner
from repro.sim.cluster import MultiModelCluster
from repro.sim.multi_model import simulate_multi_model_serving
from repro.sim.simulation import simulate_serving
from repro.workload.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    interleave_model_streams,
)

#: Default per-model demand headroom over the offered load.  Eq. 15 is an *upper*
#: bound on the allowable throughput; how much of it queueing eats differs per model —
#: tight-QoS models (WND at 25 ms) lose far more of the bound than lax ones (RM2 at
#: 350 ms), so they provision proportionally more capacity per offered query.
DEFAULT_DEMAND_HEADROOM: Dict[str, float] = {
    "NCF": 2.1,
    "RM2": 1.6,
    "WND": 2.1,
    "MT-WND": 2.1,
    "DIEN": 2.0,
}


def fig17_multi_model_joint(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_names: Sequence[str] = ("RM2", "WND"),
    load_frac: float = 0.45,
    demand_headroom: Optional[Mapping[str, float]] = None,
    queries_per_model: Optional[int] = None,
    use_online_latency_learning: bool = True,
) -> FigureTable:
    """Joint shared-budget co-location vs. independently planned per-model clusters.

    The independent arm splits ``settings.budget_per_hour`` equally and runs the
    standard one-shot :class:`~repro.core.kairos.KairosPlanner` per model; each model's
    offered load is ``load_frac`` of its independent plan's upper bound (so the
    independent arm is comfortably provisioned — the harder baseline to undercut).
    The joint arm plans all models at once under the shared budget with per-model
    demand headroom and serves the interleaved stream on one
    :class:`~repro.sim.cluster.MultiModelCluster` through the joint scheduling round.
    Early arrivals of each model (1/6 of its stream) are treated as warm-up for the
    online latency learners in both arms.
    """
    settings = settings or ExperimentSettings()
    registry = settings.registry()
    names: Tuple[str, ...] = tuple(model_names)
    if len(names) < 2:
        raise ValueError("the co-location scenario needs at least two models")
    headroom = dict(demand_headroom) if demand_headroom is not None else {
        name: DEFAULT_DEMAND_HEADROOM.get(name, 2.0) for name in names
    }
    n_queries = (
        int(queries_per_model) if queries_per_model is not None else settings.num_queries
    )
    warmup = max(1, n_queries // 6)
    budget = settings.budget_per_hour
    monitored = {
        name: settings.monitored_batches(offset=i) for i, name in enumerate(names)
    }

    # Independent arm: equal budget shares, standard single-model planning.
    independent_plans = {
        name: KairosPlanner(
            name,
            budget / len(names),
            profiles=registry,
            batch_samples=monitored[name],
        ).plan()
        for name in names
    }
    offered = {
        name: load_frac * independent_plans[name].selected_upper_bound for name in names
    }

    # Joint arm: one shared budget, demand-targeted joint selection.
    joint_planner = MultiModelKairosPlanner(
        list(names),
        budget,
        profiles=registry,
        batch_samples_by_model={name: monitored[name] for name in names},
        demand_headroom=headroom,
    )
    joint_plan = joint_planner.plan_joint(offered)

    # Identical per-model streams feed both arms.
    streams = {}
    for i, name in enumerate(names):
        spec = WorkloadSpec(
            batch_sizes=settings.distribution(),
            num_queries=n_queries,
            model_name=name,
        )
        streams[name] = WorkloadGenerator(spec).generate(
            rate_qps=offered[name], rng=settings.rng(50 + i)
        )

    def build_policy():
        from repro.schedulers.kairos_policy import KairosPolicy

        return KairosPolicy(use_perfect_estimator=not use_online_latency_learning)

    independent_reports = {}
    for i, name in enumerate(names):
        independent_reports[name] = simulate_serving(
            independent_plans[name].selected_config,
            registry.models[name],
            registry,
            build_policy(),
            streams[name],
            rng=settings.rng(13 + i),
            warmup_queries=warmup,
        )

    from repro.schedulers.kairos_policy import MultiModelKairosPolicy

    joint_cluster = MultiModelCluster(joint_plan.configs(), registry)
    joint_report = simulate_multi_model_serving(
        joint_cluster,
        MultiModelKairosPolicy(use_perfect_estimator=not use_online_latency_learning),
        interleave_model_streams(streams),
        rng=settings.rng(11),
        warmup_queries=warmup,
    )

    rows = []
    for name in names:
        joint_alloc = joint_plan.allocation_of(name)
        joint_metrics = joint_report.metrics.of_model(name)
        indep = independent_reports[name]
        rows.append(
            [
                name,
                offered[name],
                str(joint_alloc.config),
                joint_alloc.cost_per_hour,
                joint_metrics.tail_latency_ms(),
                float(joint_metrics.meets_qos()),
                str(independent_plans[name].selected_config),
                independent_plans[name].selected_config.cost_per_hour(),
                indep.metrics.tail_latency_ms(),
                float(indep.metrics.meets_qos()),
            ]
        )

    independent_cost = sum(
        independent_plans[name].selected_config.cost_per_hour() for name in names
    )
    joint_cost = joint_plan.total_cost_per_hour
    table = FigureTable(
        figure_id="fig17-multimodel",
        title=f"{'+'.join(names)}: joint shared-budget plan vs. "
        f"independent per-model clusters at {budget:g}$/hr",
        headers=[
            "model",
            "offered_qps",
            "joint_config",
            "joint_cost_hr",
            "joint_tail_ms",
            "joint_meets_qos",
            "indep_config",
            "indep_cost_hr",
            "indep_tail_ms",
            "indep_meets_qos",
        ],
        rows=rows,
        notes=[
            f"offered load = {load_frac:.2f} x each independent plan's upper bound",
            f"joint total {joint_cost:.3f}$/hr vs independent total "
            f"{independent_cost:.3f}$/hr "
            f"({100.0 * (1.0 - joint_cost / independent_cost):.1f}% cheaper)",
            f"demand headroom: {headroom}",
            f"all joint models meet QoS: {joint_report.all_meet_qos()}",
        ],
        extras={
            "joint_plan": joint_plan,
            "joint_report": joint_report,
            "independent_plans": independent_plans,
            "independent_reports": independent_reports,
            "joint_cost_per_hour": joint_cost,
            "independent_cost_per_hour": independent_cost,
            "offered_qps": offered,
        },
    )
    return table
