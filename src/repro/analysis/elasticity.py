"""Elasticity experiments: static-plan serving vs. the one-shot re-planning controller.

The paper's Fig. 12 shows Kairos reacting to a load change "in one shot" by re-planning
from closed-form upper bounds.  ``fig12_dynamic_replan`` turns that into an *online*
scenario: a trace-driven load step is served twice through the same elastic event loop —
once pinned to the initial plan (static) and once with
:class:`~repro.core.controller.ElasticKairosController` re-planning and re-provisioning
mid-run — and the table reports per-phase QoS-met throughput and dollar spend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import FigureTable
from repro.analysis.settings import ExperimentSettings
from repro.core.controller import ElasticKairosController
from repro.core.kairos import KairosPlanner
from repro.sim.cluster import Cluster
from repro.sim.elasticity import ElasticServingSimulation, ElasticSimulationReport
from repro.workload.generator import WorkloadSpec
from repro.workload.phases import LoadPhase, PhasedTrace, PhasedTraceResult


def phase_comparison_rows(
    trace_result: PhasedTraceResult,
    static_report: ElasticSimulationReport,
    elastic_report: ElasticSimulationReport,
) -> List[List]:
    """Per-phase ``[label, offered, static/elastic goodput, static/elastic cost]`` rows."""
    rows: List[List] = []
    for phase_idx in range(trace_result.num_phases):
        t0, t1 = trace_result.phase_window_ms(phase_idx)
        offered = 1000.0 * len(trace_result.queries_in_phase(phase_idx)) / (t1 - t0)
        rows.append(
            [
                trace_result.labels[phase_idx],
                offered,
                static_report.metrics.qos_met_qps_in_window(t0, t1),
                elastic_report.metrics.qos_met_qps_in_window(t0, t1),
                static_report.ledger.cost_in_window(t0, t1),
                elastic_report.ledger.cost_in_window(t0, t1),
            ]
        )
    return rows


def fig12_dynamic_replan(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    load_step: float = 2.0,
    base_load_frac: float = 0.55,
    total_queries_target: Optional[int] = None,
    change_threshold: float = 1.5,
    use_online_latency_learning: bool = True,
) -> FigureTable:
    """Serve a ``load_step`` × arrival-rate step with and without online re-planning.

    The baseline phase offers ``base_load_frac`` of the initial plan's throughput
    upper bound (comfortable headroom); the step phase multiplies that offered rate by
    ``load_step``, pushing the static plan past its capacity while the elastic
    controller re-plans under a proportionally scaled budget and migrates the cluster
    through ``SCALE_UP``/``SCALE_DOWN`` events.

    Both arms run through :class:`~repro.sim.elasticity.ElasticServingSimulation` (the
    static arm simply has no controller), the same trace object, and the same seeds, so
    the comparison isolates exactly one difference: the re-planning controller.
    """
    settings = settings or ExperimentSettings()
    registry = settings.registry()
    model = settings.model(model_name)
    monitored = settings.monitored_batches()

    # One-shot plan for the baseline load, from the monitored query-size window.
    planner = KairosPlanner(
        model,
        settings.budget_per_hour,
        profiles=registry,
        batch_samples=monitored,
    )
    plan = planner.plan()
    base_rate = base_load_frac * plan.selected_upper_bound

    # Phase durations sized so the whole scenario offers ~total_queries_target queries.
    target = (
        int(total_queries_target)
        if total_queries_target is not None
        else 3 * settings.num_queries
    )
    phase_ms = 1000.0 * target / ((1.0 + load_step) * base_rate)
    startup_delay_ms = phase_ms / 10.0
    window_ms = max(250.0, phase_ms / 5.0)

    trace = PhasedTrace(
        [
            LoadPhase.step(base_rate, phase_ms, label="base"),
            LoadPhase.step(base_rate * load_step, phase_ms, label="step"),
        ],
        WorkloadSpec(batch_sizes=settings.distribution()),
    )
    trace_result = trace.generate(settings.rng(42))

    def build_policy():
        from repro.schedulers.kairos_policy import KairosPolicy

        return KairosPolicy(use_perfect_estimator=not use_online_latency_learning)

    # Static arm: the initial plan, pinned for the whole trace.
    static_sim = ElasticServingSimulation(
        Cluster(plan.selected_config, model, registry),
        build_policy(),
        controller=None,
        startup_delay_ms=startup_delay_ms,
        rng=settings.rng(7),
    )
    static_report = static_sim.run(list(trace_result.queries))

    # Elastic arm: same initial plan (controller primed with the same monitor window),
    # re-planning when the sliding rate estimate departs from the provisioned rate.
    controller = ElasticKairosController(
        model,
        settings.budget_per_hour,
        base_rate,
        profiles=registry,
        batch_distribution=settings.distribution(),
        window_ms=window_ms,
        change_threshold=change_threshold,
        min_observations=25,
        cooldown_ms=2.0 * window_ms,
        monitor_window=len(monitored),
        rng=settings.rng(3),
    )
    controller.prime_monitor(monitored)
    elastic_plan = controller.initial_plan()
    elastic_sim = ElasticServingSimulation(
        Cluster(elastic_plan.selected_config, model, registry),
        build_policy(),
        controller=controller,
        startup_delay_ms=startup_delay_ms,
        rng=settings.rng(7),
    )
    elastic_report = elastic_sim.run(list(trace_result.queries))

    table = FigureTable(
        figure_id="fig12-dynamic",
        title=f"{model.name}: static plan vs. online re-planning under a "
        f"{load_step:g}x load step",
        headers=[
            "phase",
            "offered_qps",
            "static_qps",
            "elastic_qps",
            "static_cost",
            "elastic_cost",
        ],
        rows=phase_comparison_rows(trace_result, static_report, elastic_report),
        notes=[
            f"baseline offered load = {base_load_frac:.2f} x planned upper bound "
            f"({plan.selected_upper_bound:.1f} qps)",
            f"phase duration = {phase_ms:.0f} ms, instance startup delay = "
            f"{startup_delay_ms:.0f} ms",
            f"re-plans: {len(elastic_report.replans)}; "
            f"scale actions: {len(elastic_report.scale_log)}",
        ],
        extras={
            "plan": plan,
            "trace": trace_result,
            "static_report": static_report,
            "elastic_report": elastic_report,
            "num_replans": len(elastic_report.replans),
        },
    )
    return table
