"""Experiment drivers: one entry point per table/figure of the paper's evaluation.

The drivers are deliberately parameterized by :class:`~repro.analysis.settings.ExperimentSettings`
so that the benchmark harnesses can run scaled-down (but structurally identical)
versions of every experiment, while the examples and EXPERIMENTS.md runs can use larger
workloads for tighter numbers.
"""

from repro.analysis.settings import ExperimentSettings
from repro.analysis.schemes import SchemeRunner
from repro.analysis.comparison import normalized_throughput, relative_gain
from repro.analysis.motivation import (
    fig1_hetero_vs_homogeneous,
    fig2_annealing_exploration,
    fig3_distribution_schemes,
    fig5_slack_example,
    fig7_upper_bound_scenarios,
)
from repro.analysis.headline import (
    fig8_vs_homogeneous,
    fig9_vs_sota,
    fig10_evaluation_overhead,
    fig11_search_algorithms,
)
from repro.analysis.elasticity import fig12_dynamic_replan, phase_comparison_rows
from repro.analysis.robustness import (
    fig12_load_change,
    fig13_top_upper_bound_configs,
    fig14_codesign,
    fig15_budget_and_qos,
    fig16_gaussian_and_noise,
)
from repro.analysis.calibration import calibration_report, check_profile_assumptions
from repro.analysis.ablations import (
    ablation_heterogeneity_coefficient,
    ablation_matching_solver,
    ablation_selection_rule,
)
from repro.analysis.reporting import FigureTable

__all__ = [
    "FigureTable",
    "ablation_heterogeneity_coefficient",
    "ablation_matching_solver",
    "ablation_selection_rule",
    "ExperimentSettings",
    "SchemeRunner",
    "normalized_throughput",
    "relative_gain",
    "fig1_hetero_vs_homogeneous",
    "fig2_annealing_exploration",
    "fig3_distribution_schemes",
    "fig5_slack_example",
    "fig7_upper_bound_scenarios",
    "fig8_vs_homogeneous",
    "fig9_vs_sota",
    "fig10_evaluation_overhead",
    "fig11_search_algorithms",
    "fig12_load_change",
    "fig12_dynamic_replan",
    "phase_comparison_rows",
    "fig13_top_upper_bound_configs",
    "fig14_codesign",
    "fig15_budget_and_qos",
    "fig16_gaussian_and_noise",
    "calibration_report",
    "check_profile_assumptions",
]
