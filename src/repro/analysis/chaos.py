"""Chaos-resilience experiment: graceful degradation vs. naive serving under crashes.

The fault-injection subsystem (:mod:`repro.sim.faults`) models what the paper's
evaluation leaves out: capacity that disappears *without warning* (hardware faults,
kernel panics) while the arrival process spikes.  ``fig19_chaos_resilience`` measures
what the graceful-degradation layer is worth under exactly that stress: one demand
target, one flash-crowd trace, one seeded crash schedule, two arms —

* **naive**: the plain serving loop.  Crash-voided in-flight work is lost (a query
  with no retry budget dead-letters on its first failure) and every arrival is
  admitted no matter how deep the backlog, so the flash crowd drives queueing delay
  — and therefore QoS violations — through the whole spike tail;
* **hardened**: the same loop with a bounded-backoff :class:`~repro.sim.faults.RetryPolicy`
  (crash-voided attempts re-queue instead of dying) and an AutoThrottle-style
  :class:`~repro.sim.faults.AdmissionController` (overflow is shed lowest-value-first
  so the admitted queries still meet QoS instead of everyone missing together).

Both arms run the identical fleet, trace, service RNG, and fault seed, with crashed
instances auto-replaced like-for-like in both, so realized $/hr is equal up to
boot-time jitter and the comparison isolates exactly one thing: the degradation
policy.  Attainment here counts *offered* queries, not served ones — a dead-lettered
or shed query is a miss by definition — which is the client's view of QoS.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.multi_model import DEFAULT_DEMAND_HEADROOM
from repro.analysis.reporting import FigureTable
from repro.analysis.settings import ExperimentSettings
from repro.cloud.billing import MS_PER_HOUR
from repro.core.kairos import KairosPlanner, SpotAwareKairosPlanner
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.cluster import Cluster
from repro.sim.elasticity import ElasticServingSimulation, ElasticSimulationReport
from repro.sim.faults import AdmissionController, FaultInjector, RetryPolicy
from repro.sim.health import HealthConfig, HedgePolicy
from repro.workload.generator import WorkloadSpec
from repro.workload.phases import LoadPhase, PhasedTrace
from repro.workload.query import Query


def offered_qos_attainment(
    report: ElasticSimulationReport,
    queries: Sequence[Query],
    qos_ms: float,
    t0_ms: float,
    t1_ms: float,
) -> float:
    """Fraction of the window's *offered* queries served within QoS.

    Unlike :func:`repro.analysis.spot.attainment_in_window` (which rates the served
    stream), the denominator here is every query that arrived in the window: a
    dead-lettered, shed, or never-scheduled query counts as a miss exactly like a
    late completion.  Empty windows attain 1.0.
    """
    offered = [q for q in queries if t0_ms <= q.arrival_time_ms < t1_ms]
    if not offered:
        return 1.0
    ok_ids = {
        r.query.query_id for r in report.metrics.records if r.meets_qos(qos_ms)
    }
    return sum(1 for q in offered if q.query_id in ok_ids) / len(offered)


def fig19_chaos_resilience(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    demand_frac: float = 0.5,
    crowd_factor: float = 3.0,
    crashes_per_instance: float = 1.0,
    max_attempts: int = 3,
    total_queries_target: Optional[int] = None,
    use_online_latency_learning: bool = True,
) -> FigureTable:
    """Serve one flash-crowd trace under injected crashes, naive vs. hardened.

    The fleet is the cheapest configuration covering ``demand_frac`` of the
    budget-maximal plan's bound (with the model's default demand headroom) — sized
    for the steady phases, deliberately not for the crowd.  The trace is
    steady / ``crowd_factor`` x steady / steady at 40/20/40% of the duration.  Every
    instance carries a Poisson crash hazard calibrated to ``crashes_per_instance``
    unannounced failures per trace, with like-for-like auto-replacement in *both*
    arms (the fault RNG is consumed in commission order, so both arms see the same
    crash schedule and bill the same fleet).
    """
    settings = settings or ExperimentSettings()
    registry = settings.registry()
    model = settings.model(model_name)
    monitored = settings.monitored_batches()
    budget = settings.budget_per_hour
    headroom = DEFAULT_DEMAND_HEADROOM.get(model.name, 2.0)

    budget_plan = KairosPlanner(
        model, budget, profiles=registry, batch_samples=monitored
    ).plan()
    demand = demand_frac * budget_plan.selected_upper_bound
    plan = SpotAwareKairosPlanner(
        model,
        budget,
        profiles=registry,
        batch_samples=monitored,
        demand_headroom=headroom,
    ).plan_mixed(demand)

    target = (
        int(total_queries_target)
        if total_queries_target is not None
        else 3 * settings.num_queries
    )
    # mean rate over the trace = demand * (0.8 + 0.2 * crowd_factor)
    duration_ms = 1000.0 * target / (demand * (0.8 + 0.2 * crowd_factor))
    startup_delay_ms = duration_ms / 12.0
    crowd_t0 = 0.4 * duration_ms
    crowd_t1 = 0.6 * duration_ms

    hazard_per_hour = crashes_per_instance * MS_PER_HOUR / duration_ms
    faults = FaultInjector.uniform(
        registry.catalog, failures_per_hour=hazard_per_hour, auto_replace=True
    )

    trace = PhasedTrace(
        [
            LoadPhase.step(demand, crowd_t0, label="steady"),
            LoadPhase.step(crowd_factor * demand, crowd_t1 - crowd_t0, label="crowd"),
            LoadPhase.step(demand, duration_ms - crowd_t1, label="steady"),
        ],
        WorkloadSpec(batch_sizes=settings.distribution()),
    )
    trace_result = trace.generate(settings.rng(42))
    queries = list(trace_result.queries)

    def run_arm(*, retry, admission) -> ElasticSimulationReport:
        sim = ElasticServingSimulation(
            Cluster(plan.combined_config, model, registry),
            KairosPolicy(use_perfect_estimator=not use_online_latency_learning),
            startup_delay_ms=startup_delay_ms,
            rng=settings.rng(7),
            faults=faults,
            fault_rng=np.random.default_rng([settings.seed, 505]),
            retry=retry,
            admission=admission,
        )
        return sim.run(queries)

    naive_report = run_arm(retry=None, admission=None)
    hardened_report = run_arm(
        retry=RetryPolicy(
            max_attempts=max_attempts, backoff_base_ms=model.qos_ms / 10.0
        ),
        admission=AdmissionController(
            target_latency_ms=model.qos_ms, initial_concurrency=16
        ),
    )

    rows = []
    for arm, report in (("naive", naive_report), ("hardened", hardened_report)):
        rows.append(
            [
                arm,
                offered_qos_attainment(report, queries, model.qos_ms, 0.0, duration_ms),
                offered_qos_attainment(report, queries, model.qos_ms, crowd_t0, crowd_t1),
                offered_qos_attainment(report, queries, model.qos_ms, crowd_t1, duration_ms),
                report.ledger.cost_in_window(0.0, duration_ms)
                / (duration_ms / MS_PER_HOUR),
                float(report.instance_failures),
                float(report.retries),
                float(len(report.dead_letters)),
                float(len(report.shed_queries)),
                float(len(report.metrics)),
            ]
        )

    naive_att, hardened_att = rows[0][1], rows[1][1]
    table = FigureTable(
        figure_id="fig19-chaos",
        title=f"{model.name}: graceful degradation vs. naive serving under a flash "
        f"crowd ({crowd_factor:g}x) with ~{crashes_per_instance:g} unannounced "
        f"crashes/instance",
        headers=[
            "arm",
            "attainment",
            "attainment_crowd",
            "attainment_post",
            "realized_cost_hr",
            "crashes",
            "retries",
            "dead_letters",
            "shed",
            "served",
        ],
        rows=rows,
        notes=[
            f"demand = {demand_frac:.2f} x budget-max bound = {demand:.1f} qps "
            f"(headroom {headroom:g}); fleet sized for steady load, not the crowd",
            f"crash hazard = {hazard_per_hour:.1f}/instance-hr, auto-replaced "
            f"like-for-like in both arms (boot {startup_delay_ms:.0f} ms)",
            f"flash crowd in [{crowd_t0:.0f}, {crowd_t1:.0f}) ms of "
            f"{duration_ms:.0f} ms; attainment counts offered queries, so dead "
            "letters and shed queries are misses",
            f"offered-QoS attainment: hardened {hardened_att:.1%} vs naive "
            f"{naive_att:.1%} at equal realized $/hr",
        ],
        extras={
            "plan": plan,
            "naive_report": naive_report,
            "hardened_report": hardened_report,
            "demand_qps": demand,
            "duration_ms": duration_ms,
            "crowd_window_ms": (crowd_t0, crowd_t1),
            "qos_ms": model.qos_ms,
            "trace": trace_result,
        },
    )
    return table


def fig21_gray_resilience(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    demand_frac: float = 0.45,
    degradations_per_instance: float = 0.3,
    zombies_per_instance: float = 0.5,
    degradation_factor: float = 8.0,
    max_attempts: int = 3,
    total_queries_target: Optional[int] = None,
    use_online_latency_learning: bool = True,
) -> FigureTable:
    """Serve one steady trace under gray failures, hardened vs. health-aware.

    Gray failures never crash: a degraded server keeps accepting work at
    ``degradation_factor`` x latency forever, and a zombie accepts work and never
    completes it.  Crash-oriented hardening (fig19's retry + admission arm, here
    with a response timeout so zombie-held work eventually re-queues) survives
    that — but keeps routing fresh work onto the sick servers.  The health arm
    runs the identical policy stack plus the oracle-free
    :class:`~repro.sim.health.ServerHealthMonitor` (EWMA latency ratio vs. the
    per-type fleet baseline + phi-accrual overdue suspicion) feeding quarantine
    circuit breakers, and latency-quantile hedged dispatch with exact
    loser-cancellation billing.

    Both arms run the identical fleet, trace, service RNG, and gray schedule (the
    gray RNG is consumed in commission order; ``failures_per_hour`` is zero, so no
    replacement jitter exists and realized $/hr is equal essentially exactly) —
    the comparison isolates detection + isolation + hedging.  Attainment counts
    offered queries; ``attainment_post`` starts at the first gray onset.
    """
    settings = settings or ExperimentSettings()
    registry = settings.registry()
    model = settings.model(model_name)
    monitored = settings.monitored_batches()
    budget = settings.budget_per_hour
    headroom = DEFAULT_DEMAND_HEADROOM.get(model.name, 2.0)

    budget_plan = KairosPlanner(
        model, budget, profiles=registry, batch_samples=monitored
    ).plan()
    demand = demand_frac * budget_plan.selected_upper_bound
    plan = SpotAwareKairosPlanner(
        model,
        budget,
        profiles=registry,
        batch_samples=monitored,
        demand_headroom=headroom,
    ).plan_mixed(demand)

    target = (
        int(total_queries_target)
        if total_queries_target is not None
        else 3 * settings.num_queries
    )
    duration_ms = 1000.0 * target / demand
    startup_delay_ms = duration_ms / 12.0

    degradation_hazard = degradations_per_instance * MS_PER_HOUR / duration_ms
    zombie_hazard = zombies_per_instance * MS_PER_HOUR / duration_ms
    faults = FaultInjector.uniform(
        registry.catalog,
        failures_per_hour=0.0,
        degradations_per_hour=degradation_hazard,
        degradation_factor=degradation_factor,
        zombies_per_hour=zombie_hazard,
        auto_replace=False,
    )

    trace = PhasedTrace(
        [LoadPhase.step(demand, duration_ms, label="steady")],
        WorkloadSpec(batch_sizes=settings.distribution()),
    )
    trace_result = trace.generate(settings.rng(42))
    queries = list(trace_result.queries)

    def run_arm(*, health, hedge) -> ElasticSimulationReport:
        sim = ElasticServingSimulation(
            Cluster(plan.combined_config, model, registry),
            KairosPolicy(use_perfect_estimator=not use_online_latency_learning),
            startup_delay_ms=startup_delay_ms,
            rng=settings.rng(7),
            faults=faults,
            fault_rng=np.random.default_rng([settings.seed, 505]),
            gray_rng=np.random.default_rng([settings.seed, 606]),
            retry=RetryPolicy(
                max_attempts=max_attempts,
                backoff_base_ms=model.qos_ms / 10.0,
                response_timeout_ms=4.0 * model.qos_ms,
            ),
            admission=AdmissionController(
                target_latency_ms=model.qos_ms, initial_concurrency=16
            ),
            health=health,
            hedge=hedge,
        )
        return sim.run(queries)

    hardened_report = run_arm(health=None, hedge=None)
    # Detector tuning: per-item latency still varies with the (sub-linear) batch
    # profile, so the degrade ratio sits well above that spread yet far below the
    # 8x true degradation — no healthy server trips, every sick one does.
    health_report = run_arm(
        health=HealthConfig(
            ewma_alpha=0.15,
            degrade_ratio=2.8,
            min_samples=10,
            probation_ms=8.0 * model.qos_ms,
        ),
        hedge=HedgePolicy(quantile=0.9, delay_factor=1.3, min_samples=8),
    )

    # Both arms draw the identical gray schedule; the first onset anywhere opens
    # the post-onset window.
    onsets = [
        e.time_ms
        for report in (hardened_report, health_report)
        for e in report.scale_log
        if e.kind in ("degradation_onset", "zombie_onset")
    ]
    onset_t0 = min(onsets) if onsets else 0.0

    rows = []
    for arm, report in (("hardened", hardened_report), ("health+hedge", health_report)):
        horizon = report.billing_horizon_ms
        lifecycle = {"quarantine": 0, "probation": 0, "breaker_close": 0}
        for e in report.scale_log:
            if e.kind in lifecycle:
                lifecycle[e.kind] += 1
        rows.append(
            [
                arm,
                offered_qos_attainment(report, queries, model.qos_ms, 0.0, duration_ms),
                offered_qos_attainment(
                    report, queries, model.qos_ms, onset_t0, duration_ms
                ),
                report.ledger.cost_in_window(0.0, duration_ms)
                / (duration_ms / MS_PER_HOUR),
                float(lifecycle["quarantine"]),
                float(lifecycle["probation"]),
                float(lifecycle["breaker_close"]),
                float(report.hedges_launched),
                float(report.hedge_wins),
                report.ledger.cost_of_quarantine(horizon),
                report.ledger.cost_of_hedges(horizon),
                float(report.retries),
                float(len(report.dead_letters)),
                float(len(report.shed_queries)),
                float(len(report.metrics)),
            ]
        )

    hardened_att, health_att = rows[0][1], rows[1][1]
    hardened_post, health_post = rows[0][2], rows[1][2]
    table = FigureTable(
        figure_id="fig21-gray",
        title=f"{model.name}: health-aware serving vs. crash-hardened serving under "
        f"gray failures ({degradation_factor:g}x permanent degradation + zombies)",
        headers=[
            "arm",
            "attainment",
            "attainment_post",
            "realized_cost_hr",
            "quarantines",
            "probations",
            "breaker_closes",
            "hedges",
            "hedge_wins",
            "cost_quarantine",
            "cost_hedges",
            "retries",
            "dead_letters",
            "shed",
            "served",
        ],
        rows=rows,
        notes=[
            f"demand = {demand_frac:.2f} x budget-max bound = {demand:.1f} qps "
            f"(headroom {headroom:g}); no crashes — gray hazards only",
            f"gray hazards: {degradation_hazard:.1f} degradations/instance-hr at "
            f"{degradation_factor:g}x (permanent), {zombie_hazard:.1f} "
            "zombies/instance-hr (accept work, never complete)",
            f"first gray onset at {onset_t0:.0f} ms of {duration_ms:.0f} ms; "
            "attainment counts offered queries, so dead letters and shed are misses",
            f"offered-QoS attainment: health+hedge {health_att:.1%} vs hardened "
            f"{hardened_att:.1%} whole-run, {health_post:.1%} vs "
            f"{hardened_post:.1%} post-onset, at equal realized $/hr",
        ],
        extras={
            "plan": plan,
            "hardened_report": hardened_report,
            "health_report": health_report,
            "demand_qps": demand,
            "duration_ms": duration_ms,
            "onset_t0_ms": onset_t0,
            "qos_ms": model.qos_ms,
            "trace": trace_result,
        },
    )
    return table
