"""Chaos-resilience experiment: graceful degradation vs. naive serving under crashes.

The fault-injection subsystem (:mod:`repro.sim.faults`) models what the paper's
evaluation leaves out: capacity that disappears *without warning* (hardware faults,
kernel panics) while the arrival process spikes.  ``fig19_chaos_resilience`` measures
what the graceful-degradation layer is worth under exactly that stress: one demand
target, one flash-crowd trace, one seeded crash schedule, two arms —

* **naive**: the plain serving loop.  Crash-voided in-flight work is lost (a query
  with no retry budget dead-letters on its first failure) and every arrival is
  admitted no matter how deep the backlog, so the flash crowd drives queueing delay
  — and therefore QoS violations — through the whole spike tail;
* **hardened**: the same loop with a bounded-backoff :class:`~repro.sim.faults.RetryPolicy`
  (crash-voided attempts re-queue instead of dying) and an AutoThrottle-style
  :class:`~repro.sim.faults.AdmissionController` (overflow is shed lowest-value-first
  so the admitted queries still meet QoS instead of everyone missing together).

Both arms run the identical fleet, trace, service RNG, and fault seed, with crashed
instances auto-replaced like-for-like in both, so realized $/hr is equal up to
boot-time jitter and the comparison isolates exactly one thing: the degradation
policy.  Attainment here counts *offered* queries, not served ones — a dead-lettered
or shed query is a miss by definition — which is the client's view of QoS.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.multi_model import DEFAULT_DEMAND_HEADROOM
from repro.analysis.reporting import FigureTable
from repro.analysis.settings import ExperimentSettings
from repro.cloud.billing import MS_PER_HOUR
from repro.core.kairos import KairosPlanner, SpotAwareKairosPlanner
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.cluster import Cluster
from repro.sim.elasticity import ElasticServingSimulation, ElasticSimulationReport
from repro.sim.faults import AdmissionController, FaultInjector, RetryPolicy
from repro.workload.generator import WorkloadSpec
from repro.workload.phases import LoadPhase, PhasedTrace
from repro.workload.query import Query


def offered_qos_attainment(
    report: ElasticSimulationReport,
    queries: Sequence[Query],
    qos_ms: float,
    t0_ms: float,
    t1_ms: float,
) -> float:
    """Fraction of the window's *offered* queries served within QoS.

    Unlike :func:`repro.analysis.spot.attainment_in_window` (which rates the served
    stream), the denominator here is every query that arrived in the window: a
    dead-lettered, shed, or never-scheduled query counts as a miss exactly like a
    late completion.  Empty windows attain 1.0.
    """
    offered = [q for q in queries if t0_ms <= q.arrival_time_ms < t1_ms]
    if not offered:
        return 1.0
    ok_ids = {
        r.query.query_id for r in report.metrics.records if r.meets_qos(qos_ms)
    }
    return sum(1 for q in offered if q.query_id in ok_ids) / len(offered)


def fig19_chaos_resilience(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    demand_frac: float = 0.5,
    crowd_factor: float = 3.0,
    crashes_per_instance: float = 1.0,
    max_attempts: int = 3,
    total_queries_target: Optional[int] = None,
    use_online_latency_learning: bool = True,
) -> FigureTable:
    """Serve one flash-crowd trace under injected crashes, naive vs. hardened.

    The fleet is the cheapest configuration covering ``demand_frac`` of the
    budget-maximal plan's bound (with the model's default demand headroom) — sized
    for the steady phases, deliberately not for the crowd.  The trace is
    steady / ``crowd_factor`` x steady / steady at 40/20/40% of the duration.  Every
    instance carries a Poisson crash hazard calibrated to ``crashes_per_instance``
    unannounced failures per trace, with like-for-like auto-replacement in *both*
    arms (the fault RNG is consumed in commission order, so both arms see the same
    crash schedule and bill the same fleet).
    """
    settings = settings or ExperimentSettings()
    registry = settings.registry()
    model = settings.model(model_name)
    monitored = settings.monitored_batches()
    budget = settings.budget_per_hour
    headroom = DEFAULT_DEMAND_HEADROOM.get(model.name, 2.0)

    budget_plan = KairosPlanner(
        model, budget, profiles=registry, batch_samples=monitored
    ).plan()
    demand = demand_frac * budget_plan.selected_upper_bound
    plan = SpotAwareKairosPlanner(
        model,
        budget,
        profiles=registry,
        batch_samples=monitored,
        demand_headroom=headroom,
    ).plan_mixed(demand)

    target = (
        int(total_queries_target)
        if total_queries_target is not None
        else 3 * settings.num_queries
    )
    # mean rate over the trace = demand * (0.8 + 0.2 * crowd_factor)
    duration_ms = 1000.0 * target / (demand * (0.8 + 0.2 * crowd_factor))
    startup_delay_ms = duration_ms / 12.0
    crowd_t0 = 0.4 * duration_ms
    crowd_t1 = 0.6 * duration_ms

    hazard_per_hour = crashes_per_instance * MS_PER_HOUR / duration_ms
    faults = FaultInjector.uniform(
        registry.catalog, failures_per_hour=hazard_per_hour, auto_replace=True
    )

    trace = PhasedTrace(
        [
            LoadPhase.step(demand, crowd_t0, label="steady"),
            LoadPhase.step(crowd_factor * demand, crowd_t1 - crowd_t0, label="crowd"),
            LoadPhase.step(demand, duration_ms - crowd_t1, label="steady"),
        ],
        WorkloadSpec(batch_sizes=settings.distribution()),
    )
    trace_result = trace.generate(settings.rng(42))
    queries = list(trace_result.queries)

    def run_arm(*, retry, admission) -> ElasticSimulationReport:
        sim = ElasticServingSimulation(
            Cluster(plan.combined_config, model, registry),
            KairosPolicy(use_perfect_estimator=not use_online_latency_learning),
            startup_delay_ms=startup_delay_ms,
            rng=settings.rng(7),
            faults=faults,
            fault_rng=np.random.default_rng([settings.seed, 505]),
            retry=retry,
            admission=admission,
        )
        return sim.run(queries)

    naive_report = run_arm(retry=None, admission=None)
    hardened_report = run_arm(
        retry=RetryPolicy(
            max_attempts=max_attempts, backoff_base_ms=model.qos_ms / 10.0
        ),
        admission=AdmissionController(
            target_latency_ms=model.qos_ms, initial_concurrency=16
        ),
    )

    rows = []
    for arm, report in (("naive", naive_report), ("hardened", hardened_report)):
        rows.append(
            [
                arm,
                offered_qos_attainment(report, queries, model.qos_ms, 0.0, duration_ms),
                offered_qos_attainment(report, queries, model.qos_ms, crowd_t0, crowd_t1),
                offered_qos_attainment(report, queries, model.qos_ms, crowd_t1, duration_ms),
                report.ledger.cost_in_window(0.0, duration_ms)
                / (duration_ms / MS_PER_HOUR),
                float(report.instance_failures),
                float(report.retries),
                float(len(report.dead_letters)),
                float(len(report.shed_queries)),
                float(len(report.metrics)),
            ]
        )

    naive_att, hardened_att = rows[0][1], rows[1][1]
    table = FigureTable(
        figure_id="fig19-chaos",
        title=f"{model.name}: graceful degradation vs. naive serving under a flash "
        f"crowd ({crowd_factor:g}x) with ~{crashes_per_instance:g} unannounced "
        f"crashes/instance",
        headers=[
            "arm",
            "attainment",
            "attainment_crowd",
            "attainment_post",
            "realized_cost_hr",
            "crashes",
            "retries",
            "dead_letters",
            "shed",
            "served",
        ],
        rows=rows,
        notes=[
            f"demand = {demand_frac:.2f} x budget-max bound = {demand:.1f} qps "
            f"(headroom {headroom:g}); fleet sized for steady load, not the crowd",
            f"crash hazard = {hazard_per_hour:.1f}/instance-hr, auto-replaced "
            f"like-for-like in both arms (boot {startup_delay_ms:.0f} ms)",
            f"flash crowd in [{crowd_t0:.0f}, {crowd_t1:.0f}) ms of "
            f"{duration_ms:.0f} ms; attainment counts offered queries, so dead "
            "letters and shed queries are misses",
            f"offered-QoS attainment: hardened {hardened_att:.1%} vs naive "
            f"{naive_att:.1%} at equal realized $/hr",
        ],
        extras={
            "plan": plan,
            "naive_report": naive_report,
            "hardened_report": hardened_report,
            "demand_qps": demand,
            "duration_ms": duration_ms,
            "crowd_window_ms": (crowd_t0, crowd_t1),
            "qos_ms": model.qos_ms,
            "trace": trace_result,
        },
    )
    return table
