"""Ablation experiments beyond the paper's figures.

These isolate the design choices DESIGN.md calls out:

* the heterogeneity coefficient ``C_j`` (weighting instance time by value) vs. treating
  all instance time as equal;
* the similarity-based configuration selection vs. naively taking the top-1 upper bound;
* the exact min-cost matching (Jonker-Volgenant) vs. a greedy matcher.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.reporting import FigureTable
from repro.analysis.schemes import SchemeRunner
from repro.analysis.settings import ExperimentSettings
from repro.core.kairos import KairosPlanner
from repro.core.latency_model import OnlineLatencyEstimator
from repro.core.selection import select_configuration
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.capacity import measure_allowable_throughput


class _UnweightedKairosPolicy(KairosPolicy):
    """Kairos with the heterogeneity coefficient disabled (every C_j forced to 1)."""

    name = "KAIROS-noC"

    def _rebuild_distributor(self) -> None:  # noqa: D401 - see class docstring
        super()._rebuild_distributor()
        assert self._distributor is not None
        self._distributor.coefficients = {
            key: 1.0 for key in self._distributor.coefficients
        }


def ablation_heterogeneity_coefficient(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
) -> FigureTable:
    """Throughput of the selected configuration with and without the C_j weighting."""
    settings = settings or ExperimentSettings()
    runner = SchemeRunner(settings, model_name)
    plan = KairosPlanner(
        settings.model(model_name),
        settings.budget_per_hour,
        profiles=settings.registry(),
        batch_samples=settings.monitored_batches(),
    ).plan()

    def measure(policy_factory) -> float:
        return measure_allowable_throughput(
            plan.selected_config,
            settings.model(model_name),
            settings.registry(),
            policy_factory,
            workload_spec=settings.workload_spec(),
            rng=settings.rng(31),
            max_iterations=settings.capacity_iterations,
        ).qps

    with_c = measure(KairosPolicy)
    without_c = measure(_UnweightedKairosPolicy)
    rows = [
        ["with heterogeneity coefficient", with_c],
        ["without (all C_j = 1)", without_c],
    ]
    return FigureTable(
        figure_id="ablation-coefficient",
        title=f"Heterogeneity-coefficient ablation ({model_name}, config {plan.selected_config})",
        headers=["variant", "throughput_qps"],
        rows=rows,
    )


def ablation_selection_rule(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    top_k: int = 10,
) -> FigureTable:
    """Similarity-based selection vs. naively trusting the highest upper bound."""
    settings = settings or ExperimentSettings()
    runner = SchemeRunner(settings, model_name)
    plan = KairosPlanner(
        settings.model(model_name),
        settings.budget_per_hour,
        profiles=settings.registry(),
        batch_samples=settings.monitored_batches(),
    ).plan()
    top1_config = plan.ranked[0][0]
    selected_config = plan.selected_config
    rows: List[Sequence] = [
        [
            "top-1 upper bound",
            str(top1_config),
            runner.measure(top1_config, "KAIROS"),
        ],
        [
            "similarity-based selection",
            str(selected_config),
            runner.measure(selected_config, "KAIROS"),
        ],
    ]
    best_qps = 0.0
    best_config = None
    for config, _ in plan.top(top_k):
        qps = runner.measure(config, "KAIROS")
        if qps > best_qps:
            best_qps, best_config = qps, config
    rows.append([f"best of top-{top_k} (oracle pick)", str(best_config), best_qps])
    return FigureTable(
        figure_id="ablation-selection",
        title=f"Configuration-selection ablation ({model_name})",
        headers=["variant", "config", "throughput_qps"],
        rows=rows,
    )


def ablation_matching_solver(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    solvers: Sequence[str] = ("jv", "hungarian", "greedy", "scipy"),
) -> FigureTable:
    """Throughput of the selected configuration under different assignment solvers."""
    settings = settings or ExperimentSettings()
    plan = KairosPlanner(
        settings.model(model_name),
        settings.budget_per_hour,
        profiles=settings.registry(),
        batch_samples=settings.monitored_batches(),
    ).plan()
    rows: List[Sequence] = []
    for solver in solvers:
        qps = measure_allowable_throughput(
            plan.selected_config,
            settings.model(model_name),
            settings.registry(),
            lambda: KairosPolicy(solver_method=solver),
            workload_spec=settings.workload_spec(),
            rng=settings.rng(33),
            max_iterations=settings.capacity_iterations,
        ).qps
        rows.append([solver, qps])
    return FigureTable(
        figure_id="ablation-solver",
        title=f"Assignment-solver ablation ({model_name}, config {plan.selected_config})",
        headers=["solver", "throughput_qps"],
        rows=rows,
        notes=["jv / hungarian / scipy are exact and should tie; greedy is the approximate baseline."],
    )
