"""Shared experiment settings.

Every figure driver takes an :class:`ExperimentSettings` instance describing the cloud
substrate (profiles, catalog), the workload (batch-size distribution, queries per
capacity probe), the budget, and the fidelity knobs (bisection iterations, monitor
sample count, random seed).  ``ExperimentSettings.fast()`` returns the scaled-down
preset the benchmark harnesses use so that regenerating every figure stays in the
minutes range on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.cloud.billing import BillingModel
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG, InstanceCatalog
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry, default_profile_registry
from repro.utils.rng import ensure_rng
from repro.workload.batch_sizes import BatchSizeDistribution, production_batch_distribution
from repro.workload.generator import WorkloadSpec

#: The models of Table 3 in the paper's presentation order.
DEFAULT_MODELS: Tuple[str, ...] = ("NCF", "RM2", "MT-WND", "WND", "DIEN")


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment driver."""

    budget_per_hour: float = 2.5
    base_type: str = "g4dn.xlarge"
    models: Tuple[str, ...] = DEFAULT_MODELS
    num_queries: int = 800
    capacity_iterations: int = 7
    monitor_samples: int = 8000
    seed: int = 7
    batch_distribution: Optional[BatchSizeDistribution] = None
    profiles: Optional[ProfileRegistry] = None

    # -- derived helpers -------------------------------------------------------------
    def registry(self) -> ProfileRegistry:
        return self.profiles if self.profiles is not None else default_profile_registry()

    def catalog(self) -> InstanceCatalog:
        return self.registry().catalog

    def billing(self) -> BillingModel:
        return BillingModel(self.catalog())

    def model(self, name: str) -> MLModel:
        return self.registry().models[name]

    def distribution(self) -> BatchSizeDistribution:
        return (
            self.batch_distribution
            if self.batch_distribution is not None
            else production_batch_distribution()
        )

    def workload_spec(self) -> WorkloadSpec:
        return WorkloadSpec(batch_sizes=self.distribution(), num_queries=self.num_queries)

    def rng(self, offset: int = 0) -> np.random.Generator:
        return ensure_rng(self.seed + offset)

    def monitored_batches(self, offset: int = 0) -> np.ndarray:
        """The query monitor's batch-size window used for UB estimation and oracle packing."""
        return self.distribution().sample(self.monitor_samples, self.rng(1000 + offset))

    # -- presets -----------------------------------------------------------------------
    def scaled(self, **overrides) -> "ExperimentSettings":
        return replace(self, **overrides)

    @classmethod
    def default(cls) -> "ExperimentSettings":
        return cls()

    @classmethod
    def fast(cls) -> "ExperimentSettings":
        """Scaled-down preset used by the benchmark harnesses."""
        return cls(
            num_queries=450,
            capacity_iterations=5,
            monitor_samples=4000,
        )
