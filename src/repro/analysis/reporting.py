"""Uniform result container for the figure drivers.

Every experiment driver returns a :class:`FigureTable`: the figure/table id, the column
headers, the data rows, and free-form notes (e.g. which knobs were scaled down).  The
benchmark harnesses print and persist these tables; EXPERIMENTS.md quotes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.utils.tables import format_table


@dataclass
class FigureTable:
    """A reproduced table or figure, in row form."""

    figure_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence]
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def format(self, float_fmt: str = ".3f") -> str:
        """Render the table (plus notes) as ASCII text."""
        body = format_table(
            self.headers, self.rows, float_fmt=float_fmt, title=f"{self.figure_id}: {self.title}"
        )
        if self.notes:
            body += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return body

    def save(self, path: Union[str, Path], float_fmt: str = ".3f") -> Path:
        """Write the formatted table to ``path`` (parent directories are created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.format(float_fmt=float_fmt) + "\n")
        return path

    def column(self, name: str) -> List:
        """Extract one column by header name."""
        try:
            idx = list(self.headers).index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}; headers are {list(self.headers)}") from None
        return [row[idx] for row in self.rows]

    def row_map(self, key_column: str, value_column: str) -> Dict:
        """Build a ``{key_column: value_column}`` mapping from the rows."""
        keys = self.column(key_column)
        values = self.column(value_column)
        return dict(zip(keys, values))
