"""DAG pipelines: critical-path-aware matching vs. stage-local Kairos at equal budget.

Recommendation serving is rarely one query deep: a request fans through feature
lookup, candidate generation, and ranking stages, each a query against a different
co-located model, with one *end-to-end* deadline over the whole DAG.  The pipeline
subsystem (:mod:`repro.pipeline`) threads such task graphs through the multi-model
serving loop — completing a stage releases its successors as same-instant arrivals —
and ``fig20_pipeline_deadlines`` measures what graph-awareness in the *scheduler* is
worth once the release machinery is in place.  Two arms, identical cluster (so
provisioned $/hr is equal by construction), identical background streams, identical
graph fleet, identical service RNG:

* **stage-local**: plain :class:`~repro.schedulers.kairos_policy.MultiModelKairosPolicy`
  matching.  A stage query is just another pending query; the scheduler knows nothing
  of deadlines or remaining depth, so blown graphs keep consuming capacity and
  deep-but-feasible graphs lose ties to background traffic until their slack is gone;
* **graph-aware**: :class:`~repro.pipeline.CriticalPathKairosPolicy` folds each
  stage's laxity (end-to-end deadline minus critical-path-remaining) into the
  matching cost, so stages on the longest remaining path win ties, and graph-aware
  admission sheds *whole doomed graphs* — stages whose deadline the critical path
  already overruns — instead of letting them poison the backlog.

Attainment is per *graph*: a graph counts only if every stage was served and the sink
finished within the end-to-end deadline, so a shed graph is a miss by definition in
both arms.  The benchmark asserts the graph-aware arm strictly wins deadline
attainment at equal provisioned budget, per seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import FigureTable
from repro.analysis.settings import ExperimentSettings
from repro.core.kairos import KairosPlanner
from repro.pipeline import (
    CriticalPathKairosPolicy,
    PipelineServingSimulation,
    TaskGraph,
    chain_graph,
    diamond_graph,
    realize_graphs,
)
from repro.schedulers.kairos_policy import MultiModelKairosPolicy
from repro.sim.cluster import MultiModelCluster
from repro.workload.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    interleave_model_streams,
)

ARMS = ("stage-local", "graph-aware")


def pipeline_fleet(
    num_graphs: int,
    model_names: Sequence[str],
    tight_deadline_ms: float,
    loose_deadline_ms: float,
    span_ms: float,
    *,
    wave_size: int = 4,
    release_window: Tuple[float, float] = (0.2, 0.7),
) -> List[TaskGraph]:
    """Mixed-urgency waves of chains and diamonds, released across the trace.

    Graphs arrive ``wave_size`` at a time on one instant — the contended case,
    where *which stage the scheduler serves next* decides who meets a deadline.
    Each wave mixes urgencies: half the graphs carry the tight end-to-end
    deadline (and double value), half the loose one, so laxity arbitration has a
    real trade to make — a scheduler that interleaves fairly blows the tight
    deadlines while the loose graphs had slack to spare.  Stages alternate
    between the two models so every graph crosses both model partitions.
    Releases span ``release_window`` of the background trace: late enough that
    the online learners have warmed up, early enough that sinks finish in-trace.
    """
    a = model_names[0]
    b = model_names[-1]
    lo, hi = release_window
    waves = max(1, (num_graphs + wave_size - 1) // wave_size)
    graphs: List[TaskGraph] = []
    for i in range(num_graphs):
        wave = i // wave_size
        frac = lo + (hi - lo) * (wave / max(1, waves - 1))
        release = span_ms * frac
        tight = i % 2 == 0
        deadline = tight_deadline_ms if tight else loose_deadline_ms
        value = 2.0 if tight else 1.0
        if i % 4 < 2:
            graphs.append(
                chain_graph(
                    i,
                    ((a, 24), (b, 16), (a, 8)),
                    deadline,
                    value=value,
                    release_ms=release,
                )
            )
        else:
            graphs.append(
                diamond_graph(
                    i,
                    (a, 24),
                    (b, 12),
                    (a, 12),
                    (b, 8),
                    deadline,
                    value=value,
                    release_ms=release,
                )
            )
    return graphs


def fig20_pipeline_deadlines(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_names: Sequence[str] = ("RM2", "WND"),
    load_frac: float = 0.85,
    num_graphs: int = 32,
    tight_deadline_ms: float = 250.0,
    loose_deadline_ms: float = 1500.0,
    queries_per_model: Optional[int] = None,
    use_online_latency_learning: bool = True,
) -> FigureTable:
    """Serve one graph fleet over background contention, stage-local vs. graph-aware.

    Each model's cluster is its independently planned (half-budget) configuration
    and its background stream offers ``load_frac`` of that plan's Eq. 15 upper
    bound, so the pool has headroom for queries but *not* for the extra pipeline
    stages — the regime where scheduling order, not capacity, decides which graphs
    make their deadlines.  Both arms run the identical cluster, background stream,
    graph fleet, warm-up, and service RNG; the only difference is the policy and
    the ``graph_aware`` admission flag.
    """
    settings = settings or ExperimentSettings()
    registry = settings.registry()
    names: Tuple[str, ...] = tuple(model_names)
    if len(names) < 2:
        raise ValueError("the pipeline scenario needs at least two models")
    n_queries = (
        int(queries_per_model) if queries_per_model is not None else settings.num_queries
    )
    warmup = max(1, n_queries // 6)
    budget = settings.budget_per_hour

    plans = {
        name: KairosPlanner(
            name,
            budget / len(names),
            profiles=registry,
            batch_samples=settings.monitored_batches(offset=i),
        ).plan()
        for i, name in enumerate(names)
    }
    offered = {name: load_frac * plans[name].selected_upper_bound for name in names}
    configs = {name: plans[name].selected_config for name in names}
    provisioned_cost = sum(c.cost_per_hour() for c in configs.values())

    streams = {}
    for i, name in enumerate(names):
        spec = WorkloadSpec(
            batch_sizes=settings.distribution(),
            num_queries=n_queries,
            model_name=name,
        )
        streams[name] = WorkloadGenerator(spec).generate(
            rate_qps=offered[name], rng=settings.rng(50 + i)
        )
    background = interleave_model_streams(streams)
    span_ms = max(q.arrival_time_ms for q in background)
    graphs = pipeline_fleet(
        num_graphs, names, tight_deadline_ms, loose_deadline_ms, span_ms
    )

    def run_arm(graph_aware: bool):
        # Fresh realization per arm: runtimes and stage queries are stateful.
        sources, coordinator = realize_graphs(graphs, len(background))
        if graph_aware:
            policy = CriticalPathKairosPolicy(
                coordinator, use_perfect_estimator=not use_online_latency_learning
            )
        else:
            policy = MultiModelKairosPolicy(
                use_perfect_estimator=not use_online_latency_learning
            )
        sim = PipelineServingSimulation(
            MultiModelCluster(configs, registry),
            policy,
            coordinator=coordinator,
            graph_aware=graph_aware,
            rng=settings.rng(11),
            warmup_queries=warmup,
        )
        report = sim.run(
            sorted(background + sources, key=lambda q: q.arrival_time_ms)
        )
        return sim, report

    rows = []
    extras = {
        "graphs": graphs,
        "offered_qps": offered,
        "provisioned_cost_per_hour": provisioned_cost,
    }
    for arm in ARMS:
        graph_aware = arm == "graph-aware"
        sim, report = run_arm(graph_aware)
        outcomes = sim.graph_outcomes
        served = [o for o in outcomes if o.outcome == "served"]
        met = [o for o in served if o.deadline_met]
        mean_e2e = (
            sum(o.e2e_latency_ms for o in served) / len(served) if served else 0.0
        )
        rows.append(
            [
                arm,
                len(outcomes),
                len(met),
                sim.deadline_attainment(),
                sim.value_deadline_attainment(),
                len(served),
                sum(1 for o in outcomes if o.outcome == "shed"),
                sum(1 for o in outcomes if o.outcome == "dead"),
                sum(1 for o in outcomes if o.outcome == "unserved"),
                mean_e2e,
                report.total_cost(),
            ]
        )
        extras[arm] = {
            "report": report,
            "outcomes": outcomes,
            "attainment": sim.deadline_attainment(),
            "value_attainment": sim.value_deadline_attainment(),
        }

    table = FigureTable(
        figure_id="fig20-pipeline",
        title=f"{'+'.join(names)} task graphs: graph-aware vs. stage-local Kairos "
        f"at equal provisioned budget ({provisioned_cost:g}$/hr)",
        headers=[
            "arm",
            "graphs",
            "deadline_met",
            "attainment",
            "value_attainment",
            "served",
            "shed",
            "dead",
            "unserved",
            "mean_e2e_ms",
            "realized_cost",
        ],
        rows=rows,
        notes=[
            f"{num_graphs} graphs (chains + diamonds) in waves of 4, end-to-end "
            f"deadlines {tight_deadline_ms:g} ms (tight, 2x value) / "
            f"{loose_deadline_ms:g} ms (loose), released across the trace",
            f"background load = {load_frac:.2f} x each half-budget plan's upper bound",
            "both arms: identical cluster, streams, graph fleet, warm-up, and "
            "service RNG — the policy and the graph_aware flag are the only delta",
            "attainment counts whole graphs: shed / dead / unserved graphs are "
            "misses by definition",
        ],
        extras=extras,
    )
    return table
