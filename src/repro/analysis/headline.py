"""Headline evaluation experiments: Figs. 8, 9, 10 and 11."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import FigureTable
from repro.analysis.schemes import SchemeRunner
from repro.analysis.settings import ExperimentSettings
from repro.cloud.config import HeterogeneousConfig
from repro.core.config_space import enumerate_configs
from repro.core.kairos import KairosPlanner
from repro.core.kairos_plus import KairosPlusSearch
from repro.schedulers.oracle import OracleScheduler
from repro.search.base import SearchAlgorithm
from repro.search.bayesian import BayesianOptimizationSearch
from repro.search.genetic import GeneticSearch
from repro.search.random_search import RandomSearch


def _kairos_plan(settings: ExperimentSettings, model_name: str, budget: Optional[float] = None):
    planner = KairosPlanner(
        settings.model(model_name),
        budget if budget is not None else settings.budget_per_hour,
        profiles=settings.registry(),
        batch_samples=settings.monitored_batches(),
    )
    return planner.plan()


def fig8_vs_homogeneous(
    settings: Optional[ExperimentSettings] = None,
    *,
    models: Optional[Sequence[str]] = None,
) -> FigureTable:
    """Fig. 8: Kairos vs. the optimal homogeneous configuration (normalized throughput)."""
    settings = settings or ExperimentSettings()
    models = list(models) if models is not None else list(settings.models)
    rows: List[Sequence] = []
    for offset, model_name in enumerate(models):
        runner = SchemeRunner(settings, model_name)
        baseline = runner.homogeneous_baseline(rng_offset=offset)
        plan = _kairos_plan(settings, model_name)
        kairos_qps = runner.measure(plan.selected_config, "KAIROS", rng_offset=offset)
        rows.append(
            [
                model_name,
                str(baseline["config"]),
                baseline["scaled_qps"],
                str(plan.selected_config),
                kairos_qps,
                kairos_qps / baseline["scaled_qps"] if baseline["scaled_qps"] else float("nan"),
            ]
        )
    return FigureTable(
        figure_id="fig8",
        title="Kairos vs. optimal homogeneous configuration",
        headers=[
            "model",
            "homog_config",
            "homog_qps_scaled",
            "kairos_config",
            "kairos_qps",
            "normalized",
        ],
        rows=rows,
        notes=[
            "Paper Fig. 8 normalized values: NCF 1.68, RM2 2.03, MT-WND 1.25, WND 1.34, DIEN 1.43.",
            "The homogeneous throughput is scaled up proportionally to the unused budget (Sec. 8.1).",
        ],
    )


def fig9_vs_sota(
    settings: Optional[ExperimentSettings] = None,
    *,
    models: Optional[Sequence[str]] = None,
    run_kairos_plus: bool = True,
) -> FigureTable:
    """Fig. 9: Kairos and Kairos+ vs. Ribbon, DRS, CLKWRK and the Oracle.

    The competing schemes are granted the best heterogeneous configuration found by an
    exhaustive clairvoyant (oracle) search, exactly as in the paper, and their
    exploration overhead is ignored.  Kairos runs on its own one-shot selection.
    """
    settings = settings or ExperimentSettings()
    models = list(models) if models is not None else list(settings.models)
    rows: List[Sequence] = []
    for offset, model_name in enumerate(models):
        runner = SchemeRunner(settings, model_name)
        configs = enumerate_configs(settings.budget_per_hour, settings.catalog(), min_base_count=0)
        oracle = OracleScheduler(settings.registry(), settings.model(model_name))
        monitor = settings.monitored_batches()
        oracle_config, oracle_qps = oracle.best_configuration(configs, monitor)

        ribbon = runner.measure(oracle_config, "RIBBON", rng_offset=offset)
        drs = runner.measure(oracle_config, "DRS", rng_offset=offset)
        clkwrk = runner.measure(oracle_config, "CLKWRK", rng_offset=offset)

        plan = _kairos_plan(settings, model_name)
        kairos = runner.measure(plan.selected_config, "KAIROS", rng_offset=offset)

        if run_kairos_plus:
            plus_search = KairosPlusSearch(plan.ranked, runner.oracle_throughput)
            plus_result = plus_search.run()
            plus_config = plus_result.best_config or plan.selected_config
            kairos_plus = max(kairos, runner.measure(plus_config, "KAIROS", rng_offset=offset))
        else:
            kairos_plus = float("nan")

        norm = ribbon if ribbon > 0 else 1.0
        rows.append(
            [
                model_name,
                str(oracle_config),
                ribbon / norm,
                drs / norm,
                clkwrk / norm,
                kairos / norm,
                kairos_plus / norm,
                oracle_qps / norm,
            ]
        )
    return FigureTable(
        figure_id="fig9",
        title="Throughput comparison against state-of-the-art schemes (normalized to Ribbon)",
        headers=["model", "oracle_config", "RIBBON", "DRS", "CLKWRK", "KAIROS", "KAIROS+", "ORCL"],
        rows=rows,
        notes=[
            "Competing schemes use the oracle-best configuration (their exploration cost is ignored).",
            "Paper Fig. 9: Kairos ~1.5x Ribbon, up to 44% over DRS/CLKWRK, close to the Oracle;"
            " Kairos+ slightly above Kairos.",
        ],
    )


def fig10_evaluation_overhead(
    settings: Optional[ExperimentSettings] = None,
    *,
    models: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = ("RIBBON", "DRS", "CLKWRK", "KAIROS"),
    backend: str = "sim",
    max_evaluations: Optional[int] = None,
) -> FigureTable:
    """Fig. 10: online evaluations needed to find each scheme's optimal configuration.

    Every scheme is granted the same exploration algorithm as Kairos+ (Algorithm 1,
    upper-bound ordering plus pruning); the difference in evaluation counts comes from
    the throughput each scheme's own query-distribution mechanism achieves — higher
    achieved throughput prunes more of the space.  The KAIROS column is therefore
    exactly Kairos+.
    """
    settings = settings or ExperimentSettings()
    models = list(models) if models is not None else list(settings.models)
    rows: List[Sequence] = []
    for offset, model_name in enumerate(models):
        runner = SchemeRunner(settings, model_name)
        plan = _kairos_plan(settings, model_name)
        space_size = plan.search_space_size
        row: List = [model_name, space_size]
        for scheme in schemes:
            if backend == "oracle" and scheme.upper() != "KAIROS":
                evaluator = runner.config_evaluator("oracle")
            else:
                evaluator = runner.config_evaluator("sim", scheme=scheme, rng_offset=offset)
            search = KairosPlusSearch(plan.ranked, evaluator, max_evaluations=max_evaluations)
            result = search.run()
            row.append(100.0 * result.num_evaluations / space_size)
        rows.append(row)
    notes = [
        "All schemes use Kairos+'s upper-bound-guided search; KAIROS column = Kairos+.",
        "Paper Fig. 10: Kairos+ consistently below 1% of the search space.",
    ]
    if max_evaluations is not None:
        notes.append(
            f"Evaluation counts are censored at {max_evaluations} per scheme (scaled-down run)."
        )
    return FigureTable(
        figure_id="fig10",
        title="Online evaluations to reach the optimal configuration (% of search space)",
        headers=["model", "search_space", *[f"{s}_evals_pct" for s in schemes]],
        rows=rows,
        notes=notes,
    )


def fig11_search_algorithms(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    max_evaluations: int = 60,
    backend: str = "oracle",
) -> FigureTable:
    """Fig. 11: Kairos+ vs. random search, genetic algorithm, and Ribbon's Bayesian optimization.

    All competing algorithms are granted the same sub-configuration pruning as Kairos+;
    the reported number is the count of online evaluations until each algorithm first
    evaluated its best-found configuration, as a percentage of the search space.
    """
    settings = settings or ExperimentSettings()
    runner = SchemeRunner(settings, model_name)
    plan = _kairos_plan(settings, model_name)
    evaluator = runner.config_evaluator(backend)
    configs = [config for config, _ in plan.ranked]
    space = len(configs)

    algorithms: List[Tuple[str, SearchAlgorithm]] = [
        ("RAND", RandomSearch(max_evaluations=max_evaluations, use_pruning=True)),
        ("GENE", GeneticSearch(max_evaluations=max_evaluations, use_pruning=True)),
        ("RIBBON", BayesianOptimizationSearch(max_evaluations=max_evaluations, use_pruning=True)),
    ]
    rows: List[Sequence] = []
    for name, algorithm in algorithms:
        result = algorithm.search(configs, evaluator, rng=settings.rng(11))
        rows.append(
            [
                name,
                result.num_evaluations,
                result.evaluations_until_best,
                100.0 * result.evaluations_until_best / space,
                result.best_value,
            ]
        )
    plus = KairosPlusSearch(plan.ranked, evaluator).run()
    until_best = 0
    if plus.evaluations:
        values = [v for _, v in plus.evaluations]
        until_best = int(np.argmax(values)) + 1
    rows.append(
        [
            "KAIROS+",
            plus.num_evaluations,
            until_best,
            100.0 * until_best / space,
            plus.best_throughput,
        ]
    )
    return FigureTable(
        figure_id="fig11",
        title=f"Search-algorithm comparison ({model_name}, search space of {space})",
        headers=[
            "algorithm",
            "total_evaluations",
            "evals_until_best",
            "evals_until_best_pct",
            "best_throughput_qps",
        ],
        rows=rows,
        notes=[
            "All algorithms use sub-configuration pruning (as granted in the paper).",
            "Paper Fig. 11: competing searches need significantly more evaluations than Kairos+.",
        ],
    )
