"""Spot-market experiments: risk-aware mixed-market serving vs. all-on-demand.

The paper's budget constraint prices everything at the on-demand rate; real clouds sell
the same instance types at a 60-90% discount as preemptible *spot* capacity.
``fig18_spot_savings`` quantifies what the reproduction gains from that second price
axis: one demand target, two arms —

* **all-on-demand**: the cheapest all-on-demand configuration whose Eq. 15 bound
  covers the demand (the :class:`~repro.core.kairos.SpotAwareKairosPlanner` with no
  market), pinned for the whole trace;
* **mixed (risk-aware)**: the cheapest on-demand + spot pair whose *risk-discounted*
  effective bound covers the demand, under a minimum on-demand floor.  The spot
  portion lives under a nonzero Poisson preemption hazard, the run includes a scripted
  worst-case **preemption burst** that reclaims every spot instance at once, and the
  preemption-tolerant loop (deadline-bounded draining, central re-queue, reactive
  like-for-like re-provisioning) absorbs both.

Both arms serve the identical query stream through the same preemption-capable event
loop, so the comparison isolates exactly one difference: the market mix.  The table
reports per-arm planned and realized $/hr plus QoS attainment before, during, and
after the burst window — the headline being that the mixed arm serves QoS at a
measurably lower $/hr and recovers from the forced burst.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.multi_model import DEFAULT_DEMAND_HEADROOM
from repro.analysis.reporting import FigureTable
from repro.analysis.settings import ExperimentSettings
from repro.cloud.spot import MS_PER_HOUR, SpotMarket
from repro.core.kairos import KairosPlanner, SpotAwareKairosPlanner
from repro.sim.cluster import Cluster
from repro.sim.elasticity import ElasticSimulationReport
from repro.sim.events import Event, EventKind, PreemptionBurst
from repro.sim.preemption import PreemptibleElasticSimulation, initial_spot_server_ids
from repro.workload.generator import WorkloadSpec
from repro.workload.phases import LoadPhase, PhasedTrace


def attainment_in_window(
    report: ElasticSimulationReport, t0_ms: float, t1_ms: float
) -> float:
    """Fraction of the window's arrivals served within QoS (1.0 for an empty window)."""
    window = report.metrics.window(t0_ms, t1_ms)
    if len(window) == 0:
        return 1.0
    return 1.0 - window.qos_violation_rate()


def realized_cost_per_hour(report: ElasticSimulationReport, horizon_ms: float) -> float:
    """Mean $/hr burn rate over ``[0, horizon_ms]`` (the measured cost of an arm)."""
    return report.ledger.cost_in_window(0.0, horizon_ms) / (horizon_ms / MS_PER_HOUR)


def fig18_spot_savings(
    settings: Optional[ExperimentSettings] = None,
    *,
    model_name: str = "RM2",
    demand_frac: float = 0.5,
    discount: float = 0.65,
    expected_preemptions_per_instance: float = 0.6,
    ondemand_floor: float = 0.5,
    burst_at_frac: float = 0.5,
    total_queries_target: Optional[int] = None,
    use_online_latency_learning: bool = True,
) -> FigureTable:
    """Serve one demand target all-on-demand vs. on a risk-aware on-demand+spot mix.

    The demand is ``demand_frac`` of the budget-maximal plan's upper bound; both arms
    provision the cheapest allocation covering it (with the model's default demand
    headroom) under ``settings.budget_per_hour``.  The spot market discounts every
    catalog type by ``discount`` and preempts each spot instance
    ``expected_preemptions_per_instance`` times per trace on average; at
    ``burst_at_frac`` of the trace a scripted burst reclaims *all* remaining spot
    instances at once.  The mixed arm's planner sees the trace duration as its
    planning horizon, so the availability discount it applies matches the hazard the
    simulation actually draws from.
    """
    settings = settings or ExperimentSettings()
    registry = settings.registry()
    model = settings.model(model_name)
    monitored = settings.monitored_batches()
    budget = settings.budget_per_hour
    headroom = DEFAULT_DEMAND_HEADROOM.get(model.name, 2.0)

    # Demand target from the budget-maximal plan's bound (the paper's operating point).
    budget_plan = KairosPlanner(
        model, budget, profiles=registry, batch_samples=monitored
    ).plan()
    demand = demand_frac * budget_plan.selected_upper_bound

    target = (
        int(total_queries_target)
        if total_queries_target is not None
        else 3 * settings.num_queries
    )
    duration_ms = 1000.0 * target / demand
    startup_delay_ms = duration_ms / 12.0
    warning_ms = duration_ms / 50.0
    # Hazard calibrated to the trace: each spot instance is preempted
    # `expected_preemptions_per_instance` times per run in expectation.
    hazard_per_hour = expected_preemptions_per_instance * MS_PER_HOUR / duration_ms
    market = SpotMarket.uniform(
        registry.catalog,
        discount=discount,
        preemptions_per_hour=hazard_per_hour,
        warning_ms=warning_ms,
    )

    plan_od = SpotAwareKairosPlanner(
        model,
        budget,
        profiles=registry,
        batch_samples=monitored,
        demand_headroom=headroom,
    ).plan_mixed(demand)
    plan_mixed = SpotAwareKairosPlanner(
        model,
        budget,
        profiles=registry,
        batch_samples=monitored,
        market=market,
        planning_horizon_ms=duration_ms,
        ondemand_floor=ondemand_floor,
        demand_headroom=headroom,
    ).plan_mixed(demand)

    trace = PhasedTrace(
        [LoadPhase.step(demand, duration_ms, label="steady")],
        WorkloadSpec(batch_sizes=settings.distribution()),
    )
    trace_result = trace.generate(settings.rng(42))
    queries = list(trace_result.queries)
    burst_ms = burst_at_frac * duration_ms
    # The burst is fully absorbed once the victims are killed and their replacements
    # have booted; attainment is compared before the burst and after this point.
    recovered_ms = burst_ms + warning_ms + startup_delay_ms + duration_ms / 10.0

    def build_policy():
        from repro.schedulers.kairos_policy import KairosPolicy

        return KairosPolicy(use_perfect_estimator=not use_online_latency_learning)

    # All-on-demand arm: same preemption-capable loop, no market.
    od_sim = PreemptibleElasticSimulation(
        Cluster(plan_od.combined_config, model, registry),
        build_policy(),
        startup_delay_ms=startup_delay_ms,
        rng=settings.rng(7),
    )
    od_report = od_sim.run(queries)

    # Mixed arm: spot portion armed with the preemption process plus the forced burst.
    mixed_cluster = Cluster(plan_mixed.combined_config, model, registry)
    spot_ids = initial_spot_server_ids(mixed_cluster, plan_mixed.spot_config)
    # Twice the initial spot fleet: the burst must also catch like-for-like
    # replacements spawned by natural preemptions before it fires.
    scripted = [
        Event(
            burst_ms,
            EventKind.PREEMPTION_WARNING,
            PreemptionBurst(count=max(1, 2 * len(spot_ids))),
        )
    ]
    mixed_sim = PreemptibleElasticSimulation(
        mixed_cluster,
        build_policy(),
        market=market,
        spot_server_ids=spot_ids,
        scripted_events=scripted,
        startup_delay_ms=startup_delay_ms,
        rng=settings.rng(7),
        market_rng=settings.rng(11),
    )
    mixed_report = mixed_sim.run(queries)

    rows = []
    for arm, plan, report in (
        ("all-on-demand", plan_od, od_report),
        ("mixed", plan_mixed, mixed_report),
    ):
        preemptions = sum(1 for e in report.scale_log if e.kind == "preempted")
        warnings = sum(1 for e in report.scale_log if e.kind == "preemption_warning")
        reprovisions = sum(
            e.count for e in report.scale_log
            if e.kind == "scale_up" and e.reason == "reprovision"
        )
        rows.append(
            [
                arm,
                str(plan.ondemand_config),
                str(plan.spot_config),
                plan.cost_per_hour,
                realized_cost_per_hour(report, duration_ms),
                attainment_in_window(report, 0.0, duration_ms),
                attainment_in_window(report, 0.0, burst_ms),
                attainment_in_window(report, burst_ms, recovered_ms),
                attainment_in_window(report, recovered_ms, duration_ms),
                float(warnings),
                float(preemptions),
                float(reprovisions),
            ]
        )

    saved = 1.0 - realized_cost_per_hour(mixed_report, duration_ms) / realized_cost_per_hour(
        od_report, duration_ms
    )
    table = FigureTable(
        figure_id="fig18-spot",
        title=f"{model.name}: risk-aware on-demand+spot mix vs. all-on-demand at "
        f"{budget:g}$/hr budget, {discount:.0%} spot discount",
        headers=[
            "arm",
            "ondemand_config",
            "spot_config",
            "planned_cost_hr",
            "realized_cost_hr",
            "attainment",
            "attainment_pre_burst",
            "attainment_burst",
            "attainment_recovered",
            "warnings",
            "preemptions",
            "reprovisions",
        ],
        rows=rows,
        notes=[
            f"demand = {demand_frac:.2f} x budget-max bound = {demand:.1f} qps "
            f"(headroom {headroom:g})",
            f"spot hazard = {hazard_per_hour:.1f}/instance-hr "
            f"(~{expected_preemptions_per_instance:g} preemptions/instance/run), "
            f"warning window = {warning_ms:.0f} ms",
            f"forced burst at t={burst_ms:.0f} ms reclaims every spot instance; "
            f"recovery measured from t={recovered_ms:.0f} ms",
            f"realized spend: mixed arm {saved:.1%} below all-on-demand",
        ],
        extras={
            "plan_od": plan_od,
            "plan_mixed": plan_mixed,
            "od_report": od_report,
            "mixed_report": mixed_report,
            "market": market,
            "demand_qps": demand,
            "duration_ms": duration_ms,
            "burst_ms": burst_ms,
            "recovered_ms": recovered_ms,
            "realized_saving_frac": saved,
            "trace": trace_result,
        },
    )
    return table
