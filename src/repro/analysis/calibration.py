"""Calibration checks for the synthetic latency profiles.

The reproduction replaces measured latency profiles with a calibrated synthetic table
(:mod:`repro.cloud.profile_data`).  The checks here assert the structural properties the
paper's evaluation relies on, so that any future re-calibration keeps them intact:

* the base type (``g4dn.xlarge``) — and only the base type — meets QoS at the maximum
  batch size, for every model;
* every auxiliary type can serve at least a batch-1 query within QoS (so it is usable as
  an auxiliary instance);
* latency is (near-)perfectly linearly correlated with batch size (paper: Pearson > 0.99).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.reporting import FigureTable
from repro.cloud.profiles import ProfileRegistry, default_profile_registry


@dataclass(frozen=True)
class ProfileAssumptionReport:
    """Outcome of :func:`check_profile_assumptions` for one model."""

    model: str
    base_feasible: bool
    aux_all_infeasible_at_max: bool
    aux_all_feasible_at_one: bool
    min_pearson: float

    @property
    def ok(self) -> bool:
        return (
            self.base_feasible
            and self.aux_all_infeasible_at_max
            and self.aux_all_feasible_at_one
            and self.min_pearson > 0.99
        )


def check_profile_assumptions(
    profiles: Optional[ProfileRegistry] = None,
) -> List[ProfileAssumptionReport]:
    """Verify the structural assumptions for every model in the registry."""
    registry = profiles if profiles is not None else default_profile_registry()
    base = registry.catalog.base_type.name
    batches = np.unique(np.geomspace(1, 1000, 50).astype(int))
    reports: List[ProfileAssumptionReport] = []
    for model in registry.models:
        base_ok = registry.is_base_feasible(model, base)
        aux_types = [t.name for t in registry.catalog.types if t.name != base]
        aux_infeasible = all(
            not registry.is_base_feasible(model, t) for t in aux_types
        )
        aux_feasible_at_one = all(
            registry.qos_cutoff_batch(model, t) >= 1 for t in aux_types
        )
        pearsons = [
            registry.pearson_batch_latency(model, t.name, batches)
            for t in registry.catalog.types
        ]
        reports.append(
            ProfileAssumptionReport(
                model=model.name,
                base_feasible=base_ok,
                aux_all_infeasible_at_max=aux_infeasible,
                aux_all_feasible_at_one=aux_feasible_at_one,
                min_pearson=float(min(pearsons)),
            )
        )
    return reports


def calibration_report(profiles: Optional[ProfileRegistry] = None) -> FigureTable:
    """A table of per-(model, type) profile characteristics (cutoffs, QPS at mean batch)."""
    registry = profiles if profiles is not None else default_profile_registry()
    rows = []
    for model in registry.models:
        for itype in registry.catalog.types:
            cutoff = registry.qos_cutoff_batch(model, itype.name)
            lat_100 = float(registry.latency_ms(model, itype.name, 100))
            rows.append(
                [
                    model.name,
                    itype.name,
                    model.qos_ms,
                    cutoff,
                    lat_100,
                    1000.0 / lat_100,
                    itype.price_per_hour,
                ]
            )
    return FigureTable(
        figure_id="calibration",
        title="Synthetic latency-profile characteristics",
        headers=[
            "model",
            "instance_type",
            "qos_ms",
            "qos_cutoff_batch",
            "latency_ms@b=100",
            "qps@b=100",
            "price_per_hr",
        ],
        rows=rows,
        notes=["Profiles are synthetic; see DESIGN.md 'Substitutions' for the calibration rules."],
    )
