#!/usr/bin/env python
"""Perf-benchmark runner: measure the hot paths, gate regressions, emit BENCH_perf.json.

Usage::

    python tools/bench.py --quick            # CI bench-smoke scale
    python tools/bench.py --full             # committed reference scale
    python tools/bench.py                    # both presets
    python tools/bench.py --fleet            # fleet_sim only, at fleet scale
                                             # (2,240 servers, 10^6 queries)
    python tools/bench.py --set-baseline     # record this run as the pre-optimization
                                             # baseline block (done once, before a perf PR)

The output file (default ``BENCH_perf.json`` at the repository root) holds, per
``benchmark@preset`` key, the raw throughput, the machine-normalized throughput, and the
carried-forward *baseline* (the pre-optimization numbers measured by this same harness).
On every run the freshly measured normalized numbers are compared against the committed
file; any benchmark that regressed by more than ``--tolerance`` (default 30%) makes the
run exit non-zero — that comparison is the ``bench-smoke`` stage of ``tools/ci.sh``.

Results from presets that were not run are carried over from the committed file, so a
``--quick`` CI run never erases the committed ``full`` numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.runner import (  # noqa: E402
    compare_results,
    environment_fingerprint,
    machine_score,
    run_benchmarks,
)
from repro.bench.suites import BENCHMARKS  # noqa: E402

SCHEMA = 1


def load_committed(path: Path) -> dict:
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"warning: could not read {path}: {exc}", file=sys.stderr)
        return {}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="run only the quick preset")
    parser.add_argument("--full", action="store_true", help="run only the full preset")
    parser.add_argument(
        "--fleet",
        action="store_true",
        help="run only the fleet_sim benchmark at the fleet preset (slow: minutes)",
    )
    parser.add_argument(
        "--names",
        default=None,
        help="comma-separated benchmark subset (default: all): "
        + ",".join(BENCHMARKS),
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_perf.json",
        help="output/committed-baseline file (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression vs the committed file (default 0.30)",
    )
    parser.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the regression gate against the committed file",
    )
    parser.add_argument(
        "--set-baseline",
        action="store_true",
        help="record this run's normalized numbers as the baseline block",
    )
    parser.add_argument(
        "--dry-run", action="store_true", help="measure and compare but do not write"
    )
    args = parser.parse_args(argv)

    if sum([args.quick, args.full, args.fleet]) > 1:
        parser.error(
            "--quick, --full, and --fleet are mutually exclusive (default runs "
            "quick and full)"
        )
    if args.fleet:
        presets = ["fleet"]
        # the fleet preset parameterizes only fleet_sim; never fan it out wider
        names = ["fleet_sim"]
    else:
        presets = (
            ["quick"] if args.quick else ["full"] if args.full else ["quick", "full"]
        )
        names = args.names.split(",") if args.names else None

    score = machine_score()
    print(f"machine score: {score:.2f} (normalization divisor)")

    results = []
    for preset in presets:
        print(f"== preset: {preset} ==")
        for result in run_benchmarks(preset, names=names):
            print(
                f"  {result.key:<24} {result.value:>12.2f} {result.unit:<10} "
                f"(normalized {result.normalized(score):.4f}, "
                f"wall {result.wall_seconds:.2f}s)"
            )
            results.append(result)

    committed = load_committed(args.output)
    committed_results = committed.get("results", {})
    current_normalized = {r.key: r.normalized(score) for r in results}

    exit_code = 0
    if not args.no_compare and committed_results:
        committed_normalized = {
            key: entry["normalized"]
            for key, entry in committed_results.items()
            if isinstance(entry, dict) and "normalized" in entry
        }
        regressions = compare_results(
            current_normalized, committed_normalized, tolerance=args.tolerance
        )
        for reg in regressions:
            print(
                f"REGRESSION: {reg.key} at {reg.ratio:.2f}x of the committed number "
                f"({reg.current:.4f} vs {reg.committed:.4f} normalized)",
                file=sys.stderr,
            )
        if regressions:
            exit_code = 1
        else:
            shared = sorted(set(current_normalized) & set(committed_normalized))
            print(f"regression gate passed ({len(shared)} benchmarks compared)")

    # Merge: presets not run this time keep their committed numbers.
    merged_results = dict(committed_results)
    for result in results:
        merged_results[result.key] = result.as_dict(score)

    baseline = dict(committed.get("baseline", {}))
    if args.set_baseline:
        baseline.update(current_normalized)
        print(f"baseline block set for {len(current_normalized)} benchmarks")

    speedups = {
        key: merged_results[key]["normalized"] / baseline[key]
        for key in sorted(set(merged_results) & set(baseline))
        if baseline[key] > 0
    }
    for key, ratio in speedups.items():
        print(f"  speedup vs baseline: {key:<24} {ratio:.2f}x")

    if exit_code != 0:
        # Never persist regressed numbers: rewriting the file here would make an
        # immediate rerun compare against the regression and pass, defeating the gate.
        print("not writing output: fix the regression (or raise --tolerance) first",
              file=sys.stderr)
        return exit_code

    payload = {
        "schema": SCHEMA,
        "description": (
            "Perf-harness numbers for the reproduction's hot paths; see "
            "src/repro/bench and benchmarks/README.md. 'baseline' holds the "
            "pre-optimization numbers measured by this same harness."
        ),
        "machine_score": score,
        "environment": environment_fingerprint(),
        "results": merged_results,
        "baseline": baseline,
        "speedup_vs_baseline": speedups,
    }
    if not args.dry_run:
        args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
