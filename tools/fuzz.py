#!/usr/bin/env python
"""Offline scenario-fuzzing campaigns over every serving loop.

Usage::

    python tools/fuzz.py --budget 200            # default campaign, all loops
    python tools/fuzz.py --budget 50 --loop spot # one loop only
    python tools/fuzz.py --seed 7 --derived      # reproducible + derived identities
    python tools/fuzz.py --replay tests/regression/scenarios/*.json
    python tools/fuzz.py --corpus                # replay the committed corpus

A campaign draws random :class:`~repro.fuzz.spec.ScenarioSpec` values, runs each
through its simulator, and checks every per-run invariant
(:mod:`repro.fuzz.invariants`).  On a violation, hypothesis shrinks the scenario
and the minimal spec is written under ``--out`` (default
``fuzz-findings/``) as JSON — replay it with ``--replay``, fix the bug, then
graduate the file into ``tests/regression/scenarios/`` so CI replays it forever.

Exits non-zero iff any invariant violation was found (or a replay failed).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fuzz.campaign import replay_spec_files, run_campaign  # noqa: E402
from repro.fuzz.spec import LOOPS  # noqa: E402

CORPUS_DIR = REPO_ROOT / "tests" / "regression" / "scenarios"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget", type=int, default=200, help="max scenarios to draw (default 200)"
    )
    parser.add_argument(
        "--loop", choices=LOOPS, default=None, help="restrict to one serving loop"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="derandomize the campaign with this seed"
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="also draw the fault/retry/admission dimensions (unannounced crashes, "
        "slowdowns, crash storms, retry budgets, admission control)",
    )
    parser.add_argument(
        "--gray",
        action="store_true",
        help="also draw the gray-failure dimensions (degradation onsets, flaky "
        "windows, zombie servers, health scoring, quarantine breakers, hedged "
        "dispatch); implies --chaos",
    )
    parser.add_argument(
        "--derived",
        action="store_true",
        help="also check derived identities (spot-disabled byte-identity; ~3x slower "
        "on spot scenarios)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "fuzz-findings",
        help="directory for shrunk failing specs (default fuzz-findings/)",
    )
    parser.add_argument(
        "--replay",
        nargs="+",
        type=Path,
        default=None,
        metavar="SPEC.json",
        help="replay saved scenario specs instead of fuzzing",
    )
    parser.add_argument(
        "--corpus",
        action="store_true",
        help="replay the committed regression corpus (tests/regression/scenarios/)",
    )
    args = parser.parse_args(argv)

    if args.replay or args.corpus:
        paths = list(args.replay or [])
        if args.corpus:
            paths.extend(sorted(CORPUS_DIR.glob("*.json")))
        if not paths:
            print("no scenario files to replay", file=sys.stderr)
            return 2
        failures = replay_spec_files(paths, derived=args.derived)
        for f in failures:
            print(f"FAIL {f.saved_to}:")
            for v in f.violations:
                print(f"  {v}")
        print(f"replayed {len(paths)} scenario(s), {len(failures)} failing")
        return 1 if failures else 0

    report = run_campaign(
        args.budget,
        loop=args.loop,
        seed=args.seed,
        chaos=args.chaos or args.gray,
        gray=args.gray,
        derived=args.derived,
        out_dir=args.out,
    )
    mode = " (gray)" if args.gray else (" (chaos)" if args.chaos else "")
    print(
        f"fuzz campaign{mode}: {report.executions} "
        f"executions against a budget of {report.budget} in {report.elapsed_s:.1f}s"
    )
    for failure in report.failures:
        print(f"FAIL (shrunk minimal spec saved to {failure.saved_to}):")
        for v in failure.violations:
            print(f"  {v}")
    if report.ok:
        print("all invariants held")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
