#!/usr/bin/env python
"""Fan a seed x scenario sweep across processes, with deterministic aggregation.

Usage::

    python tools/sweep.py                             # corpus x 3 seeds, auto workers
    python tools/sweep.py --seeds 1 2 3 4 5           # explicit seed list
    python tools/sweep.py --scenarios tests/regression/scenarios/*.json
    python tools/sweep.py --workers 1                 # force serial
    python tools/sweep.py --check                     # prove parallel == serial
    python tools/sweep.py --out results/sweep_corpus.txt

Each (scenario, seed) point replays through the invariant-checked runner and is
reduced to one table row; rows aggregate in grid order, so the parallel fan-out
is byte-identical to the serial pass (``--check`` asserts it).  Exits non-zero
if any point reports an invariant violation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fuzz.spec import ScenarioSpec  # noqa: E402
from repro.sweep import (  # noqa: E402
    build_grid,
    format_table,
    run_sweep,
    save_table,
    sweep_digest,
)
from repro.sweep.harness import default_workers  # noqa: E402

CORPUS_DIR = REPO_ROOT / "tests" / "regression" / "scenarios"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenarios",
        nargs="+",
        type=Path,
        default=None,
        help="scenario JSON files (default: the committed regression corpus)",
    )
    parser.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[1, 2, 3],
        help="seeds to substitute into every scenario (default: 1 2 3)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: cpu count; 1 = serial)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="also run serially and assert the parallel digest matches",
    )
    parser.add_argument("--out", type=Path, default=None, help="write the table here")
    args = parser.parse_args(argv)

    paths = args.scenarios or sorted(CORPUS_DIR.glob("*.json"))
    specs = [ScenarioSpec.load(p) for p in paths]
    grid = build_grid(specs, args.seeds)
    workers = args.workers if args.workers is not None else default_workers()

    rows = run_sweep(grid, workers=workers)
    if args.check:
        serial = run_sweep(grid, workers=1)
        if sweep_digest(serial) != sweep_digest(rows):
            print("FAIL: parallel sweep diverged from the serial pass", file=sys.stderr)
            return 1
        print(f"parallel == serial over {len(grid)} points: OK")

    table = format_table(rows)
    print(table)
    if args.out:
        save_table(
            rows,
            args.out,
            title=(
                f"Seed x scenario sweep: {len(specs)} scenarios x "
                f"{len(args.seeds)} seeds, {workers} worker(s)"
            ),
        )
        print(f"wrote {args.out}")

    bad = [r for r in rows if r.violations]
    if bad:
        for r in bad:
            print(
                f"VIOLATIONS: {r.scenario} seed={r.seed}: {r.violations}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
