#!/usr/bin/env bash
# Tier-1 CI gate: the full unit/property/integration suite plus the `smoke`
# benchmark subset (the fastest scenario per figure family), so figure-level
# regressions surface without paying for the full benchmark matrix, and the
# `bench-smoke` perf stage, which re-measures the hot paths at the quick scale
# and fails on a >30% machine-normalized regression against the committed
# BENCH_perf.json.
#
# Usage: tools/ci.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit / property / integration tests =="
python -m pytest tests -x -q "$@"

echo "== smoke benchmarks =="
python -m pytest benchmarks -m smoke -q "$@"

echo "== bench-smoke: perf regression gate =="
python tools/bench.py --quick

echo "CI gate passed."
