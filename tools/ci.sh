#!/usr/bin/env bash
# Tier-1 CI gate: the full unit/property/regression/integration suite (with the
# deterministic `ci` hypothesis profile) plus the `smoke` benchmark subset (the
# fastest scenario per figure family), so figure-level regressions surface
# without paying for the full benchmark matrix; the `bench-smoke` perf stage,
# which re-measures the hot paths at the quick scale and fails on a >30%
# machine-normalized regression against the committed BENCH_perf.json; and the
# `fuzz-smoke` stage, a bounded scenario-fuzzer pass over every serving loop
# plus a full replay of the committed tests/regression/ corpus; and the
# `chaos-smoke` stage, a fault-enabled campaign (unannounced crashes, storms,
# slowdowns, retry budgets, admission control) plus the `chaos`-marked tests;
# and the `pipeline-smoke` stage, a bounded task-graph fuzzing campaign over
# the pipeline serving loop plus an explicit replay of the committed pipeline
# scenarios (the fig20 smoke benchmark runs under `smoke benchmarks` above);
# and the `health-smoke` stage, a gray-failure campaign (permanent
# degradations, flaky windows, zombie servers, health scoring, quarantine
# breakers, hedged dispatch) plus the `gray`-marked tests and an explicit
# replay of the committed gray scenarios.
#
# Usage: tools/ci.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit / property / regression / integration tests =="
python -m pytest tests -x -q --hypothesis-profile=ci "$@"

echo "== smoke benchmarks =="
python -m pytest benchmarks -m smoke -q "$@"

echo "== bench-smoke: perf regression gate =="
python tools/bench.py --quick

echo "== fuzz-smoke: bounded invariant fuzzing + regression corpus replay =="
python tools/fuzz.py --budget 25 --seed 1
python tools/fuzz.py --corpus

echo "== sweep-smoke: parallel fan-out must be byte-identical to serial =="
python tools/sweep.py --check --seeds 1 2 --workers 2 > /dev/null

echo "== chaos-smoke: fault-enabled fuzzing + chaos-marked tests =="
python tools/fuzz.py --budget 25 --seed 2 --chaos
python -m pytest tests -m chaos -q --hypothesis-profile=ci "$@"

echo "== pipeline-smoke: bounded task-graph fuzzing + pipeline corpus replay =="
python tools/fuzz.py --budget 25 --seed 3 --loop pipeline
python tools/fuzz.py --replay tests/regression/scenarios/pipeline-*.json

echo "== health-smoke: gray-failure fuzzing + gray-marked tests + gray corpus replay =="
python tools/fuzz.py --budget 25 --seed 4 --gray
python -m pytest tests -m gray -q --hypothesis-profile=ci "$@"
python tools/fuzz.py --replay tests/regression/scenarios/gray-*.json

echo "CI gate passed."
