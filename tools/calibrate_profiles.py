"""Calibration helper: check the Fig. 8 shape produced by the current profile table.

Run after editing ``repro/cloud/profile_data.py``:

    python tools/calibrate_profiles.py [--fast]

For every model it prints the Kairos-selected configuration, its upper bound, the
measured homogeneous and Kairos allowable throughputs, and the ratio — the quantity
Fig. 8 reports.  The target shape: every ratio > 1.2, RM2 the largest (~2x), MT-WND the
smallest (~1.25x).
"""

from __future__ import annotations

import argparse
import sys

from repro import KairosServingSystem
from repro.cloud.billing import BillingModel
from repro.cloud.profiles import default_profile_registry
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.capacity import measure_allowable_throughput
from repro.workload.batch_sizes import production_batch_distribution
from repro.workload.generator import WorkloadSpec


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-queries", type=int, default=600)
    parser.add_argument("--budget", type=float, default=2.5)
    parser.add_argument("--iterations", type=int, default=7)
    parser.add_argument("--models", nargs="*", default=["NCF", "RM2", "WND", "MT-WND", "DIEN"])
    args = parser.parse_args()

    profiles = default_profile_registry()
    billing = BillingModel()
    dist = production_batch_distribution()
    spec = WorkloadSpec(batch_sizes=dist, num_queries=args.num_queries)

    print(f"{'model':8s} {'selected':16s} {'UB':>8s} {'homog':>8s} {'kairos':>8s} {'ratio':>6s} {'ach/UB':>7s}")
    for model_name in args.models:
        model = profiles.models[model_name]
        system = KairosServingSystem(model_name, args.budget, rng=1)
        plan = system.plan()
        homog = billing.best_homogeneous_config("g4dn.xlarge", args.budget)
        scale = billing.homogeneous_budget_scaling("g4dn.xlarge", args.budget)
        homog_res = measure_allowable_throughput(
            homog, model, profiles, lambda: KairosPolicy(use_perfect_estimator=True),
            workload_spec=spec, rng=2, max_iterations=args.iterations,
        )
        kairos_res = measure_allowable_throughput(
            plan.selected_config, model, profiles, lambda: KairosPolicy(),
            workload_spec=spec, rng=2, max_iterations=args.iterations,
        )
        homog_scaled = homog_res.qps * scale
        ratio = kairos_res.qps / homog_scaled if homog_scaled else float("nan")
        ach_over_ub = kairos_res.qps / plan.selected_upper_bound if plan.selected_upper_bound else float("nan")
        print(
            f"{model_name:8s} {str(plan.selected_config):16s} {plan.selected_upper_bound:8.1f} "
            f"{homog_scaled:8.1f} {kairos_res.qps:8.1f} {ratio:6.2f} {ach_over_ub:7.2f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
