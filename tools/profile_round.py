#!/usr/bin/env python
"""Per-phase wall-time breakdown of the scheduling rounds of one serving run.

Runs the same seeded scenario as the ``serving_sim`` / ``multi_model_sim`` perf
benchmarks with lightweight timers around the round's phases — column refresh, row
snapshot, matrix build, assignment solve, the fused single-query fast path, latency
prediction, and dispatch commit — then prints cumulative wall time, share of the run,
and per-round cost for each phase.  Use it to locate the next perf lever without
ad-hoc profiling::

    python tools/profile_round.py                      # serving, quick preset
    python tools/profile_round.py --preset full
    python tools/profile_round.py --scenario multi_model --repeats 5

Phases overlap where the code nests (latency prediction runs inside the matrix build
and the single-query fast path; both run inside "policy schedule"), so shares do not
sum to 100% — each row answers "how much of the run is spent under this seam".
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402


class PhaseTimer:
    """Cumulative wall-clock account for one instrumented seam."""

    def __init__(self, label: str):
        self.label = label
        self.total = 0.0
        self.calls = 0

    def wrap(self, func):
        def timed(*args, **kwargs):
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                self.total += time.perf_counter() - start
                self.calls += 1

        return timed


def _instrument():
    """Install timers at the round's phase seams; returns the timer list."""
    import repro.core.cost_matrix as cost_matrix
    import repro.schedulers.kairos_policy as kairos_policy
    import repro.sim.elasticity as elasticity
    import repro.sim.health as health
    import repro.sim.multi_model as multi_model
    import repro.sim.simulation as simulation
    from repro.core.latency_model import OnlineLatencyEstimator
    from repro.solvers.jonker_volgenant import JonkerVolgenantSolver

    timers = []

    def seam(label, owner, name):
        timer = PhaseTimer(label)
        setattr(owner, name, timer.wrap(getattr(owner, name)))
        timers.append(timer)
        return timer

    seam("policy schedule (whole round)", kairos_policy.KairosPolicy, "schedule")
    seam("policy schedule (joint round)", kairos_policy.MultiModelKairosPolicy, "schedule")
    seam("column refresh (incremental)", cost_matrix.RoundColumnState, "refresh")
    seam("row snapshot (pending arrays)", kairos_policy, "_round_rows")
    # every consumer calls these through the module attribute, so one patch point
    # covers the distributor, both policies, and any future caller
    seam("matrix build (assemble)", cost_matrix, "assemble_cost_matrix")
    seam("matrix build (joint assemble)", cost_matrix, "assemble_multi_model")
    seam("single-query fast path", kairos_policy.KairosPolicy, "_schedule_single")
    seam("single-query fast path (joint)", kairos_policy.MultiModelKairosPolicy, "_schedule_single")
    seam("assignment solve (JV)", JonkerVolgenantSolver, "solve")
    seam("latency prediction", OnlineLatencyEstimator, "predict_many_ms")
    seam("dispatch commit", simulation.ServingSimulation, "_commit")
    seam("dispatch commit (elastic)", elasticity.ElasticServingSimulation, "_commit")
    seam("dispatch commit (joint)", multi_model.MultiModelServingSimulation, "_commit")
    # gray-failure seams: health scoring on every completion, the check/probe
    # handlers, quarantine side effects, and the hedge race machinery
    seam("health scoring (completions)", health.ServerHealthMonitor, "observe_completion")
    seam("health check handler", elasticity.ElasticServingSimulation, "_handle_health_check")
    seam("health probe handler", elasticity.ElasticServingSimulation, "_handle_health_probe")
    seam("quarantine side effects", elasticity.ElasticServingSimulation, "_quarantine_server")
    seam("hedge delay estimate", health.HedgeManager, "hedge_delay_ms")
    seam("hedge timer handler", elasticity.ElasticServingSimulation, "_handle_hedge_timer")
    return timers


def _run_serving(preset: str, repeats: int) -> tuple:
    from repro.bench.suites import MODEL, SEED, _params
    from repro.cloud.config import HeterogeneousConfig
    from repro.cloud.profiles import default_profile_registry
    from repro.schedulers.kairos_policy import KairosPolicy
    from repro.sim.cluster import Cluster
    from repro.sim.simulation import ServingSimulation
    from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes
    from repro.workload.generator import WorkloadGenerator, WorkloadSpec

    p = _params(preset)
    profiles = default_profile_registry()
    config = HeterogeneousConfig(tuple(p["serving_counts"]), profiles.catalog)
    model = profiles.models[MODEL]
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
        num_queries=int(p["serving_queries"]),
    )
    queries = WorkloadGenerator(spec).generate(rate_qps=p["serving_rate_qps"], rng=SEED)

    rounds = 0
    start = time.perf_counter()
    for _ in range(repeats):
        sim = ServingSimulation(
            Cluster(config, model, profiles),
            KairosPolicy(),
            rng=np.random.default_rng(SEED + 1),
        )
        rounds += sim.run(queries).scheduling_rounds
    return time.perf_counter() - start, rounds


def _run_multi_model(preset: str, repeats: int) -> tuple:
    from repro.bench.suites import MM_MODELS, SEED, _params
    from repro.cloud.config import HeterogeneousConfig
    from repro.cloud.profiles import default_profile_registry
    from repro.schedulers.kairos_policy import MultiModelKairosPolicy
    from repro.sim.cluster import MultiModelCluster
    from repro.sim.multi_model import MultiModelServingSimulation
    from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes
    from repro.workload.generator import (
        WorkloadGenerator,
        WorkloadSpec,
        interleave_model_streams,
    )

    p = _params(preset)
    profiles = default_profile_registry()
    configs = {
        name: HeterogeneousConfig(tuple(counts), profiles.catalog)
        for name, counts in zip(MM_MODELS, p["mm_counts"])
    }
    streams = {}
    for i, name in enumerate(MM_MODELS):
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=int(p["mm_queries"]),
            model_name=name,
        )
        streams[name] = WorkloadGenerator(spec).generate(
            rate_qps=p["mm_rates"][i], rng=SEED + 10 + i
        )
    queries = interleave_model_streams(streams)

    rounds = 0
    start = time.perf_counter()
    for _ in range(repeats):
        sim = MultiModelServingSimulation(
            MultiModelCluster(configs, profiles),
            MultiModelKairosPolicy(),
            rng=np.random.default_rng(SEED + 1),
        )
        rounds += sim.run(queries).scheduling_rounds
    return time.perf_counter() - start, rounds


def _run_gray(preset: str, repeats: int) -> tuple:
    """Elastic serving under gray faults with the monitor, breakers, and hedging on."""
    from repro.bench.suites import MODEL, SEED, _params
    from repro.cloud.config import HeterogeneousConfig
    from repro.cloud.profiles import default_profile_registry
    from repro.schedulers.kairos_policy import KairosPolicy
    from repro.sim.cluster import Cluster
    from repro.sim.elasticity import ElasticServingSimulation
    from repro.sim.faults import FaultInjector, RetryPolicy
    from repro.sim.health import HealthConfig, HedgePolicy
    from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes
    from repro.workload.generator import WorkloadGenerator, WorkloadSpec

    p = _params(preset)
    profiles = default_profile_registry()
    config = HeterogeneousConfig(tuple(p["serving_counts"]), profiles.catalog)
    model = profiles.models[MODEL]
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
        num_queries=int(p["serving_queries"]),
    )
    queries = WorkloadGenerator(spec).generate(rate_qps=p["serving_rate_qps"], rng=SEED)
    faults = FaultInjector.uniform(
        profiles.catalog,
        failures_per_hour=0.0,
        degradations_per_hour=1800.0,
        degradation_factor=4.0,
        flaky_per_hour=3600.0,
        zombies_per_hour=900.0,
        auto_replace=False,
    )

    rounds = 0
    start = time.perf_counter()
    for _ in range(repeats):
        sim = ElasticServingSimulation(
            Cluster(config, model, profiles),
            KairosPolicy(),
            rng=np.random.default_rng(SEED + 1),
            faults=faults,
            fault_rng=np.random.default_rng([SEED, 505]),
            gray_rng=np.random.default_rng([SEED, 606]),
            retry=RetryPolicy(max_attempts=3, response_timeout_ms=4.0 * model.qos_ms),
            health=HealthConfig(probation_ms=8.0 * model.qos_ms),
            hedge=HedgePolicy(),
        )
        rounds += sim.run(queries).scheduling_rounds
    return time.perf_counter() - start, rounds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--preset", default="quick", choices=("smoke", "quick", "full"),
        help="workload scale (matches the perf-benchmark presets; default quick)",
    )
    parser.add_argument(
        "--scenario", default="serving", choices=("serving", "multi_model", "gray"),
        help="which macro scenario to profile (default serving)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="simulation runs to aggregate (default 3)"
    )
    args = parser.parse_args(argv)

    timers = _instrument()
    runner = {
        "serving": _run_serving,
        "multi_model": _run_multi_model,
        "gray": _run_gray,
    }[args.scenario]
    wall, rounds = runner(args.preset, args.repeats)

    print(
        f"scenario={args.scenario} preset={args.preset} repeats={args.repeats}: "
        f"{rounds} scheduling rounds in {wall:.3f}s wall "
        f"({wall / rounds * 1e6:.1f} us/round)"
    )
    print(f"{'phase':<34} {'calls':>8} {'total s':>9} {'% of run':>9} {'us/round':>9}")
    for timer in sorted(timers, key=lambda t: -t.total):
        if timer.calls == 0:
            continue
        print(
            f"{timer.label:<34} {timer.calls:>8} {timer.total:>9.3f} "
            f"{100.0 * timer.total / wall:>8.1f}% {timer.total / rounds * 1e6:>9.1f}"
        )
    print(
        "\nnote: phases overlap where the code nests (prediction inside matrix "
        "build / fast path, everything inside the policy round); shares answer "
        "'how much of the run sits under this seam', not a partition."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
