"""One-shot helper: pin byte-identity digests of the pre-overhaul serving paths.

Run BEFORE the scheduling-engine overhaul lands; the printed digests are pasted
into tests/unit/test_seed_stability.py so the rewritten (coalesced + incremental
+ flat-solver) paths are asserted byte-identical to the pre-PR implementation.
Not part of the test suite or CI.
"""

from __future__ import annotations

import hashlib
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG as catalog
from repro.cloud.profiles import default_profile_registry
from repro.cloud.spot import SpotMarket
from repro.schedulers.kairos_policy import KairosPolicy, MultiModelKairosPolicy
from repro.sim.cluster import Cluster, MultiModelCluster
from repro.sim.elasticity import ElasticServingSimulation
from repro.sim.events import Event, EventKind, PreemptionBurst, ScaleRequest
from repro.sim.multi_model import MultiModelServingSimulation
from repro.sim.preemption import PreemptibleElasticSimulation
from repro.sim.simulation import gaussian_service_noise, simulate_serving
from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes
from repro.workload.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    interleave_model_streams,
)

SEED = 20230627
profiles = default_profile_registry()


def _record_tuple(record):
    return (
        record.query.query_id,
        record.query.batch_size,
        record.query.arrival_time_ms,
        record.server_id,
        record.server_type,
        record.start_ms,
        record.completion_ms,
        record.service_ms,
    )


def digest_of(parts) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode())
    return h.hexdigest()[:16]


def single_run(noise=None):
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1), num_queries=150
    )
    queries = WorkloadGenerator(spec).generate(rate_qps=40.0, rng=SEED)
    report = simulate_serving(
        HeterogeneousConfig((1, 1, 2, 0), catalog),
        profiles.models["RM2"],
        profiles,
        KairosPolicy(),
        queries,
        noise=noise,
        rng=np.random.default_rng(SEED + 1),
    )
    return digest_of([_record_tuple(r) for r in report.metrics.records])


def elastic_run(noise=None):
    cluster = Cluster(
        HeterogeneousConfig((1, 1, 2, 0), catalog), profiles.models["RM2"], profiles
    )
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1), num_queries=150
    )
    queries = WorkloadGenerator(spec).generate(rate_qps=50.0, rng=SEED)
    events = [
        Event(600.0, EventKind.SCALE_UP, ScaleRequest("r5n.large", 1)),
        Event(1500.0, EventKind.SCALE_DOWN, ScaleRequest("c5n.2xlarge", 1)),
    ]
    sim = ElasticServingSimulation(
        cluster,
        KairosPolicy(),
        scripted_events=events,
        startup_delay_ms=250.0,
        noise=noise,
        rng=np.random.default_rng(SEED + 1),
    )
    report = sim.run(queries)
    return digest_of(
        [_record_tuple(r) for r in report.metrics.records]
        + [(e.time_ms, e.kind, e.type_name, e.count) for e in report.scale_log]
    )


def mm_run(noise=None):
    cluster = MultiModelCluster(
        {
            "RM2": HeterogeneousConfig((1, 1, 2, 0), catalog),
            "WND": HeterogeneousConfig((1, 1, 1, 0), catalog),
        },
        profiles,
    )
    streams = {}
    for i, (name, rate) in enumerate((("RM2", 30.0), ("WND", 110.0))):
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=100,
            model_name=name,
        )
        streams[name] = WorkloadGenerator(spec).generate(rate_qps=rate, rng=SEED + i)
    queries = interleave_model_streams(streams)
    events = [
        Event(700.0, EventKind.SCALE_UP, ScaleRequest("r5n.large", 1, model_name="RM2")),
        Event(
            1400.0, EventKind.SCALE_DOWN, ScaleRequest("c5n.2xlarge", 1, model_name="WND")
        ),
    ]
    sim = MultiModelServingSimulation(
        cluster,
        MultiModelKairosPolicy(),
        scripted_events=events,
        startup_delay_ms=250.0,
        noise=noise,
        rng=np.random.default_rng(SEED + 1),
    )
    report = sim.run(queries)
    parts = []
    for name in report.metrics.model_names:
        parts.extend(_record_tuple(r) for r in report.metrics.of_model(name).records)
    parts.extend((e.time_ms, e.kind, e.type_name, e.count) for e in report.scale_log)
    return digest_of(parts)


def spot_run(noise=None):
    cluster = Cluster(
        HeterogeneousConfig((1, 0, 3, 0), catalog), profiles.models["RM2"], profiles
    )
    market = SpotMarket.uniform(
        catalog, discount=0.65, preemptions_per_hour=2_400.0, warning_ms=30.0
    )
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=40, sigma=1.1), num_queries=150
    )
    queries = WorkloadGenerator(spec).generate(rate_qps=60.0, rng=SEED)
    events = [Event(900.0, EventKind.PREEMPTION_WARNING, PreemptionBurst(count=2))]
    sim = PreemptibleElasticSimulation(
        cluster,
        KairosPolicy(),
        market=market,
        spot_server_ids=[2, 3],
        scripted_events=events,
        startup_delay_ms=150.0,
        noise=noise,
        rng=np.random.default_rng(SEED + 1),
        market_rng=np.random.default_rng(SEED + 2),
    )
    report = sim.run(queries)
    return digest_of(
        [_record_tuple(r) for r in report.metrics.records]
        + [(e.time_ms, e.kind, e.type_name, e.count, e.reason) for e in report.scale_log]
    )


if __name__ == "__main__":
    noise = gaussian_service_noise(0.05)
    print('    "single": "%s",' % single_run())
    print('    "single_noise": "%s",' % single_run(noise))
    print('    "elastic": "%s",' % elastic_run())
    print('    "elastic_noise": "%s",' % elastic_run(noise))
    print('    "multi_model": "%s",' % mm_run())
    print('    "multi_model_noise": "%s",' % mm_run(noise))
    print('    "preemption": "%s",' % spot_run())
    print('    "preemption_noise": "%s",' % spot_run(noise))
