"""Fig. 12 (dynamic): online re-planning vs. a pinned static plan under a 2x load step.

The original Fig. 12 benchmark replays the *distribution* change the paper evaluates;
this scenario exercises the online-elasticity subsystem end to end: a trace-driven
arrival-rate step, sustained-change detection, a one-shot re-plan under a load-scaled
budget, and cluster migration through SCALE_UP/SCALE_DOWN provisioning events.
"""

import pytest

from repro.analysis.elasticity import fig12_dynamic_replan


@pytest.mark.smoke
def test_fig12_dynamic_replan(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350)
    table = record_figure(
        fig12_dynamic_replan, "fig12_dynamic_replan.txt", settings, model_name="RM2"
    )
    headers = list(table.headers)
    base, step = table.rows
    offered = step[headers.index("offered_qps")]
    static_qps = step[headers.index("static_qps")]
    elastic_qps = step[headers.index("elastic_qps")]

    # Before the step both arms run the identical plan and serve the identical stream.
    assert base[headers.index("static_qps")] == base[headers.index("elastic_qps")]
    # After the 2x step the re-planning controller sustains strictly higher QoS-met
    # throughput than the pinned plan, which saturates below the offered load.
    assert elastic_qps > static_qps
    assert static_qps < offered
    assert table.extras["num_replans"] >= 1
    # The extra throughput is bought with extra provisioned capacity, so the elastic
    # arm must also cost more over the step window.
    assert step[headers.index("elastic_cost")] > step[headers.index("static_cost")]

    # Deterministic for the fixed seed: a second full run reproduces the table exactly.
    again = fig12_dynamic_replan(settings, model_name="RM2")
    assert again.rows == table.rows
