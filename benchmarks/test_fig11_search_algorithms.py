"""Fig. 11: Kairos+ vs. random search, genetic algorithm and Bayesian optimization."""

from repro.analysis.headline import fig11_search_algorithms


def test_fig11_search_algorithms(record_figure, fast_settings):
    table = record_figure(
        fig11_search_algorithms, "fig11_search_algorithms.txt", fast_settings,
        model_name="RM2", max_evaluations=60, backend="oracle",
    )
    pct = table.row_map("algorithm", "evals_until_best_pct")
    # Kairos+ reaches its best configuration with (far) fewer evaluations than every
    # competing search algorithm, despite all of them being granted pruning.
    assert pct["KAIROS+"] < 1.5
    for name in ("RAND", "GENE", "RIBBON"):
        assert pct[name] >= pct["KAIROS+"]
