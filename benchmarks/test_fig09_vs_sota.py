"""Fig. 9: Kairos and Kairos+ vs. Ribbon, DRS, CLKWRK and the Oracle."""

from repro.analysis.headline import fig9_vs_sota


def test_fig09_vs_sota(record_figure, fast_settings):
    settings = fast_settings.scaled(monitor_samples=2500)
    table = record_figure(fig9_vs_sota, "fig09_vs_sota.txt", settings)
    for row in table.rows:
        model, config, ribbon, drs, clkwrk, kairos, kairos_plus, orcl = row
        assert ribbon == 1.0  # the normalization reference
        # Kairos at least matches the best competing scheme (up to capacity-search noise)
        assert kairos >= 0.95 * max(ribbon, drs, clkwrk)
        # Kairos+ never falls below Kairos, and the Oracle stays on top
        assert kairos_plus >= 0.99 * kairos
        assert orcl >= 0.95 * max(kairos, kairos_plus)
    # on at least one model Kairos shows a clear (>20%) advantage over Ribbon
    assert any(row[5] > 1.2 for row in table.rows)
