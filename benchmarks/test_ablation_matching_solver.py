"""Ablation: end-to-end throughput of Kairos under different assignment solvers."""

import pytest

from repro.analysis.ablations import ablation_matching_solver


@pytest.mark.smoke
def test_ablation_matching_solver(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=300, capacity_iterations=4)
    table = record_figure(
        ablation_matching_solver, "ablation_matching_solver.txt", settings,
        model_name="RM2", solvers=("jv", "scipy", "greedy"),
    )
    values = {row[0]: row[1] for row in table.rows}
    # the exact solvers are interchangeable end to end
    assert values["jv"] == pytest.approx(values["scipy"], rel=0.05)
    # greedy matching does not catastrophically change throughput on this workload, but
    # must never exceed the exact solution by more than measurement noise
    assert values["greedy"] <= values["jv"] * 1.1
