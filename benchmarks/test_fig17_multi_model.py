"""Fig. 17 (multi-model): joint shared-budget co-location vs. independent clusters.

Beyond the paper's single-model scope: two models share one cluster and one dollar
budget.  The joint planner provisions each model with the cheapest configuration whose
Eq. 15 upper bound covers that model's demand, and the multi-model central controller
schedules the union of pending queries each round.  The benchmark asserts, per seed,
the headline multi-tenant claim: the joint plan meets *every* model's QoS target at a
strictly lower total cost than two independently planned per-model clusters.
"""

import pytest

from repro.analysis.multi_model import fig17_multi_model_joint

MODELS = ("RM2", "WND")


@pytest.mark.smoke
@pytest.mark.parametrize("seed", [7, 42])
def test_fig17_multi_model_joint(record_figure, fast_settings, seed):
    settings = fast_settings.scaled(num_queries=500, seed=seed)
    table = record_figure(
        fig17_multi_model_joint,
        f"fig17_multi_model_seed{seed}.txt",
        settings,
        model_names=MODELS,
    )
    headers = list(table.headers)
    joint_cost = table.extras["joint_cost_per_hour"]
    independent_cost = table.extras["independent_cost_per_hour"]

    # Every co-located model meets its own QoS target on the joint cluster...
    for row in table.rows:
        assert row[headers.index("joint_meets_qos")] == 1.0, row
    assert table.extras["joint_report"].all_meet_qos()
    # ...at a strictly lower total cost than the independently planned clusters.
    assert joint_cost < independent_cost
    # The joint selection fit the shared budget directly (no fallback split) and
    # covered every demand target by construction.
    assert table.extras["joint_plan"].within_budget
    assert table.extras["joint_plan"].meets_all_targets
    # Per-model attributed spend partitions the joint run's total bill exactly.
    report = table.extras["joint_report"]
    by_model = report.cost_by_model()
    assert set(by_model) == set(MODELS)
    assert sum(by_model.values()) == pytest.approx(report.total_cost())

    # Deterministic for the fixed seed: a second full run reproduces the table.
    again = fig17_multi_model_joint(settings, model_names=MODELS)
    assert again.rows == table.rows
