"""Table 3: models and QoS targets."""

import pytest

from repro.analysis.reporting import FigureTable
from repro.cloud.models import DEFAULT_MODEL_REGISTRY


def table3() -> FigureTable:
    rows = [
        [m["model"], m["description"], m["application"], m["qos_ms"]]
        for m in DEFAULT_MODEL_REGISTRY.describe()
    ]
    return FigureTable(
        figure_id="table3",
        title="Models and QoS targets",
        headers=["model", "description", "application", "qos_ms"],
        rows=rows,
    )


@pytest.mark.smoke
def test_table3_models(record_figure):
    table = record_figure(table3, "table3_models.txt")
    qos = table.row_map("model", "qos_ms")
    assert qos == {"NCF": 5.0, "RM2": 350.0, "WND": 25.0, "MT-WND": 25.0, "DIEN": 35.0}
