"""Fig. 2: most configurations explored online by simulated annealing are worse than homogeneous."""

from repro.analysis.motivation import fig2_annealing_exploration


def test_fig02_sa_exploration(record_figure, fast_settings):
    table = record_figure(
        fig2_annealing_exploration,
        "fig02_sa_exploration.txt",
        fast_settings,
        max_evaluations=15,
    )
    # A large share of the explored configurations falls below the homogeneous baseline
    # (the paper reports roughly 70%); require at least a third at this reduced scale.
    assert table.extras["fraction_worse"] >= 0.3
    assert len(table.rows) >= 5
