"""Fig. 18 (spot): risk-aware on-demand+spot serving vs. the all-on-demand plan.

The spot-market subsystem's headline scenario: under a nonzero preemption hazard (and
a scripted worst-case burst reclaiming every spot instance at once), the risk-aware
mixed-market plan serves the same demand within QoS at a measurably lower $/hr than
the cheapest all-on-demand plan, and the preemption-tolerant loop (deadline-bounded
draining, central re-queue, reactive re-provisioning) recovers QoS after the burst.
"""

import numpy as np
import pytest

from repro.analysis.spot import fig18_spot_savings
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.cluster import Cluster
from repro.sim.elasticity import simulate_elastic_serving
from repro.sim.preemption import simulate_preemptible_serving

#: "Serves QoS" for this scenario: at least this fraction of each window's arrivals
#: completes within the QoS target (the Eq. 15 headroom factors are calibrated for
#: the p99-ish regime; see DEFAULT_DEMAND_HEADROOM).
ATTAINMENT_FLOOR = 0.97


@pytest.mark.smoke
def test_fig18_spot_savings(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350)
    table = record_figure(fig18_spot_savings, "fig18_spot_savings.txt", settings)
    headers = list(table.headers)
    od_row, mixed_row = table.rows
    assert od_row[0] == "all-on-demand" and mixed_row[0] == "mixed"

    def col(row, name):
        return row[headers.index(name)]

    # The risk-aware mix provisions real spot capacity and is cheaper both as planned
    # and as billed (ledger-measured mean $/hr over the trace), while the all-on-demand
    # arm pays list price for everything.
    assert table.extras["plan_mixed"].has_spot
    assert col(mixed_row, "planned_cost_hr") < col(od_row, "planned_cost_hr")
    assert col(mixed_row, "realized_cost_hr") < col(od_row, "realized_cost_hr")

    # Both arms serve the demand within QoS, under nonzero preemption for the mix.
    assert col(od_row, "attainment") >= ATTAINMENT_FLOOR
    assert col(mixed_row, "attainment") >= ATTAINMENT_FLOOR
    assert col(mixed_row, "preemptions") >= 1
    assert col(mixed_row, "reprovisions") >= 1
    # The all-on-demand arm never touches the preemption machinery.
    assert col(od_row, "preemptions") == 0 and col(od_row, "reprovisions") == 0

    # The forced burst is absorbed: attainment after the recovery point is back at
    # (or above) the pre-burst level, and the whole run still meets the floor.
    assert col(mixed_row, "attainment_burst") >= ATTAINMENT_FLOOR
    assert (
        col(mixed_row, "attainment_recovered")
        >= col(mixed_row, "attainment_pre_burst") - 0.02
    )

    # The on-demand/spot ledger split partitions the total bill exactly.
    mixed_report = table.extras["mixed_report"]
    by_market = mixed_report.ledger.cost_by_market(mixed_report.billing_horizon_ms)
    assert set(by_market) == {"on-demand", "spot"}
    assert all(cost > 0 for cost in by_market.values())
    assert sum(by_market.values()) == pytest.approx(mixed_report.total_cost(), abs=1e-12)

    # Deterministic per seed: a second full run reproduces the table exactly.
    again = fig18_spot_savings(settings)
    assert again.rows == table.rows


@pytest.mark.smoke
def test_spot_disabled_path_is_byte_identical(fast_settings):
    """With no market the preemption-capable loop is the elastic loop, bit for bit."""
    settings = fast_settings
    registry = settings.registry()
    model = settings.model("RM2")
    from repro.cloud.config import HeterogeneousConfig
    from repro.workload.generator import WorkloadGenerator, WorkloadSpec

    config = HeterogeneousConfig((1, 1, 2, 0), registry.catalog)
    spec = WorkloadSpec(batch_sizes=settings.distribution(), num_queries=200)
    queries = WorkloadGenerator(spec).generate(rate_qps=40.0, rng=settings.seed)

    elastic = simulate_elastic_serving(
        Cluster(config, model, registry),
        KairosPolicy(),
        queries,
        rng=np.random.default_rng(settings.seed + 1),
    )
    preemptible = simulate_preemptible_serving(
        Cluster(config, model, registry),
        KairosPolicy(),
        queries,
        rng=np.random.default_rng(settings.seed + 1),
    )
    assert [
        (r.query.query_id, r.server_id, r.start_ms, r.completion_ms, r.service_ms)
        for r in elastic.metrics.records
    ] == [
        (r.query.query_id, r.server_id, r.start_ms, r.completion_ms, r.service_ms)
        for r in preemptible.metrics.records
    ]
    assert repr(elastic.metrics.summary()) == repr(preemptible.metrics.summary())
    assert elastic.total_cost() == preemptible.total_cost()
