"""Fig. 10: online evaluations needed to find the optimal configuration (% of space)."""

from repro.analysis.headline import fig10_evaluation_overhead


def test_fig10_eval_overhead(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350, capacity_iterations=4)
    table = record_figure(
        fig10_evaluation_overhead,
        "fig10_eval_overhead.txt",
        settings,
        models=["RM2"],
        schemes=("RIBBON", "CLKWRK", "KAIROS"),
        max_evaluations=25,
    )
    row = table.rows[0]
    headers = list(table.headers)
    kairos_pct = row[headers.index("KAIROS_evals_pct")]
    ribbon_pct = row[headers.index("RIBBON_evals_pct")]
    # Kairos+ needs a very small share of the space (paper: < 1%); the weaker
    # distribution schemes prune less and therefore evaluate more.
    assert kairos_pct < 2.0
    assert ribbon_pct >= kairos_pct
