"""Fig. 13: actual throughput of the top upper-bound configurations; Kairos's pick."""

from repro.analysis.robustness import fig13_top_upper_bound_configs


def test_fig13_top_ub_configs(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350, capacity_iterations=4)
    table = record_figure(
        fig13_top_upper_bound_configs, "fig13_top_ub_configs.txt", settings,
        models=["RM2"], top_k=8,
    )
    config_rows = [r for r in table.rows if isinstance(r[1], int)]
    assert len(config_rows) == 8
    # exactly one configuration is marked as Kairos's selection, and its actual
    # throughput is within 25% of the best of the top-8 (near-optimal selection)
    selected = [r for r in config_rows if r[6]]
    assert len(selected) == 1
    assert selected[0][5] >= 75.0  # pct_of_best
