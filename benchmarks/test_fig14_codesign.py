"""Fig. 14: the top upper-bound configurations under different distribution schemes (RM2)."""

import numpy as np

from repro.analysis.robustness import fig14_codesign


def test_fig14_codesign(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350, capacity_iterations=4)
    table = record_figure(
        fig14_codesign, "fig14_codesign.txt", settings, model_name="RM2", top_k=5,
    )
    headers = list(table.headers)
    ub = np.array([row[headers.index("upper_bound_qps")] for row in table.rows])
    kairos = np.array([row[headers.index("KAIROS")] for row in table.rows])
    ribbon = np.array([row[headers.index("RIBBON")] for row in table.rows])
    oracle = np.array([row[headers.index("oracle_best_qps")] for row in table.rows])
    # the upper bound stays below the oracle-best level and above what Kairos measures
    assert np.all(ub <= oracle * 1.1)
    assert np.all(kairos <= ub * 1.05)
    # Kairos's mechanism extracts more from these configurations than Ribbon on average
    assert kairos.mean() >= 0.95 * ribbon.mean()
