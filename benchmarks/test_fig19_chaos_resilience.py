"""Fig. 19 (chaos): graceful degradation vs. naive serving under unannounced crashes.

The fault-injection headline scenario: a flash crowd arrives while seeded hardware
crashes void in-flight work.  The hardened arm (bounded-backoff retries + an
AutoThrottle-style admission controller) must strictly beat the naive arm on
offered-query QoS attainment at (near-)equal realized $/hr — same fleet, trace,
service RNG, and crash schedule in both arms, so the only difference is the policy.
"""

import pytest

from repro.analysis.chaos import fig19_chaos_resilience

#: Both arms bill the same auto-replaced fleet over the same fixed window; the only
#: cost difference is replacement-boot jitter, so realized $/hr must agree tightly.
COST_TOLERANCE = 0.10


@pytest.mark.smoke
@pytest.mark.chaos
def test_fig19_chaos_resilience(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350)
    table = record_figure(
        fig19_chaos_resilience, "fig19_chaos_resilience.txt", settings
    )
    headers = list(table.headers)
    naive_row, hardened_row = table.rows
    assert naive_row[0] == "naive" and hardened_row[0] == "hardened"

    def col(row, name):
        return row[headers.index(name)]

    # Crashes actually fire in both arms.  The drawn schedules are identical, but
    # the fired counts can differ by a straggler: the naive arm's backlog tail
    # extends its horizon, so a crash scheduled past the hardened arm's quiesce
    # point may still fire for naive.
    assert col(naive_row, "crashes") >= 1
    assert col(hardened_row, "crashes") >= 1
    assert abs(col(naive_row, "crashes") - col(hardened_row, "crashes")) <= 2

    # The headline: graceful degradation strictly wins on offered-QoS attainment —
    # overall, and decisively in the post-crowd tail, where the naive arm's
    # unshed backlog keeps poisoning queueing delay long after the spike ends.
    assert col(hardened_row, "attainment") > col(naive_row, "attainment")
    assert col(hardened_row, "attainment_post") > col(naive_row, "attainment_post")

    # ...at equal realized $/hr: same fleet, same crash schedule, same replacements.
    naive_cost = col(naive_row, "realized_cost_hr")
    hardened_cost = col(hardened_row, "realized_cost_hr")
    assert abs(hardened_cost - naive_cost) <= COST_TOLERANCE * naive_cost

    # Each arm behaves in character: the naive loop never retries or sheds (its
    # crash-voided queries dead-letter on the spot), while the hardened loop
    # exercises the retry budget and the admission valve.
    assert col(naive_row, "retries") == 0 and col(naive_row, "shed") == 0
    assert col(hardened_row, "retries") >= 1
    # Any query the naive arm loses to a crash is dead on the first attempt.
    naive_dead = table.extras["naive_report"].dead_letters
    assert all(d.attempts == 1 for d in naive_dead)

    # No query is lost without a paper trail, in either arm.
    for row, key in ((naive_row, "naive_report"), (hardened_row, "hardened_report")):
        report = table.extras[key]
        accounted = (
            len(report.metrics)
            + len(report.dead_letters)
            + len(report.shed_queries)
            + report.unserved_queries
        )
        assert accounted == len(table.extras["trace"].queries)

    # Deterministic: the whole experiment replays byte-identically.
    again = fig19_chaos_resilience(settings)
    assert again.rows == table.rows
