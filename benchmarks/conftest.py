"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper at a scaled-down (but
structurally identical) setting, prints the reproduced rows, persists them under
``results/``, and records a single wall-clock timing via pytest-benchmark (one round —
these are end-to-end experiments, not micro-benchmarks).

Run with::

    pytest benchmarks/ --benchmark-only

The printed tables are also written to ``results/<figure>.txt`` so EXPERIMENTS.md can
quote them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.reporting import FigureTable
from repro.analysis.settings import ExperimentSettings

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def fast_settings() -> ExperimentSettings:
    """The scaled-down experiment settings used by all benchmark harnesses."""
    return ExperimentSettings.fast()


@pytest.fixture
def record_figure(benchmark):
    """Run a figure driver once under the benchmark timer and persist its table."""

    def runner(func, filename: str, *args, **kwargs) -> FigureTable:
        table = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
        if not isinstance(table, FigureTable):
            raise TypeError("figure drivers must return a FigureTable")
        path = table.save(RESULTS_DIR / filename)
        text = table.format()
        print(f"\n{text}\n[saved to {path}]")
        return table

    return runner
