"""Fig. 7: the worked upper-bound examples (225 and 233 QPS)."""

import pytest

from repro.analysis.motivation import fig7_upper_bound_scenarios


@pytest.mark.smoke
def test_fig07_upper_bound_scenarios(record_figure):
    table = record_figure(fig7_upper_bound_scenarios, "fig07_upper_bound_scenarios.txt")
    computed = table.column("computed_QPS_max")
    assert computed[0] == pytest.approx(225.0)
    assert computed[1] == pytest.approx(233.333, rel=1e-3)
