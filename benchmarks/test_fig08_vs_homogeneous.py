"""Fig. 8: Kairos vs. the optimal homogeneous configuration for all five models."""

from repro.analysis.headline import fig8_vs_homogeneous

#: Paper Fig. 8 normalized throughputs, used to check the reproduced *shape*.
PAPER_VALUES = {"NCF": 1.68, "RM2": 2.03, "MT-WND": 1.25, "WND": 1.34, "DIEN": 1.43}


def test_fig08_vs_homogeneous(record_figure, fast_settings):
    table = record_figure(fig8_vs_homogeneous, "fig08_vs_homogeneous.txt", fast_settings)
    normalized = table.row_map("model", "normalized")
    assert set(normalized) == set(PAPER_VALUES)
    # Shape checks: Kairos clearly beats homogeneous for every model, the
    # embedding-dominated models (RM2, NCF) show the largest gains (close to 2x), and
    # the DNN-heavy MT-WND shows the smallest, as in the paper.
    assert all(value > 1.1 for value in normalized.values())
    top_two = sorted(normalized, key=normalized.get, reverse=True)[:2]
    assert "RM2" in top_two
    assert normalized["RM2"] > 1.6
    assert min(normalized, key=normalized.get) == "MT-WND"
