"""Fig. 3: the same configurations under different query-distribution schemes."""

import pytest

from repro.analysis.motivation import fig3_distribution_schemes


@pytest.mark.smoke
def test_fig03_distribution_schemes(record_figure, fast_settings):
    table = record_figure(
        fig3_distribution_schemes, "fig03_distribution_schemes.txt", fast_settings
    )
    for row in table.rows:
        config, ribbon, drs, clkwrk, orcl = row
        # every practical scheme stays at or below the clairvoyant Oracle
        assert max(ribbon, drs, clkwrk) <= orcl * 1.05
    # the heterogeneous configurations leave a visible gap to the Oracle (the
    # opportunity Kairos's distribution mechanism closes)
    hetero_rows = [r for r in table.rows if r[0] != "(4, 0, 0, 0)"]
    assert any(max(r[1], r[2], r[3]) < 0.95 * r[4] for r in hetero_rows)
