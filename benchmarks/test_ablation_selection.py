"""Ablation: similarity-based configuration selection vs. trusting the top-1 upper bound."""

from repro.analysis.ablations import ablation_selection_rule


def test_ablation_selection(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350, capacity_iterations=4)
    table = record_figure(
        ablation_selection_rule, "ablation_selection.txt", settings,
        model_name="RM2", top_k=6,
    )
    values = {row[0]: row[2] for row in table.rows}
    best = values["best of top-6 (oracle pick)"]
    selected = values["similarity-based selection"]
    # the similarity-based pick stays close to the best configuration in the top group
    assert selected >= 0.7 * best
