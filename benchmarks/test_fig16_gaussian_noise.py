"""Fig. 16: robustness to Gaussian batch sizes and to 5% latency-prediction noise."""

from repro.analysis.robustness import fig16_gaussian_and_noise


def test_fig16_gaussian_noise(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350, capacity_iterations=4)
    table = record_figure(
        fig16_gaussian_and_noise, "fig16_gaussian_noise.txt", settings,
        models=["RM2", "WND"],
    )
    scenarios = {}
    for row in table.rows:
        scenarios.setdefault(row[0], []).append(row[5])
    assert set(scenarios) == {"gaussian batches", "latency noise"}
    # Kairos keeps an advantage over homogeneous under both perturbations
    for scenario, values in scenarios.items():
        assert all(v > 1.0 for v in values), (scenario, values)
