"""Ablation: the heterogeneity coefficient C_j (Definition 1) on vs. off."""

import pytest

from repro.analysis.ablations import ablation_heterogeneity_coefficient


@pytest.mark.smoke
def test_ablation_coefficient(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350, capacity_iterations=4)
    table = record_figure(
        ablation_heterogeneity_coefficient, "ablation_coefficient.txt", settings,
        model_name="RM2",
    )
    values = {row[0]: row[1] for row in table.rows}
    with_c = values["with heterogeneity coefficient"]
    without_c = values["without (all C_j = 1)"]
    assert with_c > 0 and without_c > 0
    # weighting instance time by its value never hurts materially
    assert with_c >= 0.9 * without_c
