"""Fig. 21 (gray): health-aware serving vs. crash-hardened serving under gray failures.

The gray-failure headline scenario: servers silently degrade to 8x latency or go
zombie (accept work, never complete) while a crash-hardened policy stack (fig19's
retries + admission, with a response timeout) keeps routing fresh work onto them.
The health arm — the identical stack plus the oracle-free health monitor feeding
quarantine circuit breakers and latency-quantile hedged dispatch — must strictly
beat it on offered-query QoS attainment, whole-run and post-onset, at equal
realized $/hr: same fleet, trace, service RNG, and gray schedule in both arms, and
no crashes, so not even replacement-boot jitter separates the bills.
"""

import pytest

from repro.analysis.chaos import fig21_gray_resilience

#: No crashes and no replacements: both arms bill the identical fleet over the
#: identical window, so realized $/hr must agree to numerical noise.
COST_TOLERANCE = 0.01


@pytest.mark.smoke
@pytest.mark.gray
def test_fig21_gray_resilience(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350)
    table = record_figure(
        fig21_gray_resilience, "fig21_gray_resilience.txt", settings
    )
    headers = list(table.headers)
    hardened_row, health_row = table.rows
    assert hardened_row[0] == "hardened" and health_row[0] == "health+hedge"

    def col(row, name):
        return row[headers.index(name)]

    # Gray failures actually fire, in both arms, from the same seeded schedule.
    for key in ("hardened_report", "health_report"):
        onsets = [
            e
            for e in table.extras[key].scale_log
            if e.kind in ("degradation_onset", "zombie_onset")
        ]
        assert len(onsets) >= 2
    assert table.extras["onset_t0_ms"] > 0.0

    # The headline: detection + isolation + hedging strictly wins on offered-QoS
    # attainment — whole-run and in the post-onset window where the sick servers
    # poison the hardened arm's dispatch stream.
    assert col(health_row, "attainment") > col(hardened_row, "attainment")
    assert col(health_row, "attainment_post") > col(hardened_row, "attainment_post")

    # ...at equal realized $/hr: same fleet, no crashes, no replacements.
    hardened_cost = col(hardened_row, "realized_cost_hr")
    health_cost = col(health_row, "realized_cost_hr")
    assert abs(health_cost - hardened_cost) <= COST_TOLERANCE * hardened_cost

    # Each arm behaves in character: only the health arm quarantines, probes,
    # and hedges; the quarantine bill is real but small; every launched hedge
    # resolves (the exactly-once race accounting).
    assert col(hardened_row, "quarantines") == 0
    assert col(hardened_row, "hedges") == 0
    assert col(health_row, "quarantines") >= 1
    assert col(health_row, "probations") >= 1
    assert col(health_row, "hedges") >= 1
    assert col(health_row, "hedge_wins") >= 1
    assert col(health_row, "cost_quarantine") > 0.0
    health_report = table.extras["health_report"]
    assert health_report.hedges_launched == health_report.hedges_cancelled

    # No query is lost without a paper trail, in either arm.
    for row, key in (
        (hardened_row, "hardened_report"),
        (health_row, "health_report"),
    ):
        report = table.extras[key]
        accounted = (
            len(report.metrics)
            + len(report.dead_letters)
            + len(report.shed_queries)
            + report.unserved_queries
        )
        assert accounted == len(table.extras["trace"].queries)

    # Deterministic: the whole experiment replays byte-identically.
    again = fig21_gray_resilience(settings)
    assert again.rows == table.rows
