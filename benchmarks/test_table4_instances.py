"""Table 4: instance types and prices of the heterogeneous pool."""

import pytest

from repro.analysis.reporting import FigureTable
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG


def table4() -> FigureTable:
    rows = [
        [r["instance_type"], r["instance_class"], r["price_per_hour"], r["is_base"]]
        for r in DEFAULT_INSTANCE_CATALOG.describe()
    ]
    return FigureTable(
        figure_id="table4",
        title="Instance types of the heterogeneous pool",
        headers=["instance_type", "instance_class", "price_per_hour", "is_base"],
        rows=rows,
    )


@pytest.mark.smoke
def test_table4_instances(record_figure):
    table = record_figure(table4, "table4_instances.txt")
    prices = table.row_map("instance_type", "price_per_hour")
    assert prices["g4dn.xlarge"] == pytest.approx(0.526)
    assert prices["c5n.2xlarge"] == pytest.approx(0.432)
    assert prices["r5n.large"] == pytest.approx(0.149)
    assert prices["t3.xlarge"] == pytest.approx(0.1664)
    assert table.row_map("instance_type", "is_base")["g4dn.xlarge"] is True
