"""Fig. 5: the two-instance slack-creation example (Kairos 4/4 vs. naive FCFS 3/4)."""

import pytest

from repro.analysis.motivation import fig5_slack_example


@pytest.mark.smoke
def test_fig05_slack_example(record_figure):
    table = record_figure(fig5_slack_example, "fig05_slack_example.txt")
    served = table.row_map("scheme", "served_within_qos")
    assert served["KAIROS"] == 4
    assert served["naive FCFS"] == 3
