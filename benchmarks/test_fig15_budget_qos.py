"""Fig. 15: robustness to a 4x budget and to a 20% looser QoS target."""

from repro.analysis.robustness import fig15_budget_and_qos


def test_fig15_budget_qos(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350, capacity_iterations=4)
    table = record_figure(
        fig15_budget_and_qos, "fig15_budget_qos.txt", settings, models=["RM2", "WND", "MT-WND"],
    )
    scenarios = {}
    for row in table.rows:
        scenarios.setdefault(row[0], []).append(row[5])
    # the heterogeneity advantage persists in both scenarios for every model tested
    for scenario, values in scenarios.items():
        assert all(v > 1.0 for v in values), (scenario, values)
