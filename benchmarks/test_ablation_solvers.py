"""Ablation: assignment-solver runtime and optimality on Kairos-sized matchings.

The paper reports that a 20-query x 20-instance matching is solved well within 0.05 ms
with the Jonker-Volgenant algorithm (plus network overhead).  This benchmark times the
from-scratch solvers on that exact size and checks they agree with SciPy's reference.
"""

import numpy as np
import pytest

from repro.solvers.assignment import solve_assignment


@pytest.fixture(scope="module")
def matching_cost():
    rng = np.random.default_rng(0)
    return rng.uniform(1.0, 400.0, size=(20, 20))


@pytest.mark.parametrize("method", ["jv", "hungarian", "greedy", "scipy"])
def test_ablation_solvers(benchmark, matching_cost, method):
    result = benchmark(solve_assignment, matching_cost, method)
    optimal = solve_assignment(matching_cost, "scipy").total_cost
    if method == "greedy":
        assert result.total_cost >= optimal - 1e-9
        assert result.total_cost <= 3.0 * optimal
    else:
        assert result.total_cost == pytest.approx(optimal)
