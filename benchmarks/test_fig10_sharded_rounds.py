"""Fig. 10-style overhead benchmark: joint-round cost, union vs sharded dispatch.

Opens the ROADMAP sharded-controller item with numbers: as co-located tenants are
added, the union matching's solved matrix grows with the tenant count squared while
per-model sharded dispatch keeps each block constant — and on uncontended rounds both
commit identical per-model matchings (asserted inside the driver before timing).
"""

import pytest

from repro.analysis.sharding import fig10_sharded_round_cost


@pytest.mark.smoke
def test_fig10_sharded_round_cost(record_figure):
    table = record_figure(
        fig10_sharded_round_cost,
        "fig10_sharded_rounds.txt",
        max_models=4,
        queries_per_model=14,
        min_seconds=0.08,
    )
    headers = list(table.headers)
    union_cells = table.column("union_cells")
    sharded_cells = table.column("sharded_cells")
    models = table.column("models")

    # With one tenant the union IS the single block: identical work.
    assert union_cells[0] == sharded_cells[0]
    for n, u_cells, s_cells in zip(models[1:], union_cells[1:], sharded_cells[1:]):
        # The union matrix covers every (query, instance) pair across tenants; the
        # sharded blocks only same-model pairs — n-fold fewer cells at n tenants.
        assert u_cells == n * s_cells
        assert s_cells < u_cells
    # Union work grows quadratically with the tenant count (m and n both scale).
    assert union_cells[-1] == models[-1] ** 2 * union_cells[0]
    # Sharded work grows linearly: per-model blocks are constant-sized.
    assert sharded_cells[-1] == models[-1] * sharded_cells[0]
