"""Fig. 12: transient response when the query-size distribution changes (log-normal -> Gaussian)."""

import numpy as np

from repro.analysis.robustness import fig12_load_change


def test_fig12_load_change(record_figure, fast_settings):
    settings = fast_settings.scaled(num_queries=350, capacity_iterations=4)
    table = record_figure(
        fig12_load_change, "fig12_load_change.txt", settings,
        model_name="RM2", time_steps=8, schemes=("RIBBON", "CLKWRK"),
    )
    headers = list(table.headers)
    kairos = [row[headers.index("KAIROS")] for row in table.rows]
    ribbon = [row[headers.index("RIBBON")] for row in table.rows]
    # Kairos is at its (constant, one-shot) throughput from the very first time step and
    # beats the average configuration the exploring schemes run during the transient.
    assert len(set(np.round(kairos, 6))) == 1
    assert kairos[0] > np.mean(ribbon)
