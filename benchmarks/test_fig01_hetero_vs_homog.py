"""Fig. 1: heterogeneous configurations vs. the best homogeneous one (RM2, Ribbon FCFS)."""

import pytest

from repro.analysis.motivation import fig1_hetero_vs_homogeneous


@pytest.mark.smoke
def test_fig01_hetero_vs_homog(record_figure, fast_settings):
    table = record_figure(
        fig1_hetero_vs_homogeneous, "fig01_hetero_vs_homog.txt", fast_settings
    )
    throughput = table.row_map("config", "throughput_qps")
    homog = throughput["(4, 0, 0, 0)"]
    # The paper's message: at least one heterogeneous configuration clearly beats the
    # homogeneous baseline, and at least one is clearly worse.
    assert any(q > 1.1 * homog for cfg, q in throughput.items() if cfg != "(4, 0, 0, 0)")
    assert any(q < 0.9 * homog for cfg, q in throughput.items() if cfg != "(4, 0, 0, 0)")
