"""Fig. 20 (pipelines): critical-path-aware vs. stage-local Kairos on DAG deadlines.

Beyond the paper's single-query scope: requests are task graphs — chains and
diamonds of stages across two co-located models — with one end-to-end deadline.
Both arms run the identical cluster (equal provisioned $/hr by construction),
background streams, graph fleet, and service RNG; only the scheduling policy and
the graph-aware admission flag differ.  The benchmark asserts, per seed, the
headline pipeline claim: folding critical-path laxity into the matching and
shedding doomed graphs whole strictly raises end-to-end deadline attainment at
equal budget.
"""

import pytest

from repro.analysis.pipeline import ARMS, fig20_pipeline_deadlines

MODELS = ("RM2", "WND")


@pytest.mark.smoke
@pytest.mark.parametrize("seed", [7, 42])
def test_fig20_pipeline_deadlines(record_figure, fast_settings, seed):
    settings = fast_settings.scaled(num_queries=500, seed=seed)
    table = record_figure(
        fig20_pipeline_deadlines,
        f"fig20_pipeline_deadlines_seed{seed}.txt",
        settings,
        model_names=MODELS,
    )
    headers = list(table.headers)
    by_arm = {row[headers.index("arm")]: row for row in table.rows}
    assert set(by_arm) == set(ARMS)

    att = headers.index("attainment")
    value_att = headers.index("value_attainment")
    # The headline claim: graph-awareness strictly wins end-to-end deadline
    # attainment — and the value-weighted variant — at equal provisioned budget.
    assert by_arm["graph-aware"][att] > by_arm["stage-local"][att]
    assert by_arm["graph-aware"][value_att] > by_arm["stage-local"][value_att]

    # Both arms resolved the whole fleet: every graph has a terminal outcome and
    # the per-graph stage partitions are exact (served + shed + dead + unserved
    # + unreleased == stages).
    for arm in ARMS:
        outcomes = table.extras[arm]["outcomes"]
        assert len(outcomes) == by_arm[arm][headers.index("graphs")]
        for o in outcomes:
            assert (
                o.served_stages
                + o.shed_stages
                + o.dead_stages
                + o.unserved_stages
                + o.unreleased_stages
                == o.stages
            )
    # Equal budget means equal provisioned $/hr; the graph-aware arm must not
    # buy its attainment with extra realized spend either.
    cost = headers.index("realized_cost")
    assert by_arm["graph-aware"][cost] <= by_arm["stage-local"][cost] * 1.02

    # Deterministic for the fixed seed: a second full run reproduces the table.
    again = fig20_pipeline_deadlines(settings, model_names=MODELS)
    assert again.rows == table.rows
