"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that editable
installs (``pip install -e .``) work on environments whose setuptools predates full
PEP 660 support (and without network access to fetch a newer build backend).
"""

from setuptools import setup

setup()
