"""Integration tests: whole-system behaviour across modules.

These exercise the same paths as the benchmark harnesses but at a reduced scale, so the
headline claims of the paper are checked on every test run:

* Kairos's heterogeneous serving beats the homogeneous baseline (Fig. 8's direction);
* Kairos's query distribution beats Ribbon's FCFS on the same configuration (Fig. 3/9);
* the one-shot selection lands within the top upper-bound configurations (Fig. 13);
* Kairos+ needs only a small fraction of the space (Fig. 10/11).
"""

import pytest

from repro.analysis.motivation import fig5_slack_example, fig7_upper_bound_scenarios
from repro.analysis.schemes import SchemeRunner
from repro.analysis.settings import ExperimentSettings
from repro.cloud.billing import BillingModel
from repro.core.kairos import KairosPlanner
from repro.core.kairos_plus import KairosPlusSearch
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.capacity import measure_allowable_throughput
from repro.workload.batch_sizes import production_batch_distribution
from repro.workload.generator import WorkloadSpec


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings.fast().scaled(num_queries=350, capacity_iterations=5)


@pytest.fixture(scope="module")
def rm2_runner(settings):
    return SchemeRunner(settings, "RM2")


@pytest.fixture(scope="module")
def rm2_plan(settings):
    planner = KairosPlanner(
        settings.model("RM2"),
        settings.budget_per_hour,
        profiles=settings.registry(),
        batch_samples=settings.monitored_batches(),
    )
    return planner.plan()


class TestHeadlineClaims:
    def test_kairos_beats_homogeneous_for_rm2(self, settings, rm2_runner, rm2_plan):
        baseline = rm2_runner.homogeneous_baseline()
        kairos_qps = rm2_runner.measure(rm2_plan.selected_config, "KAIROS")
        assert kairos_qps > 1.2 * baseline["scaled_qps"]

    def test_kairos_distribution_beats_ribbon_on_selected_config(self, rm2_runner, rm2_plan):
        config = rm2_plan.selected_config
        kairos_qps = rm2_runner.measure(config, "KAIROS")
        ribbon_qps = rm2_runner.measure(config, "RIBBON")
        assert kairos_qps >= ribbon_qps * 0.95  # never materially worse
        # and the oracle stays above both
        assert rm2_runner.oracle_throughput(config) >= max(kairos_qps, ribbon_qps) * 0.95

    def test_upper_bound_is_respected_by_measurement(self, rm2_runner, rm2_plan):
        config = rm2_plan.selected_config
        measured = rm2_runner.measure(config, "KAIROS")
        assert measured <= rm2_plan.selected_upper_bound * 1.05

    def test_selected_config_is_heterogeneous(self, rm2_plan):
        assert not rm2_plan.selected_config.is_homogeneous()
        assert rm2_plan.selected_config.base_count >= 1

    def test_kairos_plus_prunes_most_of_the_space(self, rm2_runner, rm2_plan):
        result = KairosPlusSearch(rm2_plan.ranked, rm2_runner.oracle_throughput).run()
        assert result.evaluated_fraction < 0.05
        assert result.best_config is not None

    def test_fig5_and_fig7_reproduce_exactly(self):
        fig5 = fig5_slack_example()
        served = fig5.column("served_within_qos")
        assert served == [3, 4]
        fig7 = fig7_upper_bound_scenarios()
        computed = fig7.column("computed_QPS_max")
        assert computed[0] == pytest.approx(225.0)
        assert computed[1] == pytest.approx(233.333, rel=1e-3)


class TestCrossModelBehaviour:
    @pytest.mark.parametrize("model_name", ["WND", "DIEN"])
    def test_planner_selects_budget_feasible_heterogeneous_config(self, settings, model_name):
        planner = KairosPlanner(
            settings.model(model_name),
            settings.budget_per_hour,
            profiles=settings.registry(),
            batch_samples=settings.monitored_batches(),
        )
        plan = planner.plan()
        assert plan.selected_config.fits_budget(settings.budget_per_hour)
        assert plan.selected_config.base_count >= 1

    def test_online_learning_matches_perfect_estimator_closely(self, settings):
        """After warm-up the online latency learner must not cost much throughput."""
        model = settings.model("WND")
        profiles = settings.registry()
        planner = KairosPlanner(
            model, settings.budget_per_hour, profiles=profiles,
            batch_samples=settings.monitored_batches(),
        )
        config = planner.plan().selected_config
        spec = WorkloadSpec(batch_sizes=production_batch_distribution(), num_queries=350)
        online = measure_allowable_throughput(
            config, model, profiles, KairosPolicy,
            workload_spec=spec, rng=5, max_iterations=5,
        ).qps
        perfect = measure_allowable_throughput(
            config, model, profiles, lambda: KairosPolicy(use_perfect_estimator=True),
            workload_spec=spec, rng=5, max_iterations=5,
        ).qps
        assert online >= 0.8 * perfect

    def test_homogeneous_scaling_factor_applied(self, settings):
        billing = BillingModel(settings.catalog())
        scale = billing.homogeneous_budget_scaling("g4dn.xlarge", settings.budget_per_hour)
        assert 1.0 < scale < 1.3
