"""Deterministic regression corpus: committed scenarios replayed on every CI run.

``tests/regression/scenarios/*.json`` holds seeded hard cases (and any fuzzer finds
graduated after a fix).  Each file is a complete :class:`ScenarioSpec`; replaying
one re-runs its serving loop and asserts every per-run invariant.  The derived
invariants (QoS monotone in budget, spot-disabled byte-identity, PYTHONHASHSEED
independence) each get a pinned deterministic test as well, and the detector tests
prove the invariant checker actually *fires* on corrupted runs — guarding the
guards.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.fuzz.invariants import (
    ALL_INVARIANTS,
    check_budget_conservation,
    check_completion_causality,
    check_failure_billing,
    check_fault_determinism,
    check_graph_conservation,
    check_gray_billing_partition,
    check_hashseed_independence,
    check_hedge_exactly_once,
    check_ledger_partition_exactness,
    check_outcome_conservation,
    check_probation_liveness,
    check_qos_monotone_in_budget,
    check_query_conservation,
    check_retry_bounded,
    check_round_separation,
    check_spot_disabled_identity,
    check_stage_precedence,
)
from repro.fuzz.runner import run_scenario
from repro.fuzz.spec import ScenarioSpec
from repro.sim.faults import DeadLetterEntry, ShedEntry

SCENARIO_DIR = Path(__file__).parent / "scenarios"
SCENARIOS = sorted(SCENARIO_DIR.glob("*.json"))


def _load(name: str) -> ScenarioSpec:
    return ScenarioSpec.load(SCENARIO_DIR / name)


class TestCorpusReplay:
    """Every committed scenario replays clean through all per-run invariants."""

    @pytest.mark.parametrize("path", SCENARIOS, ids=lambda p: p.stem)
    def test_scenario_holds_all_invariants(self, path):
        result = run_scenario(ScenarioSpec.load(path))
        assert not result.violations, "; ".join(str(v) for v in result.violations)

    def test_corpus_is_committed(self):
        assert len(SCENARIOS) >= 3, "the regression corpus must hold >= 3 scenarios"

    def test_corpus_covers_every_loop(self):
        loops = {ScenarioSpec.load(p).loop for p in SCENARIOS}
        assert loops == {"static", "elastic", "multi_model", "spot", "pipeline"}

    def test_corpus_covers_the_chaos_dimensions(self):
        """At least one committed scenario exercises each chaos knob."""
        specs = [ScenarioSpec.load(p) for p in SCENARIOS]
        assert any(s.faults is not None and s.faults.storms for s in specs)
        assert any(
            s.faults is not None and s.faults.failures_per_hour > 0 for s in specs
        )
        assert any(
            s.faults is not None and s.faults.slowdowns_per_hour > 0 for s in specs
        )
        assert any(s.retry is not None for s in specs)
        assert any(s.admission is not None for s in specs)
        assert any(s.faults is not None and s.spot is not None for s in specs)

    def test_corpus_covers_a_nonzero_time_origin(self):
        assert any(ScenarioSpec.load(p).start_offset_ms > 0 for p in SCENARIOS)

    def test_corpus_covers_the_gray_dimensions(self):
        """At least one committed scenario exercises each gray-failure knob."""
        specs = [ScenarioSpec.load(p) for p in SCENARIOS]
        assert any(
            s.faults is not None and s.faults.zombies_per_hour > 0 for s in specs
        )
        assert any(
            s.faults is not None and s.faults.degradations_per_hour > 0 for s in specs
        )
        assert any(
            s.faults is not None and s.faults.flaky_per_hour > 0 for s in specs
        )
        assert any(s.health is not None for s in specs)
        assert any(s.hedge is not None for s in specs)
        assert any(s.health is not None and s.sharded_events for s in specs)


class TestShardedByteIdentity:
    """The sharded event loop is a pure partition of the single heap.

    For every committed scenario — chaos included — routing events through
    :class:`~repro.sim.sharding.ShardedEventQueue` must produce a byte-identical
    result digest.  Merge exactness holds because sharded queues hand out globally
    unique sequence numbers, so merging shard heads smallest-sort-key-first
    reproduces the exact single-heap pop order for *any* partition.
    """

    @pytest.mark.parametrize("path", SCENARIOS, ids=lambda p: p.stem)
    def test_sharded_digest_matches_unsharded(self, path):
        from repro.fuzz.runner import digest_spec

        spec = ScenarioSpec.load(path)
        assert digest_spec(spec) == digest_spec(
            dataclasses.replace(spec, sharded_events=True)
        )


class TestPipelineSimByteIdentity:
    """With no task graphs registered, the pipeline simulator is pure overhead-free
    scaffolding: substituting :class:`PipelineServingSimulation` for
    :class:`MultiModelServingSimulation` must leave every multi-model scenario's
    result digest byte-identical — chaos, sharded scheduling, and the sharded
    event loop included.  The guard pins the ``coordinator.active`` gating in
    ``_admit`` / ``_handle`` / ``run`` and the zero-FP-op ``_row_cost_scale``
    default: any stray graph bookkeeping on the hot path shows up as a digest
    mismatch here.
    """

    MULTI_MODEL = [p for p in SCENARIOS if ScenarioSpec.load(p).loop == "multi_model"]

    @pytest.mark.parametrize("path", MULTI_MODEL, ids=lambda p: p.stem)
    @pytest.mark.parametrize("sharded_events", [False, True])
    def test_no_graph_digest_matches_multi_model(
        self, path, sharded_events, monkeypatch
    ):
        import repro.fuzz.runner as runner_module
        from repro.fuzz.runner import digest_spec
        from repro.pipeline import PipelineServingSimulation

        spec = dataclasses.replace(
            ScenarioSpec.load(path), sharded_events=sharded_events
        )
        baseline = digest_spec(spec)
        monkeypatch.setattr(
            runner_module, "MultiModelServingSimulation", PipelineServingSimulation
        )
        assert digest_spec(spec) == baseline

    def test_corpus_has_chaos_multi_model_coverage(self):
        """The identity above must be exercised under faults, not just calm runs."""
        specs = [ScenarioSpec.load(p) for p in self.MULTI_MODEL]
        assert any(
            s.faults is not None and s.retry is not None and s.admission is not None
            for s in specs
        )


class TestNonZeroTimeOrigin:
    """Non-zero origins through all four loops: the offset twin of each committed
    scenario must replay clean.  Pre-fix, a trace not starting at t=0 tripped the
    estimator's absolute-time window gate (spurious replans) and — via the
    replan-after-repop strand — duplicate same-instant scheduling rounds; the
    ``offset-start-controller`` scenario is the committed reproducer.
    """

    # 30 s: ~20x the longest trace span in the corpus, yet small enough that
    # recurring hazard timers (sampled from t=0; the spot market reclaims every
    # ~2 s) don't spend the whole step budget crossing the dead zone before the
    # first arrival.  The committed ``offset-start-controller`` scenario covers
    # the deep (15-minute) offset.
    OFFSET_MS = 30_000.0

    @pytest.mark.parametrize("path", SCENARIOS, ids=lambda p: p.stem)
    def test_offset_twin_holds_all_invariants(self, path):
        spec = ScenarioSpec.load(path)
        twin = dataclasses.replace(
            spec,
            start_offset_ms=spec.start_offset_ms + self.OFFSET_MS,
            label=f"{spec.label}+offset",
        )
        result = run_scenario(twin)
        assert not result.violations, "; ".join(str(v) for v in result.violations)

    def test_offset_twin_completes_the_same_queries(self):
        """Shifting the origin must not change *which* queries finish."""
        spec = _load("static-overload-bursty.json")
        base = run_scenario(spec)
        twin = run_scenario(
            dataclasses.replace(spec, start_offset_ms=self.OFFSET_MS)
        )
        base_ids = sorted(r.query.query_id for r in base.report.metrics.records)
        twin_ids = sorted(r.query.query_id for r in twin.report.metrics.records)
        assert base_ids == twin_ids


class TestDerivedInvariantsDeterministic:
    """One pinned deterministic exercise per derived invariant."""

    def test_qos_monotone_in_budget(self):
        violations = check_qos_monotone_in_budget("RM2", (1.2, 2.0, 3.0, 4.5))
        assert not violations, "; ".join(str(v) for v in violations)

    def test_spot_disabled_byte_identity(self):
        violations = check_spot_disabled_identity(_load("spot-burst-requeue.json"))
        assert not violations, "; ".join(str(v) for v in violations)

    def test_hashseed_independence(self):
        spec = _load("equal-instant-elastic.json")
        violations = check_hashseed_independence(spec)
        assert not violations, "; ".join(str(v) for v in violations)

    def test_fault_determinism(self):
        violations = check_fault_determinism(_load("chaos-elastic-storm-retry.json"))
        assert not violations, "; ".join(str(v) for v in violations)


def _clean_result():
    return run_scenario(_load("equal-instant-elastic.json"))


class TestCheckersDetectCorruption:
    """Feed each per-run checker a deliberately corrupted run: it must fire.

    Without these, a checker that silently degenerates to a no-op would keep the
    whole fuzzing stage green forever.
    """

    @pytest.fixture(scope="class")
    def clean(self):
        return _clean_result()

    def test_query_conservation_flags_double_service(self, clean):
        corrupted = dataclasses.replace(
            clean, completions=clean.completions + (clean.completions[0],)
        )
        assert any(
            v.invariant == "query_conservation"
            for v in check_query_conservation(corrupted)
        )

    def test_query_conservation_flags_lost_query(self, clean):
        corrupted = dataclasses.replace(clean, completions=clean.completions[:-1])
        assert any(
            v.invariant == "query_conservation"
            for v in check_query_conservation(corrupted)
        )

    def test_causality_flags_completion_before_arrival(self, clean):
        rec = clean.completions[0]
        fake = SimpleNamespace(
            query=rec.query,
            server_id=rec.server_id,
            server_type=rec.server_type,
            start_ms=rec.query.arrival_time_ms - 5.0,
            completion_ms=rec.query.arrival_time_ms - 1.0,
            service_ms=rec.service_ms,
        )
        corrupted = dataclasses.replace(
            clean, completions=(fake,) + clean.completions[1:]
        )
        assert any(
            v.invariant == "completion_causality"
            for v in check_completion_causality(corrupted)
        )

    def test_round_separation_flags_equal_instant_rounds(self, clean):
        r0 = clean.rounds[0]
        duplicated = (r0, dataclasses.replace(r0)) + clean.rounds[1:]
        corrupted = dataclasses.replace(clean, rounds=duplicated)
        assert any(
            v.invariant == "round_separation"
            for v in check_round_separation(corrupted)
        )

    def test_budget_conservation_flags_interval_beyond_horizon(self, clean):
        ledger = clean.report.ledger
        horizon = clean.report.billing_horizon_ms
        rogue = dataclasses.replace(
            ledger.intervals[0], start_ms=horizon + 1_000.0, end_ms=horizon + 9_000.0
        )
        fake_ledger = SimpleNamespace(
            intervals=list(ledger.intervals) + [rogue],
            total_cost=ledger.total_cost,
        )
        fake_report = SimpleNamespace(
            ledger=fake_ledger,
            billing_horizon_ms=horizon,
            scale_log=None,
        )
        corrupted = SimpleNamespace(
            spec=clean.spec,
            report=fake_report,
            ledger=fake_ledger,
            queries=clean.queries,
            rounds=clean.rounds,
            completions=clean.completions,
        )
        assert any(
            v.invariant == "budget_conservation"
            for v in check_budget_conservation(corrupted)
        )

    def test_partition_exactness_flags_mistagged_cost(self, clean):
        ledger = clean.report.ledger
        horizon = clean.report.billing_horizon_ms
        skewed_by_tag = dict(ledger.cost_by_tag(horizon))
        first = next(iter(skewed_by_tag))
        skewed_by_tag[first] += 0.25
        fake_ledger = SimpleNamespace(
            intervals=ledger.intervals,
            total_cost=ledger.total_cost,
            cost_by_tag=lambda h: skewed_by_tag,
            cost_by_type=ledger.cost_by_type,
            cost_by_market=ledger.cost_by_market,
            discount_savings=ledger.discount_savings,
        )
        corrupted = SimpleNamespace(
            spec=clean.spec,
            report=SimpleNamespace(ledger=fake_ledger, billing_horizon_ms=horizon),
            ledger=fake_ledger,
            queries=clean.queries,
            rounds=clean.rounds,
            completions=clean.completions,
        )
        assert any(
            v.invariant == "ledger_partition_exactness"
            for v in check_ledger_partition_exactness(corrupted)
        )


def _clean_chaos_result():
    return run_scenario(_load("chaos-elastic-storm-retry.json"))


class TestChaosCheckersDetectCorruption:
    """The chaos-era checkers must also fire on deliberately corrupted runs."""

    @pytest.fixture(scope="class")
    def chaos_clean(self):
        result = _clean_chaos_result()
        assert not result.violations
        assert result.report.instance_failures > 0  # the corpus scenario crashes
        return result

    def test_outcome_conservation_flags_lost_query(self, chaos_clean):
        corrupted = dataclasses.replace(
            chaos_clean, completions=chaos_clean.completions[:-1]
        )
        assert any(
            v.invariant == "outcome_conservation"
            for v in check_outcome_conservation(corrupted)
        )

    def test_outcome_conservation_flags_double_terminal(self, chaos_clean):
        served = chaos_clean.completions[0].query
        report = dataclasses.replace(
            chaos_clean.report,
            shed_queries=list(chaos_clean.report.shed_queries)
            + [ShedEntry(query=served, time_ms=0.0)],
        )
        corrupted = dataclasses.replace(chaos_clean, report=report)
        violations = check_outcome_conservation(corrupted)
        assert any("both served and shed" in v.message for v in violations)

    def test_failure_billing_flags_unlogged_failures(self, chaos_clean):
        report = dataclasses.replace(
            chaos_clean.report,
            scale_log=[
                e for e in chaos_clean.report.scale_log if e.kind != "instance_failed"
            ],
        )
        corrupted = SimpleNamespace(
            spec=chaos_clean.spec,
            report=report,
            ledger=report.ledger,
            queries=chaos_clean.queries,
            rounds=chaos_clean.rounds,
            completions=chaos_clean.completions,
        )
        assert any(
            v.invariant == "failure_billing" for v in check_failure_billing(corrupted)
        )

    def test_failure_billing_flags_interval_billed_past_crash(self, chaos_clean):
        ledger = chaos_clean.report.ledger
        intervals = [
            dataclasses.replace(iv, end_ms=None) if iv.failed else iv
            for iv in ledger.intervals
        ]
        fake_ledger = SimpleNamespace(
            intervals=intervals,
            total_cost=ledger.total_cost,
            cost_by_failure=ledger.cost_by_failure,
            cost_of_failures=ledger.cost_of_failures,
        )
        corrupted = SimpleNamespace(
            spec=chaos_clean.spec,
            report=chaos_clean.report,
            ledger=fake_ledger,
            queries=chaos_clean.queries,
            rounds=chaos_clean.rounds,
            completions=chaos_clean.completions,
        )
        violations = check_failure_billing(corrupted)
        assert any("billed to the horizon" in v.message for v in violations)

    def test_retry_bounded_flags_budget_overrun(self, chaos_clean):
        q = chaos_clean.completions[0].query
        report = dataclasses.replace(
            chaos_clean.report,
            dead_letters=[
                DeadLetterEntry(query=q, time_ms=1.0, reason="crash", attempts=99)
            ],
        )
        corrupted = dataclasses.replace(chaos_clean, report=report)
        violations = check_retry_bounded(corrupted)
        assert any("dead-lettered after" in v.message for v in violations)

    def test_retry_bounded_flags_premature_dead_letter(self, chaos_clean):
        assert chaos_clean.spec.retry.max_attempts > 1
        q = chaos_clean.completions[0].query
        report = dataclasses.replace(
            chaos_clean.report,
            dead_letters=[
                DeadLetterEntry(query=q, time_ms=1.0, reason="crash", attempts=1)
            ],
        )
        corrupted = dataclasses.replace(chaos_clean, report=report)
        violations = check_retry_bounded(corrupted)
        assert any("before exhausting" in v.message for v in violations)

    def test_retry_bounded_flags_retries_without_policy(self, clean=None):
        base = _clean_result()  # a fault-free scenario: no retry policy configured
        report = dataclasses.replace(base.report, retries=5)
        corrupted = dataclasses.replace(base, report=report)
        violations = check_retry_bounded(corrupted)
        assert any("without a retry policy" in v.message for v in violations)


def _clean_pipeline_result():
    return run_scenario(_load("pipeline-diamond-deadlines.json"))


class TestPipelineCheckersDetectCorruption:
    """The task-graph checkers must fire on corrupted pipeline runs.

    Corruptions only swap tuples on the result (completions, graph_outcomes) —
    the shared coordinator is never mutated, so the class-scoped fixture stays
    clean across tests.
    """

    @pytest.fixture(scope="class")
    def pipeline_clean(self):
        result = _clean_pipeline_result()
        assert not result.violations
        assert result.coordinator is not None and result.coordinator.active
        assert any(o.outcome == "served" for o in result.graph_outcomes)
        return result

    @staticmethod
    def _served_child(result):
        """A (runtime, stage, completion) triple for a served non-source stage."""
        by_qid = {rec.query.query_id: rec for rec in result.completions}
        for runtime in result.coordinator.runtimes:
            for stage in runtime.graph.stages:
                rec = by_qid.get(runtime.queries[stage.name].query_id)
                if stage.parents and rec is not None:
                    return runtime, stage, rec
        raise AssertionError("corpus scenario must serve a non-source stage")

    def test_stage_precedence_flags_child_starting_before_parent(
        self, pipeline_clean
    ):
        runtime, stage, rec = self._served_child(pipeline_clean)
        parent_done = max(runtime.served[p] for p in stage.parents)
        fake = SimpleNamespace(
            query=rec.query,
            server_id=rec.server_id,
            server_type=rec.server_type,
            start_ms=parent_done - 5.0,
            completion_ms=rec.completion_ms,
            service_ms=rec.service_ms,
        )
        completions = tuple(
            fake if r.query.query_id == rec.query.query_id else r
            for r in pipeline_clean.completions
        )
        corrupted = dataclasses.replace(pipeline_clean, completions=completions)
        violations = check_stage_precedence(corrupted)
        assert any("before parent" in v.message for v in violations)

    def test_graph_conservation_flags_partition_imbalance(self, pipeline_clean):
        o = next(x for x in pipeline_clean.graph_outcomes if x.outcome == "served")
        broken = dataclasses.replace(o, served_stages=o.served_stages + 1)
        outcomes = tuple(
            broken if x.graph_id == o.graph_id else x
            for x in pipeline_clean.graph_outcomes
        )
        corrupted = dataclasses.replace(pipeline_clean, graph_outcomes=outcomes)
        violations = check_graph_conservation(corrupted)
        assert any("but the graph has" in v.message for v in violations)

    def test_graph_conservation_flags_mislabelled_outcome(self, pipeline_clean):
        o = next(x for x in pipeline_clean.graph_outcomes if x.outcome == "served")
        mislabelled = dataclasses.replace(o, outcome="dead")
        outcomes = tuple(
            mislabelled if x.graph_id == o.graph_id else x
            for x in pipeline_clean.graph_outcomes
        )
        corrupted = dataclasses.replace(pipeline_clean, graph_outcomes=outcomes)
        violations = check_graph_conservation(corrupted)
        assert any("labelled dead with no dead stage" in v.message for v in violations)

    def test_graph_conservation_flags_unknown_label(self, pipeline_clean):
        o = pipeline_clean.graph_outcomes[0]
        outcomes = (dataclasses.replace(o, outcome="mystery"),) + tuple(
            pipeline_clean.graph_outcomes[1:]
        )
        corrupted = dataclasses.replace(pipeline_clean, graph_outcomes=outcomes)
        violations = check_graph_conservation(corrupted)
        assert any("unknown outcome" in v.message for v in violations)


def _clean_gray_result():
    return run_scenario(_load("gray-flaky-hedge-mm.json"))


class TestGrayCheckersDetectCorruption:
    """The gray-era checkers (hedging, gray billing, breaker lifecycle) must fire
    on deliberately corrupted runs, exactly like the chaos-era detectors above.
    """

    @pytest.fixture(scope="class")
    def gray_clean(self):
        result = _clean_gray_result()
        assert not result.violations
        report = result.report
        # The corpus scenario genuinely exercises the machinery under test.
        assert report.hedges_launched > 0
        assert any(e.kind == "quarantine" for e in report.scale_log)
        assert any(e.kind == "breaker_close" for e in report.scale_log)
        return result

    def test_hedge_exactly_once_flags_unresolved_race(self, gray_clean):
        report = dataclasses.replace(
            gray_clean.report, hedges_cancelled=gray_clean.report.hedges_cancelled + 1
        )
        corrupted = dataclasses.replace(gray_clean, report=report)
        violations = check_hedge_exactly_once(corrupted)
        assert any("exactly one loser" in v.message for v in violations)

    def test_hedge_exactly_once_flags_activity_without_policy(self, gray_clean):
        spec = dataclasses.replace(gray_clean.spec, hedge=None)
        corrupted = dataclasses.replace(gray_clean, spec=spec)
        violations = check_hedge_exactly_once(corrupted)
        assert any("without a HedgeSpec" in v.message for v in violations)

    def test_hedge_exactly_once_flags_double_service(self, gray_clean):
        corrupted = dataclasses.replace(
            gray_clean,
            completions=gray_clean.completions + (gray_clean.completions[0],),
        )
        violations = check_hedge_exactly_once(corrupted)
        assert any("served more than once" in v.message for v in violations)

    def test_gray_billing_flags_leaky_partition(self, gray_clean):
        ledger = gray_clean.report.ledger
        horizon = gray_clean.report.billing_horizon_ms
        skewed = dict(ledger.attribution_partition(horizon))
        skewed["healthy"] += 0.25
        fake_ledger = SimpleNamespace(
            attribution_partition=lambda h: skewed,
            total_cost=ledger.total_cost,
            cost_of_failures=ledger.cost_of_failures,
            spans=ledger.spans,
        )
        corrupted = SimpleNamespace(
            spec=gray_clean.spec,
            report=gray_clean.report,
            ledger=fake_ledger,
            queries=gray_clean.queries,
            rounds=gray_clean.rounds,
            completions=gray_clean.completions,
        )
        violations = check_gray_billing_partition(corrupted)
        assert any("partition sums to" in v.message for v in violations)

    def test_gray_billing_flags_bucket_with_dimension_disabled(self, gray_clean):
        ledger = gray_clean.report.ledger
        horizon = gray_clean.report.billing_horizon_ms
        partition = ledger.attribution_partition(horizon)
        assert partition["quarantine"] > 0  # the corpus scenario quarantines
        spec = dataclasses.replace(gray_clean.spec, health=None, hedge=None)
        corrupted = dataclasses.replace(gray_clean, spec=spec)
        violations = check_gray_billing_partition(corrupted)
        assert any("dimension disabled" in v.message for v in violations)

    def test_probation_liveness_flags_lifecycle_without_health(self, gray_clean):
        spec = dataclasses.replace(gray_clean.spec, health=None, hedge=None)
        corrupted = dataclasses.replace(gray_clean, spec=spec)
        violations = check_probation_liveness(corrupted)
        assert any("without a HealthSpec" in v.message for v in violations)

    def test_probation_liveness_flags_probation_without_quarantine(self, gray_clean):
        probation = next(
            e for e in gray_clean.report.scale_log if e.kind == "probation"
        )
        rogue = dataclasses.replace(
            probation, reason="server999", time_ms=probation.time_ms - 1.0
        )
        report = dataclasses.replace(
            gray_clean.report, scale_log=[rogue] + list(gray_clean.report.scale_log)
        )
        corrupted = dataclasses.replace(gray_clean, report=report)
        violations = check_probation_liveness(corrupted)
        assert any("without being quarantined" in v.message for v in violations)

    def test_probation_liveness_flags_whole_fleet_quarantined(self, gray_clean):
        quarantine = next(
            e for e in gray_clean.report.scale_log if e.kind == "quarantine"
        )
        ever = sum(sum(counts) for counts in gray_clean.spec.config_counts)
        flood = [
            dataclasses.replace(quarantine, reason=f"server{900 + i}:flood")
            for i in range(ever)
        ]
        report = dataclasses.replace(
            gray_clean.report, scale_log=flood + list(gray_clean.report.scale_log)
        )
        corrupted = dataclasses.replace(gray_clean, report=report)
        violations = check_probation_liveness(corrupted)
        assert any("no accepting server left" in v.message for v in violations)


class TestInvariantRegistryCoverage:
    """Meta-test: the registry, the properties, and this corpus stay in sync."""

    def test_every_registered_invariant_has_a_deterministic_exercise(self):
        # Per-run invariants are all evaluated by every corpus replay (check_run);
        # derived invariants each have a pinned test above.  This guards renames.
        expected = {
            "query_conservation",
            "completion_causality",
            "round_separation",
            "budget_conservation",
            "ledger_partition_exactness",
            "outcome_conservation",
            "failure_billing",
            "retry_bounded",
            "qos_monotone_in_budget",
            "stage_precedence",
            "graph_conservation",
            "spot_disabled_identity",
            "hashseed_independence",
            "fault_determinism",
            "hedge_exactly_once",
            "gray_billing_partition",
            "probation_liveness",
        }
        assert set(ALL_INVARIANTS) == expected
