"""Tests for the spot-market model (repro.cloud.spot)."""

import math

import numpy as np
import pytest

from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG
from repro.cloud.spot import (
    MS_PER_HOUR,
    SpotMarket,
    SpotMarketPhase,
    SpotTypeMarket,
)


class TestSpotTypeMarket:
    def test_price_multiplier_complements_discount(self):
        market = SpotTypeMarket("g4dn.xlarge", discount=0.7)
        assert market.price_multiplier == pytest.approx(0.3)

    def test_discount_bounds_enforced(self):
        with pytest.raises(ValueError):
            SpotTypeMarket("g4dn.xlarge", discount=1.0)
        with pytest.raises(ValueError):
            SpotTypeMarket("g4dn.xlarge", discount=-0.1)
        with pytest.raises(ValueError):
            SpotTypeMarket("g4dn.xlarge", discount=0.5, preemptions_per_hour=-1.0)

    def test_constant_hazard_without_phases(self):
        market = SpotTypeMarket("r5n.large", discount=0.5, preemptions_per_hour=4.0)
        assert market.hazard_at(0.0) == 4.0
        assert market.hazard_at(1e9) == 4.0
        assert market.mean_hazard_per_hour() == 4.0

    def test_phases_modulate_hazard_cyclically(self):
        market = SpotTypeMarket(
            "r5n.large",
            discount=0.5,
            preemptions_per_hour=2.0,
            phases=(
                SpotMarketPhase(1000.0, hazard_multiplier=0.0),
                SpotMarketPhase(1000.0, hazard_multiplier=3.0),
            ),
        )
        assert market.hazard_at(500.0) == 0.0
        assert market.hazard_at(1500.0) == 6.0
        # cyclic: the cycle length is 2000 ms
        assert market.hazard_at(2500.0) == 0.0
        assert market.hazard_at(3500.0) == 6.0
        assert market.mean_hazard_per_hour() == pytest.approx(3.0)

    def test_expected_availability_closed_form(self):
        market = SpotTypeMarket("r5n.large", discount=0.5, preemptions_per_hour=1.0)
        # lam*T = 1 over a one-hour horizon
        assert market.expected_availability(MS_PER_HOUR) == pytest.approx(
            1.0 - math.exp(-1.0)
        )
        # zero hazard or zero horizon: fully available
        assert market.expected_availability(0.0) == 1.0
        assert SpotTypeMarket("x" , discount=0.5).expected_availability(1e9) == 1.0

    def test_expected_availability_decreases_with_horizon(self):
        market = SpotTypeMarket("r5n.large", discount=0.5, preemptions_per_hour=2.0)
        values = [market.expected_availability(h) for h in (1e4, 1e5, 1e6, 1e7)]
        assert values == sorted(values, reverse=True)
        assert all(0.0 < v <= 1.0 for v in values)


class TestSpotMarket:
    def make_market(self, **kw):
        return SpotMarket.uniform(
            DEFAULT_INSTANCE_CATALOG, discount=0.6, preemptions_per_hour=2.0, **kw
        )

    def test_uniform_offers_every_catalog_type(self):
        market = self.make_market()
        assert market.type_names == DEFAULT_INSTANCE_CATALOG.names
        for itype in DEFAULT_INSTANCE_CATALOG.types:
            assert market.offers(itype.name)
            assert market.spot_price_per_hour(itype) == pytest.approx(
                0.4 * itype.price_per_hour
            )

    def test_unknown_type_raises(self):
        market = SpotMarket([SpotTypeMarket("r5n.large", discount=0.5)])
        assert not market.offers("g4dn.xlarge")
        with pytest.raises(KeyError):
            market["g4dn.xlarge"]

    def test_mismatched_mapping_key_rejected(self):
        with pytest.raises(ValueError):
            SpotMarket({"g4dn.xlarge": SpotTypeMarket("r5n.large", discount=0.5)})

    def test_duplicate_offerings_rejected(self):
        offering = SpotTypeMarket("r5n.large", discount=0.5)
        with pytest.raises(ValueError):
            SpotMarket([offering, offering])

    def test_draw_is_deterministic_per_seed(self):
        market = self.make_market()
        a = [
            market.draw_preemption_delay_ms("r5n.large", 0.0, np.random.default_rng(3))
            for _ in range(1)
        ]
        b = [
            market.draw_preemption_delay_ms("r5n.large", 0.0, np.random.default_rng(3))
            for _ in range(1)
        ]
        assert a == b and a[0] > 0.0

    def test_zero_hazard_draws_nothing_and_consumes_no_randomness(self):
        market = SpotMarket.uniform(
            DEFAULT_INSTANCE_CATALOG, discount=0.6, preemptions_per_hour=0.0
        )
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        assert market.draw_preemption_delay_ms("r5n.large", 0.0, rng) is None
        assert rng.bit_generator.state == before

    def test_draw_mean_matches_hazard(self):
        market = self.make_market()  # 2 preemptions per hour
        rng = np.random.default_rng(7)
        draws = [
            market.draw_preemption_delay_ms("r5n.large", 0.0, rng) for _ in range(4000)
        ]
        assert np.mean(draws) == pytest.approx(MS_PER_HOUR / 2.0, rel=0.05)
