"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs, stable_choice


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=10)
        b = ensure_rng(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=10)
        b = ensure_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ensure_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(7, 3)
        draws = [c.integers(0, 10**9, size=5) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_for_int_seed(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        assert a == b

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(0)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2


class TestStableChoice:
    def test_single_choice_member(self):
        assert stable_choice(0, [1, 2, 3]) in (1, 2, 3)

    def test_multiple_choices(self):
        picks = stable_choice(0, ["a", "b"], size=4)
        assert len(picks) == 4
        assert set(picks) <= {"a", "b"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stable_choice(0, [])
