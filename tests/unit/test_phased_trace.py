"""Tests for trace-driven load phases (LoadPhase / PhasedTrace)."""

import numpy as np
import pytest

from repro.workload.arrivals import DeterministicArrivalProcess
from repro.workload.batch_sizes import FixedBatchSizes, GaussianBatchSizes
from repro.workload.generator import WorkloadSpec
from repro.workload.phases import LoadPhase, PhasedTrace


def det_spec(batch=32):
    return WorkloadSpec(
        batch_sizes=FixedBatchSizes(batch), arrivals=DeterministicArrivalProcess()
    )


class TestLoadPhase:
    def test_step_is_constant(self):
        p = LoadPhase.step(50.0, 1000.0)
        assert p.is_constant
        assert p.rate_at(0.0) == p.rate_at(999.0) == 50.0
        assert p.segments == 1

    def test_ramp_interpolates_linearly(self):
        p = LoadPhase.ramp(10.0, 30.0, 1000.0)
        assert p.rate_at(0.0) == 10.0
        assert p.rate_at(500.0) == pytest.approx(20.0)
        assert p.rate_at(1000.0) == pytest.approx(30.0)
        assert not p.is_constant

    def test_diurnal_swings_around_mean(self):
        p = LoadPhase.diurnal(20.0, 10.0, 1000.0)
        assert p.rate_at(250.0) == pytest.approx(30.0)  # quarter period: peak
        assert p.rate_at(750.0) == pytest.approx(10.0)  # three quarters: trough
        assert p.mean_rate_qps() == pytest.approx(20.0, rel=0.05)

    def test_spike_multiplies_baseline_inside_window(self):
        p = LoadPhase.spike(10.0, 1000.0, spike_factor=3.0)
        assert p.rate_at(100.0) == 10.0  # before the spike window [400, 600)
        assert p.rate_at(450.0) == 30.0
        assert p.rate_at(700.0) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadPhase.step(0.0, 1000.0)
        with pytest.raises(ValueError):
            LoadPhase.step(10.0, 0.0)
        with pytest.raises(ValueError):
            LoadPhase.diurnal(10.0, 10.0, 1000.0)  # amplitude >= mean
        with pytest.raises(ValueError):
            LoadPhase.spike(10.0, 1000.0, spike_factor=0.5)
        with pytest.raises(ValueError):
            LoadPhase.spike(10.0, 1000.0, spike_start_frac=0.9, spike_duration_frac=0.5)


class TestPhasedTrace:
    def test_requires_phases(self):
        with pytest.raises(ValueError):
            PhasedTrace([])

    def test_deterministic_process_counts(self):
        trace = PhasedTrace(
            [LoadPhase.step(10.0, 2000.0, label="a"), LoadPhase.step(20.0, 2000.0, label="b")],
            det_spec(),
        )
        res = trace.generate(rng=1)
        # evenly spaced arrivals strictly inside each half-open phase window
        assert len(res.queries) == 19 + 39
        assert res.boundaries == (19,)
        assert res.phase_starts_ms == (0.0, 2000.0, 4000.0)
        assert res.labels == ("a", "b")
        times = [q.arrival_time_ms for q in res.queries]
        assert times == sorted(times)
        assert all(q.query_id == i for i, q in enumerate(res.queries))

    def test_poisson_reproducible_per_seed(self):
        trace = PhasedTrace(
            [LoadPhase.step(60.0, 3000.0), LoadPhase.spike(60.0, 3000.0, spike_factor=3.0)]
        )
        a = trace.generate(rng=7)
        b = trace.generate(rng=7)
        c = trace.generate(rng=8)
        assert [q.arrival_time_ms for q in a.queries] == [
            q.arrival_time_ms for q in b.queries
        ]
        assert [q.arrival_time_ms for q in a.queries] != [
            q.arrival_time_ms for q in c.queries
        ]

    def test_step_doubles_observed_rate(self):
        trace = PhasedTrace(
            [LoadPhase.step(50.0, 10_000.0), LoadPhase.step(100.0, 10_000.0)]
        )
        res = trace.generate(rng=3)
        n0 = len(res.queries_in_phase(0))
        n1 = len(res.queries_in_phase(1))
        assert n1 / n0 == pytest.approx(2.0, rel=0.25)

    def test_ramp_increases_arrivals_over_segments(self):
        trace = PhasedTrace([LoadPhase.ramp(20.0, 200.0, 10_000.0, segments=10)])
        res = trace.generate(rng=5)
        first_half = sum(1 for q in res.queries if q.arrival_time_ms < 5000.0)
        second_half = len(res.queries) - first_half
        assert second_half > 1.5 * first_half

    def test_phase_batch_override(self):
        trace = PhasedTrace(
            [
                LoadPhase.step(10.0, 2000.0),
                LoadPhase.step(10.0, 2000.0, batch_sizes=FixedBatchSizes(7)),
            ],
            det_spec(batch=32),
        )
        res = trace.generate(rng=2)
        assert all(q.batch_size == 32 for q in res.queries_in_phase(0))
        assert all(q.batch_size == 7 for q in res.queries_in_phase(1))

    def test_rate_at_composes_phases(self):
        trace = PhasedTrace(
            [LoadPhase.step(10.0, 1000.0), LoadPhase.ramp(20.0, 40.0, 1000.0)]
        )
        assert trace.rate_at(500.0) == 10.0
        assert trace.rate_at(1500.0) == pytest.approx(30.0)
        assert trace.total_duration_ms == 2000.0

    def test_result_helpers(self):
        trace = PhasedTrace(
            [LoadPhase.step(10.0, 1000.0, label="x"), LoadPhase.step(10.0, 3000.0, label="y")],
            det_spec(),
        )
        res = trace.generate(rng=1)
        assert res.num_phases == 2
        assert res.duration_ms == 4000.0
        assert res.phase_window_ms(1) == (1000.0, 4000.0)
        assert res.phase_of_time(500.0) == 0
        assert res.phase_of_time(2500.0) == 1
        assert res.phase_of_time(9999.0) == 1  # clamped
        with pytest.raises(IndexError):
            res.phase_window_ms(2)

    def test_gaussian_batches_flow_through(self):
        trace = PhasedTrace(
            [LoadPhase.step(40.0, 2000.0)],
            WorkloadSpec(batch_sizes=GaussianBatchSizes(mean=100.0, std=10.0)),
        )
        res = trace.generate(rng=11)
        batches = np.array([q.batch_size for q in res.queries])
        assert batches.mean() == pytest.approx(100.0, rel=0.2)
