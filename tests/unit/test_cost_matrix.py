"""Tests for repro.core.cost_matrix (the L matrix, Eqs. 2-8)."""

import numpy as np
import pytest

from repro.cloud.instances import get_instance_type
from repro.cloud.profiles import LinearLatencyProfile
from repro.core.cost_matrix import build_cost_matrix
from repro.core.latency_model import OnlineLatencyEstimator, PerfectLatencyEstimator
from repro.sim.server import ServerInstance
from repro.workload.query import Query


@pytest.fixture
def servers():
    gpu = ServerInstance(0, get_instance_type("g4dn.xlarge"), LinearLatencyProfile(10.0, 0.05))
    cpu = ServerInstance(1, get_instance_type("r5n.large"), LinearLatencyProfile(20.0, 0.30))
    return [gpu, cpu]


@pytest.fixture
def estimator():
    est = OnlineLatencyEstimator()
    for batch in (1, 500, 1000):
        est.observe("g4dn.xlarge", batch, 10.0 + 0.05 * batch)
        est.observe("r5n.large", batch, 20.0 + 0.30 * batch)
    return est


COEFFS = {"g4dn.xlarge": 1.0, "r5n.large": 0.2}


class TestBuildCostMatrix:
    def test_usage_is_remaining_plus_latency(self, servers, estimator):
        servers[0].busy_until_ms = 40.0
        queries = [Query(0, 100, 0.0)]
        matrix = build_cost_matrix(queries, servers, estimator, 10.0, 100.0, COEFFS)
        # GPU: remaining 30 + latency 15 = 45; CPU: 0 + 50 = 50
        assert matrix.usage_ms[0, 0] == pytest.approx(45.0)
        assert matrix.usage_ms[0, 1] == pytest.approx(50.0)

    def test_weighting_by_coefficient(self, servers, estimator):
        queries = [Query(0, 100, 0.0)]
        matrix = build_cost_matrix(queries, servers, estimator, 0.0, 100.0, COEFFS)
        assert matrix.weighted[0, 1] == pytest.approx(0.2 * matrix.penalized_ms[0, 1])
        assert matrix.weighted[0, 0] == pytest.approx(matrix.penalized_ms[0, 0])

    def test_penalty_applied_to_infeasible_pairs(self, servers, estimator):
        queries = [Query(0, 900, 0.0)]  # CPU latency 290 > QoS 100
        matrix = build_cost_matrix(queries, servers, estimator, 0.0, 100.0, COEFFS)
        assert matrix.qos_feasible[0, 0]
        assert not matrix.qos_feasible[0, 1]
        assert matrix.penalized_ms[0, 1] == pytest.approx(10 * 100.0)
        assert matrix.penalized_ms[0, 0] == pytest.approx(matrix.usage_ms[0, 0])

    def test_waiting_time_tightens_constraint(self, servers, estimator):
        # A query that has waited 60 ms only has 38 ms of headroom left (xi = 0.98).
        query = Query(0, 500, 0.0)
        matrix = build_cost_matrix([query], servers, estimator, 60.0, 100.0, COEFFS)
        # GPU latency for 500 is 35 -> 35 + 60 = 95 <= 98 feasible
        assert matrix.qos_feasible[0, 0]
        # CPU latency 170 -> infeasible regardless
        assert not matrix.qos_feasible[0, 1]

    def test_headroom_factor(self, servers, estimator):
        # latency 60 on GPU for batch 1000; with qos 61 and headroom 0.98 -> 59.78 -> infeasible
        query = Query(0, 1000, 0.0)
        matrix = build_cost_matrix([query], servers, estimator, 0.0, 61.0, COEFFS)
        assert not matrix.qos_feasible[0, 0]
        relaxed = build_cost_matrix(
            [query], servers, estimator, 0.0, 61.0, COEFFS, qos_headroom=1.0
        )
        assert relaxed.qos_feasible[0, 0]

    def test_custom_penalty_factor(self, servers, estimator):
        queries = [Query(0, 900, 0.0)]
        matrix = build_cost_matrix(
            queries, servers, estimator, 0.0, 100.0, COEFFS, penalty_factor=3.0
        )
        assert matrix.penalized_ms[0, 1] == pytest.approx(300.0)

    def test_shape_and_ids(self, servers, estimator):
        queries = [Query(7, 10, 0.0), Query(8, 20, 0.0), Query(9, 30, 0.0)]
        matrix = build_cost_matrix(queries, servers, estimator, 0.0, 100.0, COEFFS)
        assert matrix.shape == (3, 2)
        assert matrix.query_ids == (7, 8, 9)
        assert matrix.server_ids == (0, 1)

    def test_empty_inputs(self, servers, estimator):
        matrix = build_cost_matrix([], servers, estimator, 0.0, 100.0, COEFFS)
        assert matrix.shape == (0, 2)
        assert matrix.feasible_fraction() == 0.0

    def test_feasible_fraction(self, servers, estimator):
        queries = [Query(0, 100, 0.0), Query(1, 900, 0.0)]
        matrix = build_cost_matrix(queries, servers, estimator, 0.0, 100.0, COEFFS)
        assert matrix.feasible_fraction() == pytest.approx(3 / 4)

    def test_missing_coefficient_rejected(self, servers, estimator):
        with pytest.raises(KeyError):
            build_cost_matrix(
                [Query(0, 10, 0.0)], servers, estimator, 0.0, 100.0, {"g4dn.xlarge": 1.0}
            )

    def test_non_positive_coefficient_rejected(self, servers, estimator):
        with pytest.raises(ValueError):
            build_cost_matrix(
                [Query(0, 10, 0.0)], servers, estimator, 0.0, 100.0,
                {"g4dn.xlarge": 1.0, "r5n.large": 0.0},
            )

    def test_invalid_qos_rejected(self, servers, estimator):
        with pytest.raises(ValueError):
            build_cost_matrix([Query(0, 10, 0.0)], servers, estimator, 0.0, 0.0, COEFFS)
