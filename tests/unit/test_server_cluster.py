"""Tests for repro.sim.server and repro.sim.cluster."""

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import get_instance_type
from repro.cloud.profiles import LinearLatencyProfile
from repro.sim.cluster import Cluster
from repro.sim.server import ServerInstance
from repro.sim.simulation import gaussian_service_noise
from repro.workload.query import Query


@pytest.fixture
def server():
    return ServerInstance(
        server_id=0,
        instance_type=get_instance_type("g4dn.xlarge"),
        profile=LinearLatencyProfile(10.0, 0.1),
    )


class TestServerInstance:
    def test_idle_initially(self, server):
        assert server.is_idle(0.0)
        assert server.remaining_busy_ms(0.0) == 0.0
        assert server.earliest_start_ms(5.0) == 5.0

    def test_dispatch_sets_busy(self, server):
        q = Query(0, 100, 0.0)
        start, completion, service = server.dispatch(q, 0.0)
        assert start == 0.0
        assert service == pytest.approx(20.0)
        assert completion == pytest.approx(20.0)
        assert not server.is_idle(10.0)
        assert server.is_idle(20.0)
        assert server.local_queue_depth == 1

    def test_dispatch_chains_on_busy_server(self, server):
        server.dispatch(Query(0, 100, 0.0), 0.0)
        start, completion, _ = server.dispatch(Query(1, 100, 1.0), 1.0)
        assert start == pytest.approx(20.0)
        assert completion == pytest.approx(40.0)
        assert server.local_queue_depth == 2

    def test_complete_one(self, server):
        server.dispatch(Query(0, 10, 0.0), 0.0)
        server.complete_one()
        assert server.local_queue_depth == 0
        with pytest.raises(RuntimeError):
            server.complete_one()

    def test_dispatch_overhead(self):
        server = ServerInstance(
            0, get_instance_type("r5n.large"), LinearLatencyProfile(10.0, 0.1),
            dispatch_overhead_ms=2.0,
        )
        start, completion, _ = server.dispatch(Query(0, 10, 0.0), 0.0)
        assert start == pytest.approx(2.0)
        assert completion == pytest.approx(13.0)

    def test_noise_requires_rng(self, server):
        noise = gaussian_service_noise(0.05)
        with pytest.raises(ValueError):
            server.true_service_latency_ms(Query(0, 10, 0.0), noise=noise)

    def test_noise_perturbs_latency(self, server):
        noise = gaussian_service_noise(0.2)
        rng = np.random.default_rng(0)
        values = {
            server.true_service_latency_ms(Query(0, 100, 0.0), noise=noise, rng=rng)
            for _ in range(5)
        }
        assert len(values) > 1
        assert all(v > 0 for v in values)

    def test_utilization_and_reset(self, server):
        server.dispatch(Query(0, 100, 0.0), 0.0)
        assert server.utilization(40.0) == pytest.approx(0.5)
        assert server.queries_served == 1
        server.reset()
        assert server.queries_served == 0
        assert server.is_idle(0.0)
        assert server.local_queue_depth == 0

    def test_utilization_zero_horizon(self, server):
        assert server.utilization(0.0) == 0.0


class TestGaussianServiceNoise:
    def test_invalid_std(self):
        with pytest.raises(ValueError):
            gaussian_service_noise(-0.1)

    def test_zero_noise_is_identity(self):
        noise = gaussian_service_noise(0.0)
        assert noise(10.0, np.random.default_rng(0)) == pytest.approx(10.0)


class TestCluster:
    def test_server_count_and_order(self, rm2_cluster, small_config):
        assert len(rm2_cluster) == small_config.total_instances
        names = rm2_cluster.type_names()
        assert names == ["g4dn.xlarge", "c5n.2xlarge", "r5n.large", "r5n.large"]

    def test_base_and_aux_partition(self, rm2_cluster):
        assert len(rm2_cluster.base_servers()) == 1
        assert len(rm2_cluster.auxiliary_servers()) == 3

    def test_idle_servers(self, rm2_cluster):
        assert len(rm2_cluster.idle_servers(0.0)) == 4
        rm2_cluster[0].dispatch(Query(0, 100, 0.0), 0.0)
        assert len(rm2_cluster.idle_servers(0.0)) == 3

    def test_earliest_idle_time(self, rm2_cluster):
        assert rm2_cluster.earliest_idle_time_ms() == 0.0
        for server in rm2_cluster:
            server.dispatch(Query(server.server_id, 100, 0.0), 0.0)
        assert rm2_cluster.earliest_idle_time_ms() > 0.0

    def test_servers_of_type(self, rm2_cluster):
        assert len(rm2_cluster.servers_of_type("r5n.large")) == 2
        assert rm2_cluster.servers_of_type("t3.xlarge") == []

    def test_utilization_by_type(self, rm2_cluster):
        rm2_cluster[0].dispatch(Query(0, 100, 0.0), 0.0)
        util = rm2_cluster.utilization_by_type(1000.0)
        assert util["g4dn.xlarge"] > 0
        assert util["r5n.large"] == 0.0
        assert "t3.xlarge" not in util

    def test_reset(self, rm2_cluster):
        rm2_cluster[0].dispatch(Query(0, 100, 0.0), 0.0)
        rm2_cluster.reset()
        assert all(s.is_idle(0.0) for s in rm2_cluster)

    def test_empty_config_rejected(self, rm2, profiles):
        with pytest.raises(ValueError):
            Cluster(HeterogeneousConfig.empty(), rm2, profiles)

    def test_getitem(self, rm2_cluster):
        assert rm2_cluster[0].server_id == 0
        assert rm2_cluster[3].server_id == 3
