"""Tests for repro.cloud.billing."""

import pytest

from repro.cloud.billing import BillingModel
from repro.cloud.config import HeterogeneousConfig


@pytest.fixture
def billing():
    return BillingModel()


class TestHomogeneousBaseline:
    def test_max_count_at_default_budget(self, billing):
        # 2.5 / 0.526 = 4.75 -> 4 instances, the paper's homogeneous baseline.
        assert billing.max_homogeneous_count("g4dn.xlarge", 2.5) == 4

    def test_best_homogeneous_config(self, billing):
        config = billing.best_homogeneous_config("g4dn.xlarge", 2.5)
        assert config.counts == (4, 0, 0, 0)

    def test_budget_scaling_factor(self, billing):
        scale = billing.homogeneous_budget_scaling("g4dn.xlarge", 2.5)
        assert scale == pytest.approx(2.5 / (4 * 0.526))
        assert scale > 1.0

    def test_scaling_when_nothing_fits(self, billing):
        assert billing.homogeneous_budget_scaling("g4dn.xlarge", 0.1) == 1.0

    def test_max_count_with_exact_multiple(self, billing):
        assert billing.max_homogeneous_count("r5n.large", 0.149 * 3) == 3


class TestCostReport:
    def test_report_fields(self, billing):
        config = HeterogeneousConfig((2, 0, 9, 0))
        report = billing.report(config, duration_hours=2.0, budget_per_hour=2.5)
        assert report.cost_per_hour == pytest.approx(config.cost_per_hour())
        assert report.total_cost == pytest.approx(2 * config.cost_per_hour())
        assert report.within_budget
        assert 0 < report.budget_utilization < 1

    def test_report_over_budget(self, billing):
        config = HeterogeneousConfig((6, 0, 0, 0))
        report = billing.report(config, budget_per_hour=2.5)
        assert not report.within_budget

    def test_report_without_budget(self, billing):
        report = billing.report(HeterogeneousConfig((1, 0, 0, 0)))
        assert report.within_budget
        assert report.budget_utilization is None

    def test_invalid_duration(self, billing):
        with pytest.raises(ValueError):
            billing.report(HeterogeneousConfig((1, 0, 0, 0)), duration_hours=0)


class TestBudgetSlack:
    def test_slack(self, billing):
        config = HeterogeneousConfig((4, 0, 0, 0))
        assert billing.budget_slack(config, 2.5) == pytest.approx(2.5 - 4 * 0.526)

    def test_affordable_additions(self, billing):
        config = HeterogeneousConfig((4, 0, 0, 0))
        additions = billing.affordable_additions(config, 2.5)
        # slack = 0.396: fits 2 r5n (0.298), 2 t3 (0.3328), 0 g4dn, 0 c5n
        assert additions["g4dn.xlarge"] == 0
        assert additions["c5n.2xlarge"] == 0
        assert additions["r5n.large"] == 2
        assert additions["t3.xlarge"] == 2

    def test_affordable_additions_over_budget(self, billing):
        config = HeterogeneousConfig((6, 0, 0, 0))
        assert all(v == 0 for v in billing.affordable_additions(config, 2.5).values())

    def test_cheapest_type(self, billing):
        assert billing.cheapest_type().name == "r5n.large"

    def test_describe_catalog(self, billing):
        assert len(billing.describe_catalog()) == 4
