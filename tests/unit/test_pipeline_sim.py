"""Unit tests for the pipeline runtime and serving loop.

Covers the coordinator's release semantics in isolation (synthetic
``QueryRecord``\\ s, no event loop), then the full
:class:`~repro.pipeline.simulation.PipelineServingSimulation`: release timing,
doomed-graph shedding, admission expansion to whole graphs, dead-letter unit
cancellation, per-graph metrics, and the no-graphs byte-identity guarantee
(locked down more broadly by the regression suite).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.pipeline import (
    CriticalPathKairosPolicy,
    PipelineServingSimulation,
    chain_graph,
    diamond_graph,
    realize_graphs,
)
from repro.pipeline.runtime import (
    GRAPH_DEAD,
    GRAPH_SHED,
    GRAPH_UNSERVED,
)
from repro.schedulers.kairos_policy import MultiModelKairosPolicy
from repro.sim.cluster import MultiModelCluster
from repro.sim.faults import AdmissionController, FaultInjector, FaultProfile, RetryPolicy
from repro.sim.metrics import QueryRecord
from repro.sim.multi_model import MultiModelServingSimulation
from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes
from repro.workload.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    interleave_model_streams,
)


def two_model_cluster(profiles, counts=(1, 1, 2, 0)):
    configs = {
        "RM2": HeterogeneousConfig(counts, profiles.catalog),
        "WND": HeterogeneousConfig(counts, profiles.catalog),
    }
    return MultiModelCluster(configs, profiles)


def two_model_stream(num_queries=40, rate_qps=120.0):
    # A moderate batch spread: the heavy tail of the production distribution can
    # legitimately strand one giant query in the defer-not-hopeless limbo the
    # base loop also has, which would only add noise to these structural tests.
    streams = {}
    for i, name in enumerate(("RM2", "WND")):
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=60, sigma=0.6),
            num_queries=num_queries,
            model_name=name,
        )
        streams[name] = WorkloadGenerator(spec).generate(rate_qps=rate_qps, rng=100 + i)
    return interleave_model_streams(streams)


def record_for(query, start_ms, completion_ms):
    return QueryRecord(
        query=query,
        server_id=0,
        server_type="p3.2xlarge",
        start_ms=start_ms,
        completion_ms=completion_ms,
        service_ms=completion_ms - start_ms,
    )


class TestRealizeGraphs:
    def test_dense_ids_and_release_arrivals(self):
        graphs = [
            diamond_graph(0, ("RM2", 8), ("RM2", 4), ("WND", 2), ("WND", 1), 500.0),
            chain_graph(1, [("RM2", 2), ("WND", 2)], 500.0, release_ms=50.0),
        ]
        sources, coordinator = realize_graphs(graphs, first_query_id=1000)
        assert coordinator.active
        ids = [
            coordinator.runtimes[g].queries[s.name].query_id
            for g in range(2)
            for s in graphs[g].stages
        ]
        assert ids == list(range(1000, 1006))
        # only sources join the offered stream, stamped with the release instant
        assert [q.query_id for q in sources] == [1000, 1004]
        assert sources[0].arrival_time_ms == pytest.approx(0.0)
        assert sources[1].arrival_time_ms == pytest.approx(50.0)

    def test_duplicate_query_ids_rejected(self):
        graphs = [chain_graph(0, [("RM2", 2)], 100.0)]
        _, coordinator = realize_graphs(graphs, first_query_id=0)
        with pytest.raises(ValueError, match="registered twice"):
            coordinator.register(coordinator.runtimes[0])


class TestCoordinatorReleases:
    def build(self):
        graph = diamond_graph(
            7, ("RM2", 8), ("RM2", 4), ("WND", 2), ("WND", 1), deadline_ms=400.0
        )
        _, coordinator = realize_graphs([graph], first_query_id=0)
        coordinator.bind_predictor(lambda model, batch: 50.0)
        return graph, coordinator, coordinator.runtimes[0]

    def test_source_completion_releases_branches_restamped(self):
        _, coordinator, runtime = self.build()
        released = coordinator.complete_stage(
            record_for(runtime.queries["src"], 5.0, 30.0), now_ms=30.0
        )
        assert sorted(q.query_id for q in released) == [1, 2]
        for query in released:
            assert query.arrival_time_ms == pytest.approx(30.0)
        # slack recomputed at the release: deadline_abs - now - remaining path
        # (branch 50 + sink 50 = 100 remaining under the constant predictor)
        assert runtime.slack_ms == pytest.approx(400.0 - 30.0 - 100.0)

    def test_sink_waits_for_all_parents(self):
        _, coordinator, runtime = self.build()
        coordinator.complete_stage(record_for(runtime.queries["src"], 0.0, 10.0), 10.0)
        released = coordinator.complete_stage(
            record_for(runtime.queries["b0"], 10.0, 40.0), 40.0
        )
        assert released == []  # b1 still unserved: the sink must not release
        released = coordinator.complete_stage(
            record_for(runtime.queries["b1"], 10.0, 55.0), 55.0
        )
        assert [q.query_id for q in released] == [3]

    def test_full_service_marks_graph_served(self):
        _, coordinator, runtime = self.build()
        for name, end in (("src", 10.0), ("b0", 30.0), ("b1", 40.0), ("sink", 90.0)):
            coordinator.complete_stage(
                record_for(runtime.queries[name], end - 5.0, end), end
            )
        assert runtime.outcome == "served"
        assert runtime.end_ms == pytest.approx(90.0)
        assert runtime.slack_ms == pytest.approx(400.0 - 90.0)
        outcome = coordinator.outcomes()[0]
        assert outcome.deadline_met
        assert outcome.e2e_latency_ms == pytest.approx(90.0)
        assert outcome.served_stages == 4
        assert outcome.realized_span_ms == pytest.approx(90.0 - 5.0)

    def test_terminal_graph_releases_nothing(self):
        _, coordinator, runtime = self.build()
        coordinator.mark_graph_shed(runtime, 20.0)
        released = coordinator.complete_stage(
            record_for(runtime.queries["src"], 0.0, 25.0), 25.0
        )
        assert released == []
        assert runtime.outcome == GRAPH_SHED

    def test_dead_dominates_shed(self):
        _, coordinator, runtime = self.build()
        coordinator.mark_graph_shed(runtime, 20.0)
        coordinator.mark_stage_dead(runtime.queries["src"].query_id, 30.0)
        assert runtime.outcome == GRAPH_DEAD
        outcome = coordinator.outcomes()[0]
        assert outcome.outcome == GRAPH_DEAD
        assert outcome.dead_stages == 1

    def test_doomed_requires_predictor_and_negative_slack(self):
        graph = chain_graph(0, [("RM2", 8)] * 3, deadline_ms=120.0)
        _, coordinator = realize_graphs([graph], first_query_id=0)
        assert coordinator.doomed(0.0) == []  # predictor unbound: no doom calls
        coordinator.bind_predictor(lambda model, batch: 50.0)
        assert coordinator.doomed(0.0) == [coordinator.runtimes[0]]  # 150 > 120
        coordinator.bind_predictor(lambda model, batch: 30.0)
        assert coordinator.doomed(0.0) == []  # 90 < 120
        assert coordinator.doomed(40.0) == [coordinator.runtimes[0]]

    def test_doomed_margin_requires_a_meaningful_projected_miss(self):
        graph = chain_graph(0, [("RM2", 8)] * 3, deadline_ms=120.0)
        _, coordinator = realize_graphs([graph], first_query_id=0)
        coordinator.bind_predictor(lambda model, batch: 30.0)
        # At now=40 the projected miss is 10 ms (90 remaining vs 80 left): doomed
        # bare, but inside a 25% * 120 = 30 ms margin the graph keeps running.
        assert coordinator.doomed(40.0) == [coordinator.runtimes[0]]
        assert coordinator.doomed(40.0, margin_frac=0.25) == []
        # A miss projected beyond the margin is doomed either way.
        assert coordinator.doomed(70.0, margin_frac=0.25) == [
            coordinator.runtimes[0]
        ]

    def test_priority_scale_bounds(self):
        _, coordinator, runtime = self.build()
        qid = runtime.queries["src"].query_id
        # Slack-rich early on: cpr(src) = 50 + max(100, 100) = 150, so
        # laxity = 400 - 150 = 250 -> scale 0.1 + 0.9 * (250 / 400) = 0.6625
        assert coordinator.priority_scale(qid, 0.0, 0.1) == pytest.approx(0.6625)
        # Blown slack floors at min_scale; far-future laxity caps at 1.0.
        assert coordinator.priority_scale(qid, 1e6, 0.1) == pytest.approx(0.1)
        sink_qid = runtime.queries["sink"].query_id
        for name, end in (("src", 1.0), ("b0", 2.0), ("b1", 3.0)):
            # released stages carry their release instant as arrival, so the
            # synthetic record must start at or after it
            coordinator.complete_stage(
                record_for(runtime.queries[name], end - 0.5, end), end
            )
        assert coordinator.priority_scale(sink_qid, 3.0, 0.1) == pytest.approx(
            min(1.0, 0.1 + 0.9 * ((400.0 - 3.0 - 50.0) / 400.0))
        )
        # Non-stage rows keep their nominal cost.
        assert coordinator.priority_scale(999_999, 0.0, 0.1) == pytest.approx(1.0)

    def test_priority_scale_urgency_window(self):
        _, coordinator, runtime = self.build()
        qid = runtime.queries["src"].query_id
        # laxity 250 of a 400 ms deadline: outside a half-deadline urgency window
        # the row keeps its nominal cost; the full-window default interpolates.
        assert coordinator.priority_scale(qid, 0.0, 0.1, urgency_frac=0.5) == 1.0
        # Inside the window the boost interpolates over the window, not the whole
        # deadline: at now=100, laxity = 400 - 100 - 150 = 150 of the 200 ms
        # window -> 0.1 + 0.9 * (150 / 200).
        assert coordinator.priority_scale(
            qid, 100.0, 0.1, urgency_frac=0.5
        ) == pytest.approx(0.1 + 0.9 * 0.75)
        # Blown slack floors at min_scale regardless of the window.
        assert coordinator.priority_scale(
            qid, 1e6, 0.1, urgency_frac=0.5
        ) == pytest.approx(0.1)

    def test_finalize_labels_leftovers_unserved(self):
        _, coordinator, runtime = self.build()
        coordinator.finalize(500.0)
        assert runtime.outcome == GRAPH_UNSERVED
        outcome = coordinator.outcomes()[0]
        assert outcome.outcome == GRAPH_UNSERVED
        assert not outcome.deadline_met
        assert outcome.unserved_stages == 1  # the released source
        assert outcome.unreleased_stages == 3


class TestPipelineSimulation:
    def test_graphs_complete_with_precedence(self, profiles):
        graphs = [
            chain_graph(0, [("RM2", 4), ("WND", 4), ("RM2", 2)], 4000.0),
            diamond_graph(
                1, ("WND", 8), ("RM2", 4), ("WND", 2), ("RM2", 1), 4000.0,
                release_ms=30.0,
            ),
        ]
        queries = two_model_stream(num_queries=25)
        sources, coordinator = realize_graphs(graphs, first_query_id=len(queries))
        policy = CriticalPathKairosPolicy(coordinator)
        sim = PipelineServingSimulation(
            two_model_cluster(profiles), policy, rng=np.random.default_rng(3)
        )
        report = sim.run(sorted(queries + sources, key=lambda q: (q.arrival_time_ms, q.query_id)))

        assert sim.deadline_attainment() == pytest.approx(1.0)
        assert all(o.outcome == "served" for o in sim.graph_outcomes)
        # conservation: releases widen the offered count
        assert report.total_queries == len(queries) + len(sources) + len(
            sim.released_queries
        )
        assert len(sim.released_queries) == 3 + 2  # chain tail + diamond non-sources

        # stage precedence: every stage starts at or after each parent's completion,
        # and released arrivals equal the releasing completion instant
        by_qid = {}
        for metrics in report.metrics.per_model().values():
            for record in metrics.records:
                by_qid[record.query.query_id] = record
        # conservation over the widened offered count (the base loop's defer
        # semantics may legitimately strand a plain query at quiescence)
        assert report.total_queries == len(by_qid) + report.unserved_queries
        for runtime in coordinator.runtimes:
            for stage in runtime.graph.stages:
                record = by_qid[runtime.queries[stage.name].query_id]
                for parent in stage.parents:
                    parent_record = by_qid[runtime.queries[parent].query_id]
                    assert record.start_ms >= parent_record.completion_ms - 1e-6
                if stage.parents:
                    release = max(
                        by_qid[runtime.queries[p].query_id].completion_ms
                        for p in stage.parents
                    )
                    assert record.query.arrival_time_ms == pytest.approx(release)

    def test_doomed_graph_is_shed_whole(self, profiles):
        # A deadline far below any service-time belief: doomed at first admission.
        graph = chain_graph(0, [("RM2", 8)] * 3, deadline_ms=0.001)
        queries = two_model_stream(num_queries=10)
        sources, coordinator = realize_graphs(graphs=[graph], first_query_id=len(queries))
        policy = CriticalPathKairosPolicy(coordinator)
        sim = PipelineServingSimulation(
            two_model_cluster(profiles), policy, rng=np.random.default_rng(3)
        )
        sim.run(sorted(queries + sources, key=lambda q: (q.arrival_time_ms, q.query_id)))
        outcome = sim.graph_outcomes[0]
        assert outcome.outcome == GRAPH_SHED
        assert sim.deadline_attainment() == 0.0
        reasons = {e.reason for e in sim.shed_queries}
        assert reasons == {"pipeline-doomed"}
        assert outcome.shed_stages == 1  # the queued source; successors never released
        assert outcome.unreleased_stages == 2

    def test_graph_aware_off_keeps_doomed_graph(self, profiles):
        graph = chain_graph(0, [("RM2", 8)] * 3, deadline_ms=0.001)
        queries = two_model_stream(num_queries=10)
        sources, coordinator = realize_graphs([graph], first_query_id=len(queries))
        policy = CriticalPathKairosPolicy(coordinator)
        sim = PipelineServingSimulation(
            two_model_cluster(profiles),
            policy,
            graph_aware=False,
            rng=np.random.default_rng(3),
        )
        sim.run(sorted(queries + sources, key=lambda q: (q.arrival_time_ms, q.query_id)))
        outcome = sim.graph_outcomes[0]
        # stage-local serving still runs the graph to completion — it just misses
        assert outcome.outcome == "served"
        assert not outcome.deadline_met
        assert sim.shed_queries == []

    def test_value_weighted_attainment(self, profiles):
        graphs = [
            chain_graph(0, [("RM2", 2)], 4000.0, value=3.0),
            chain_graph(1, [("RM2", 8)] * 3, 0.001, value=1.0),  # doomed
        ]
        queries = two_model_stream(num_queries=10)
        sources, coordinator = realize_graphs(graphs, first_query_id=len(queries))
        policy = CriticalPathKairosPolicy(coordinator)
        sim = PipelineServingSimulation(
            two_model_cluster(profiles), policy, rng=np.random.default_rng(3)
        )
        sim.run(sorted(queries + sources, key=lambda q: (q.arrival_time_ms, q.query_id)))
        assert sim.deadline_attainment() == pytest.approx(0.5)
        assert sim.value_deadline_attainment() == pytest.approx(0.75)

    def test_dead_letter_cancels_graph_as_unit(self, profiles):
        # Every type crashes almost immediately and there are no retries: the
        # first dispatched stage dead-letters and the rest of its graph is shed.
        graph = chain_graph(0, [("RM2", 4), ("RM2", 4), ("RM2", 2)], 60_000.0)
        sources, coordinator = realize_graphs([graph], first_query_id=0)
        faults = FaultInjector(
            [
                FaultProfile(type_name=name, failures_per_hour=1e7)
                for name in profiles.catalog.names
            ],
            auto_replace=True,
        )
        policy = CriticalPathKairosPolicy(coordinator)
        sim = PipelineServingSimulation(
            two_model_cluster(profiles),
            policy,
            faults=faults,
            fault_rng=np.random.default_rng(5),
            retry=RetryPolicy(max_attempts=1),
            rng=np.random.default_rng(3),
        )
        sim.run(sources)
        outcome = sim.graph_outcomes[0]
        assert outcome.outcome == GRAPH_DEAD
        assert len(sim.dead_letters) >= 1
        assert outcome.dead_stages >= 1
        # nothing lingers: every stage is served, shed, dead, or never released
        assert outcome.unserved_stages == 0
        for entry in sim.shed_queries:
            assert entry.reason in ("pipeline-dead", "pipeline-unit")

    def test_admission_overflow_sheds_whole_graphs(self, profiles):
        # Stage queries carry batch_size 1 so they are the first shed victims;
        # the victim expands to its whole graph under graph-aware admission.
        graph = diamond_graph(0, ("RM2", 1), ("RM2", 1), ("WND", 1), ("WND", 1), 60_000.0)
        queries = two_model_stream(num_queries=60, rate_qps=2000.0)
        sources, coordinator = realize_graphs([graph], first_query_id=len(queries))
        policy = CriticalPathKairosPolicy(coordinator)
        admission = AdmissionController(
            target_latency_ms=50.0,
            initial_concurrency=1,
            max_concurrency=1,
            shed_backlog_factor=1.0,
        )
        sim = PipelineServingSimulation(
            two_model_cluster(profiles),
            policy,
            admission=admission,
            rng=np.random.default_rng(3),
        )
        sim.run(sorted(queries + sources, key=lambda q: (q.arrival_time_ms, q.query_id)))
        outcome = sim.graph_outcomes[0]
        assert outcome.outcome == GRAPH_SHED
        assert "pipeline-overload" in {e.reason for e in sim.shed_queries}
        # standalone victims keep the default reason
        assert "overload" in {e.reason for e in sim.shed_queries}

    def test_unknown_stage_model_rejected(self, profiles):
        graph = chain_graph(0, [("GHOST", 4)], 100.0)
        sources, coordinator = realize_graphs([graph], first_query_id=0)
        sim = PipelineServingSimulation(
            two_model_cluster(profiles),
            CriticalPathKairosPolicy(coordinator),
            rng=np.random.default_rng(3),
        )
        with pytest.raises(KeyError, match="GHOST"):
            sim.run(sources)

    @pytest.mark.parametrize("sharded", [False, True])
    def test_no_graphs_matches_multi_model_loop(self, profiles, sharded):
        queries = two_model_stream(num_queries=60)

        base = MultiModelServingSimulation(
            two_model_cluster(profiles),
            MultiModelKairosPolicy(sharded=sharded),
            rng=np.random.default_rng(7),
            sharded_events=sharded,
        )
        pipe = PipelineServingSimulation(
            two_model_cluster(profiles),
            CriticalPathKairosPolicy(sharded=sharded),
            rng=np.random.default_rng(7),
            sharded_events=sharded,
        )
        a, b = base.run(queries), pipe.run(queries)

        def digest(report):
            records = []
            for metrics in report.metrics.per_model().values():
                for r in metrics.records:
                    records.append(
                        (
                            r.query.query_id,
                            r.server_id,
                            repr(r.start_ms),
                            repr(r.completion_ms),
                            repr(r.service_ms),
                        )
                    )
            records.sort()
            return (
                report.scheduling_rounds,
                report.dispatched_queries,
                repr(report.simulated_duration_ms),
                repr(report.total_cost()),
                tuple(records),
            )

        assert digest(a) == digest(b)
        assert pipe.graph_outcomes == []
        assert pipe.released_queries == []
