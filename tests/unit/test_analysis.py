"""Tests for the repro.analysis helpers (settings, comparisons, reporting, calibration)."""

import pytest

from repro.analysis.calibration import calibration_report, check_profile_assumptions
from repro.analysis.comparison import geometric_mean, normalized_throughput, relative_gain
from repro.analysis.reporting import FigureTable
from repro.analysis.schemes import SchemeRunner
from repro.analysis.settings import ExperimentSettings
from repro.cloud.config import HeterogeneousConfig
from repro.workload.batch_sizes import GaussianBatchSizes


class TestExperimentSettings:
    def test_defaults(self):
        settings = ExperimentSettings()
        assert settings.budget_per_hour == 2.5
        assert set(settings.models) == {"NCF", "RM2", "WND", "MT-WND", "DIEN"}
        assert settings.workload_spec().num_queries == settings.num_queries

    def test_fast_preset_is_smaller(self):
        fast = ExperimentSettings.fast()
        default = ExperimentSettings.default()
        assert fast.num_queries < default.num_queries
        assert fast.capacity_iterations <= default.capacity_iterations

    def test_scaled_override(self):
        settings = ExperimentSettings().scaled(budget_per_hour=10.0, num_queries=100)
        assert settings.budget_per_hour == 10.0
        assert settings.num_queries == 100

    def test_rng_offsets_differ(self):
        settings = ExperimentSettings()
        a = settings.rng(0).integers(0, 10**9)
        b = settings.rng(1).integers(0, 10**9)
        assert a != b

    def test_monitored_batches_deterministic(self):
        settings = ExperimentSettings(monitor_samples=500)
        assert list(settings.monitored_batches()) == list(settings.monitored_batches())

    def test_custom_distribution(self):
        settings = ExperimentSettings(batch_distribution=GaussianBatchSizes(mean=300, std=50))
        assert isinstance(settings.distribution(), GaussianBatchSizes)

    def test_model_and_billing_access(self):
        settings = ExperimentSettings()
        assert settings.model("RM2").qos_ms == 350.0
        assert settings.billing().max_homogeneous_count("g4dn.xlarge", 2.5) == 4


class TestComparisonHelpers:
    def test_normalized_throughput(self):
        normalized = normalized_throughput({"a": 10.0, "b": 20.0}, "a")
        assert normalized == {"a": 1.0, "b": 2.0}

    def test_normalized_missing_reference(self):
        with pytest.raises(KeyError):
            normalized_throughput({"a": 1.0}, "z")

    def test_normalized_zero_reference(self):
        with pytest.raises(ValueError):
            normalized_throughput({"a": 0.0, "b": 1.0}, "a")

    def test_relative_gain(self):
        assert relative_gain(120.0, 100.0) == pytest.approx(20.0)
        assert relative_gain(80.0, 100.0) == pytest.approx(-20.0)
        with pytest.raises(ValueError):
            relative_gain(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestFigureTable:
    def make_table(self):
        return FigureTable(
            figure_id="figX",
            title="demo",
            headers=["model", "qps"],
            rows=[["RM2", 10.0], ["NCF", 20.0]],
            notes=["a note"],
        )

    def test_format_contains_everything(self):
        text = self.make_table().format()
        assert "figX" in text and "RM2" in text and "note: a note" in text

    def test_save(self, tmp_path):
        path = self.make_table().save(tmp_path / "sub" / "fig.txt")
        assert path.exists()
        assert "demo" in path.read_text()

    def test_column_and_row_map(self):
        table = self.make_table()
        assert table.column("qps") == [10.0, 20.0]
        assert table.row_map("model", "qps") == {"RM2": 10.0, "NCF": 20.0}
        with pytest.raises(KeyError):
            table.column("nope")


class TestCalibration:
    def test_profile_assumptions_hold(self):
        reports = check_profile_assumptions()
        assert len(reports) == 5
        for report in reports:
            assert report.ok, report

    def test_calibration_report_rows(self):
        table = calibration_report()
        assert len(table.rows) == 20  # 5 models x 4 types
        assert "qos_cutoff_batch" in table.headers


class TestSchemeRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return SchemeRunner(ExperimentSettings.fast().scaled(num_queries=200), "RM2")

    def test_oracle_throughput_positive(self, runner):
        assert runner.oracle_throughput(HeterogeneousConfig((2, 0, 9, 0))) > 0

    def test_policy_factories(self, runner):
        for scheme in ("RIBBON", "DRS", "CLKWRK", "KAIROS"):
            factory = runner.policy_factory(scheme)
            assert factory() is not factory()

    def test_unknown_scheme_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.policy_factory("MAGIC")
        with pytest.raises(ValueError):
            runner.config_evaluator("magic")

    def test_orcl_measure_detailed_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.measure_detailed(HeterogeneousConfig((1, 0, 0, 0)), "ORCL")

    def test_tuned_drs_threshold_bounds(self, runner):
        threshold = runner.tuned_drs_threshold(HeterogeneousConfig((2, 0, 9, 0)))
        assert 1 <= threshold <= 1000
        homog = runner.tuned_drs_threshold(HeterogeneousConfig((4, 0, 0, 0)))
        assert homog == 1000

    def test_homogeneous_baseline_fields(self, runner):
        baseline = runner.homogeneous_baseline()
        assert baseline["config"].counts == (4, 0, 0, 0)
        assert baseline["scale"] > 1.0
        assert baseline["scaled_qps"] >= baseline["raw_qps"]

    def test_evaluator_backends(self, runner):
        oracle_eval = runner.config_evaluator("oracle")
        assert oracle_eval(HeterogeneousConfig((1, 0, 2, 0))) > 0
