"""Tests for repro.sim.sharding: the sharded event/pending queues and shard clocks.

The load-bearing property is *merge exactness*: whatever the partition, the sharded
queue's pop order — and its batch splits under the anchor rule — must be
byte-identical to the single-heap :class:`~repro.sim.engine.EventQueue`.  The
corpus-wide proof lives in the regression suite; these tests pin the mechanism.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import TIME_EPSILON_MS, EventQueue
from repro.sim.events import Event, EventKind, ScaleRequest
from repro.sim.sharding import (
    ShardClock,
    ShardedEventQueue,
    ShardedPendingQueue,
    shard_key_by_kind,
    shard_key_by_model,
)
from repro.workload.query import Query

ALL_KINDS = list(EventKind)


def _drain_pops(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


def _drain_batches(queue):
    out = []
    while queue:
        out.append(queue.pop_batch())
    return out


class TestShardKeys:
    def test_model_key_uses_payload_model(self):
        q = Query(0, 8, 1.0, model_name="RM2")
        assert shard_key_by_model(Event(1.0, EventKind.QUERY_ARRIVAL, q)) == (
            "model",
            "RM2",
        )
        req = ScaleRequest("g4dn.xlarge", 1, model_name="WND")
        assert shard_key_by_model(Event(2.0, EventKind.SCALE_UP, req)) == (
            "model",
            "WND",
        )

    def test_model_key_falls_back_to_kind(self):
        e = Event(1.0, EventKind.INSTANCE_FAILED, (3, "g4dn.xlarge"))
        assert shard_key_by_model(e) == ("kind", int(EventKind.INSTANCE_FAILED))

    def test_kind_key_classes(self):
        assert shard_key_by_kind(Event(1.0, EventKind.SERVICE_COMPLETION)) == "completion"
        assert shard_key_by_kind(Event(1.0, EventKind.QUERY_ARRIVAL)) == "arrival"
        assert shard_key_by_kind(Event(1.0, EventKind.SCALE_UP, None)) == "control"


class TestMergeExactness:
    """Pop order and batch splits must match the single heap, for any partition."""

    @settings(max_examples=150, deadline=None)
    @given(
        items=st.lists(
            st.tuples(
                st.sampled_from([0.0, 1.0, 1.0 + 0.5e-9, 2.5, 7.0]),
                st.sampled_from(ALL_KINDS),
            ),
            min_size=1,
            max_size=40,
        ),
        n_shards=st.integers(min_value=1, max_value=5),
    )
    def test_pop_order_matches_single_heap_for_any_partition(self, items, n_shards):
        # shard arbitrarily (round-robin over payload) — correctness must not care
        sharded = ShardedEventQueue(lambda e: e.payload % n_shards)
        plain = EventQueue()
        for seq, (t, kind) in enumerate(items):
            sharded.push(Event(t, kind, payload=seq))
            plain.push(Event(t, kind, payload=seq))
        assert [(e.time_ms, e.kind, e.payload) for e in _drain_pops(sharded)] == [
            (e.time_ms, e.kind, e.payload) for e in _drain_pops(plain)
        ]

    @settings(max_examples=150, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        n_shards=st.integers(min_value=1, max_value=5),
    )
    def test_batch_splits_match_single_heap_for_any_partition(self, times, n_shards):
        sharded = ShardedEventQueue(lambda e: e.payload % n_shards)
        plain = EventQueue()
        for i, t in enumerate(times):
            sharded.push(Event(t, EventKind.CONTROL, payload=i))
            plain.push(Event(t, EventKind.CONTROL, payload=i))
        assert [
            [(e.time_ms, e.payload) for e in batch] for batch in _drain_batches(sharded)
        ] == [[(e.time_ms, e.payload) for e in batch] for batch in _drain_batches(plain)]

    def test_global_anchor_spans_shards(self):
        # chain with 0.6-eps gaps alternating across two shards: a per-shard anchor
        # would see 1.2-eps gaps inside each shard and split differently — the
        # global anchor must reproduce the single-heap partition [[0,1],[2,3],[4]].
        times = [5.0 + i * 0.6e-9 for i in range(5)]
        sharded = ShardedEventQueue(lambda e: e.payload % 2)
        for i, t in enumerate(times):
            sharded.push(Event(t, EventKind.CONTROL, payload=i))
        assert [[e.payload for e in b] for b in _drain_batches(sharded)] == [
            [0, 1],
            [2, 3],
            [4],
        ]

    def test_explicit_anchor_matches_plain_queue(self):
        times = [5.0 + i * 0.6e-9 for i in range(5)]
        sharded = ShardedEventQueue(lambda e: e.payload % 2)
        plain = EventQueue()
        for i, t in enumerate(times):
            sharded.push(Event(t, EventKind.CONTROL, payload=i))
            plain.push(Event(t, EventKind.CONTROL, payload=i))
        anchor = times[2]
        assert [e.payload for e in sharded.pop_batch(anchor)] == [
            e.payload for e in plain.pop_batch(anchor)
        ]


class TestEventQueueApi:
    """The drop-in surface the serving loops rely on."""

    def fill(self):
        q = ShardedEventQueue(shard_key_by_kind)
        q.push(Event(3.0, EventKind.QUERY_ARRIVAL, "a"))
        q.push(Event(1.0, EventKind.SERVICE_COMPLETION, "c"))
        q.push(Event(2.0, EventKind.SCALE_UP, None))
        return q

    def test_len_bool_peek(self):
        q = self.fill()
        assert len(q) == 3 and q
        assert q.peek().payload == "c"
        assert q.peek_time() == 1.0
        assert q.num_shards == 3

    def test_empty_behaviour(self):
        q = ShardedEventQueue()
        assert not q and len(q) == 0
        assert q.peek_time() is None
        assert q.pop_batch() == []
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek()

    def test_pop_until(self):
        q = ShardedEventQueue(lambda e: e.payload % 2)
        q.push_all(Event(t, EventKind.CONTROL, t) for t in (1.0, 2.0, 3.0, 4.0))
        assert [e.payload for e in q.pop_until(2.5)] == [1.0, 2.0]
        assert len(q) == 2

    def test_only_kinds(self):
        q = self.fill()
        assert not q.only_kinds({EventKind.QUERY_ARRIVAL})
        assert q.only_kinds(
            {EventKind.QUERY_ARRIVAL, EventKind.SERVICE_COMPLETION, EventKind.SCALE_UP}
        )
        assert not q.only_kinds(set())  # empty kinds always answers False
        assert not ShardedEventQueue().only_kinds({EventKind.CONTROL})

    def test_discard_preserves_survivor_order(self):
        q = ShardedEventQueue(lambda e: e.payload % 3)
        q.push_all(Event(float(i % 4), EventKind.CONTROL, i) for i in range(12))
        removed = q.discard(lambda e: e.payload % 2 == 0)
        assert removed == 6
        drained = [e.payload for e in _drain_pops(q)]
        assert sorted(drained) == [1, 3, 5, 7, 9, 11]
        times = [float(p % 4) for p in drained]
        assert times == sorted(times)

    def test_clear(self):
        q = self.fill()
        q.clear()
        assert len(q) == 0 and q.pop_batch() == []


class TestShardClock:
    def test_global_clock_is_max_of_shards(self):
        clock = ShardClock()
        clock.advance_shard("a", 5.0)
        clock.advance_shard("b", 3.0)
        assert clock.now_ms == 5.0
        assert clock.shard_now_ms("a") == 5.0
        assert clock.shard_now_ms("b") == 3.0
        assert clock.shard_now_ms("never-seen") == 0.0

    def test_shard_clocks_are_monotone(self):
        clock = ShardClock()
        clock.advance_shard("a", 5.0)
        with pytest.raises(ValueError):
            clock.advance_shard("a", 2.0)

    def test_queue_tracks_participating_shards(self):
        q = ShardedEventQueue(lambda e: e.payload)
        q.push(Event(1.0, EventKind.CONTROL, "x"))
        q.push(Event(1.0, EventKind.CONTROL, "y"))
        q.push(Event(9.0, EventKind.CONTROL, "z"))
        q.pop_batch()
        assert q.clock.now_ms == 1.0
        assert q.clock.shard_now_ms("x") == q.clock.shard_now_ms("y") == 1.0
        assert q.clock.shard_now_ms("z") == 0.0  # did not participate in the round


class TestShardedPendingQueue:
    def _q(self, qid, model=None, t=None):
        return Query(qid, 8, float(qid) if t is None else t, model_name=model)

    def test_merged_snapshot_equals_append_order(self):
        pending = ShardedPendingQueue()
        order = []
        for i, model in enumerate(["RM2", "WND", None, "RM2", "WND", None, "RM2"]):
            q = self._q(i, model)
            pending.append(q)
            order.append(q)
        assert pending.snapshot() == order
        assert list(pending) == order
        assert pending[2] is order[2]
        assert pending.num_shards == 3

    def test_remove_keeps_merge_order(self):
        pending = ShardedPendingQueue()
        for i, model in enumerate(["RM2", "WND", "RM2", None, "WND"]):
            pending.append(self._q(i, model))
        pending.remove(1)
        pending.remove(2)
        assert [q.query_id for q in pending.snapshot()] == [0, 3, 4]
        assert len(pending) == 3
        assert 1 not in pending and 0 in pending

    def test_duplicate_and_missing_ids_rejected(self):
        pending = ShardedPendingQueue()
        pending.append(self._q(0, "RM2"))
        with pytest.raises(ValueError):
            pending.append(self._q(0, "WND"))
        with pytest.raises(KeyError):
            pending.remove(99)

    def test_version_bumps_on_change(self):
        pending = ShardedPendingQueue()
        v0 = pending.version
        pending.append(self._q(0, "RM2"))
        v1 = pending.version
        pending.remove(0)
        assert v0 < v1 < pending.version

    def test_snapshot_arrays_parallel_snapshot(self):
        pending = ShardedPendingQueue()
        for i, model in enumerate(["RM2", "WND", "RM2"]):
            pending.append(Query(i, 10 + i, 2.0 * i, model_name=model))
        snapshot, batches, arrivals = pending.snapshot_arrays()
        assert [q.query_id for q in snapshot] == [0, 1, 2]
        assert list(batches) == [10, 11, 12]
        assert list(arrivals) == [0.0, 2.0, 4.0]

    def test_per_model_shard_views(self):
        pending = ShardedPendingQueue()
        for i, model in enumerate(["RM2", "WND", "RM2"]):
            pending.append(self._q(i, model))
        assert [q.query_id for q in pending.shard("RM2").snapshot()] == [0, 2]
        assert pending.shard("DIEN") is None
