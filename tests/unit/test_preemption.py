"""Tests for preemption semantics: the warning -> drain -> re-queue -> re-provision
lifecycle of spot instances in :mod:`repro.sim.preemption`."""

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.spot import MARKET_ON_DEMAND, MARKET_SPOT, SpotMarket
from repro.core.controller import ElasticKairosController
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.cluster import Cluster
from repro.sim.elasticity import scale_down_priority
from repro.sim.events import Event, EventKind, PreemptionBurst, ScaleRequest
from repro.sim.preemption import (
    PreemptibleElasticSimulation,
    initial_spot_server_ids,
    simulate_preemptible_serving,
)
from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

SEED = 20230801


def _queries(num=150, rate=40.0, median=80, seed=SEED):
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=median, sigma=1.1),
        num_queries=num,
    )
    return WorkloadGenerator(spec).generate(rate_qps=rate, rng=seed)


def _market(catalog, *, hazard=0.0, warning_ms=300.0, discount=0.65):
    return SpotMarket.uniform(
        catalog, discount=discount, preemptions_per_hour=hazard, warning_ms=warning_ms
    )


def _kinds(report):
    return [e.kind for e in report.scale_log]


class TestInitialSpotServerIds:
    def test_last_servers_of_each_type_block(self, profiles, rm2, catalog):
        cluster = Cluster(HeterogeneousConfig((2, 1, 3, 0), catalog), rm2, profiles)
        spot = HeterogeneousConfig((1, 0, 2, 0), catalog)
        ids = initial_spot_server_ids(cluster, spot)
        # ids 0-1 are g4dn, 2 is c5n, 3-5 are r5n: spot gets the tail of each block
        assert ids == [1, 4, 5]

    def test_overfull_spot_config_rejected(self, profiles, rm2, catalog):
        cluster = Cluster(HeterogeneousConfig((1, 0, 1, 0), catalog), rm2, profiles)
        with pytest.raises(ValueError):
            initial_spot_server_ids(cluster, HeterogeneousConfig((0, 0, 2, 0), catalog))


class TestConstruction:
    def test_spot_ids_require_a_market(self, rm2_cluster):
        with pytest.raises(ValueError, match="SpotMarket"):
            PreemptibleElasticSimulation(
                rm2_cluster, KairosPolicy(), spot_server_ids=[0]
            )

    def test_unknown_spot_ids_rejected(self, small_config, rm2, profiles, catalog):
        cluster = Cluster(small_config, rm2, profiles)
        with pytest.raises(ValueError, match="not in the cluster"):
            PreemptibleElasticSimulation(
                cluster,
                KairosPolicy(),
                market=_market(catalog),
                spot_server_ids=[99],
            )

    def test_spot_id_of_unoffered_type_rejected(self, small_config, rm2, profiles, catalog):
        cluster = Cluster(small_config, rm2, profiles)
        market = SpotMarket(
            [m for m in _market(catalog) if m.type_name == "r5n.large"],
            warning_ms=100.0,
        )
        with pytest.raises(KeyError):
            # server 0 is the g4dn base instance, which this market does not offer
            PreemptibleElasticSimulation(
                cluster, KairosPolicy(), market=market, spot_server_ids=[0]
            )

    def test_scripted_burst_requires_market(self, rm2_cluster):
        events = [Event(10.0, EventKind.PREEMPTION_WARNING, PreemptionBurst(count=1))]
        with pytest.raises(ValueError, match="SpotMarket"):
            PreemptibleElasticSimulation(
                rm2_cluster, KairosPolicy(), scripted_events=events
            )

    def test_scripted_burst_payload_validated(self, rm2_cluster, catalog):
        events = [Event(10.0, EventKind.PREEMPTION_WARNING, ("oops", 1))]
        with pytest.raises(ValueError, match="PreemptionBurst"):
            PreemptibleElasticSimulation(
                rm2_cluster,
                KairosPolicy(),
                market=_market(catalog),
                scripted_events=events,
            )


class TestPreemptionLifecycle:
    """The full warning -> drain -> kill -> re-queue -> re-provision chain."""

    def _burst_run(self, profiles, rm2, catalog, *, warning_ms, rate=120.0, count=1):
        """One g4dn on-demand + one r5n spot, burst-preempted mid-run under load."""
        cluster = Cluster(HeterogeneousConfig((1, 0, 1, 0), catalog), rm2, profiles)
        queries = _queries(num=120, rate=rate, median=30)
        events = [Event(500.0, EventKind.PREEMPTION_WARNING, PreemptionBurst(count=count))]
        sim = PreemptibleElasticSimulation(
            cluster,
            KairosPolicy(),
            market=_market(catalog, warning_ms=warning_ms),
            spot_server_ids=[1],
            scripted_events=events,
            startup_delay_ms=200.0,
            rng=np.random.default_rng(SEED),
        )
        return sim.run(queries), queries

    def test_busy_victim_is_killed_and_work_requeued(self, profiles, rm2, catalog):
        # warning far too short to drain a loaded queue: the kill re-queues work
        report, queries = self._burst_run(profiles, rm2, catalog, warning_ms=1.0)
        kinds = _kinds(report)
        assert "preemption_warning" in kinds
        assert "preempted" in kinds
        assert "requeue" in kinds
        # every query still completes exactly once, on the surviving capacity
        assert report.completed_all
        assert sorted(r.query.query_id for r in report.metrics.records) == sorted(
            q.query_id for q in queries
        )
        # the kill removed the instance: the victim is gone from the cluster
        assert all(s.server_id != 1 for s in report.cluster)

    def test_requeued_queries_pay_the_preemption_in_latency(self, profiles, rm2, catalog):
        report, _ = self._burst_run(profiles, rm2, catalog, warning_ms=1.0)
        requeued = [e for e in report.scale_log if e.kind == "requeue"]
        assert requeued and requeued[0].count >= 1
        # re-queued work re-enters the central queue at the kill instant; whoever
        # serves it starts no earlier than that
        kill_ms = next(e.time_ms for e in report.scale_log if e.kind == "preempted")
        victims = [
            r for r in report.metrics.records if r.start_ms >= kill_ms and r.query.arrival_time_ms < kill_ms
        ]
        assert victims  # some query actually waited through the preemption

    def test_billing_stops_at_the_kill(self, profiles, rm2, catalog):
        report, _ = self._burst_run(profiles, rm2, catalog, warning_ms=1.0)
        kill_ms = next(e.time_ms for e in report.scale_log if e.kind == "preempted")
        spot_initial = [
            iv for iv in report.ledger.intervals
            if iv.market == MARKET_SPOT and iv.start_ms == 0.0
        ]
        assert len(spot_initial) == 1
        assert spot_initial[0].end_ms == pytest.approx(kill_ms)
        assert spot_initial[0].price_multiplier == pytest.approx(0.35)

    def test_reactive_reprovision_replaces_the_victim(self, profiles, rm2, catalog):
        report, _ = self._burst_run(profiles, rm2, catalog, warning_ms=1.0)
        ups = [e for e in report.scale_log if e.kind == "scale_up"]
        assert ups and ups[0].reason == "reprovision"
        assert ups[0].time_ms == 500.0  # issued at the warning, not the kill
        ready = [e for e in report.scale_log if e.kind == "instance_ready"]
        assert ready and ready[0].time_ms == pytest.approx(700.0)  # startup delay 200ms
        # the replacement is billed as spot from the request instant
        replacement = [
            iv for iv in report.ledger.intervals
            if iv.market == MARKET_SPOT and iv.start_ms == 500.0
        ]
        assert len(replacement) == 1

    def test_idle_victim_decommissions_without_requeue(self, profiles, rm2, catalog):
        # a long warning lets the victim drain: the kill finds it already gone
        report, _ = self._burst_run(profiles, rm2, catalog, warning_ms=50_000.0, rate=10.0)
        kinds = _kinds(report)
        assert "preemption_warning" in kinds
        assert "requeue" not in kinds
        assert "preempted" not in kinds or "decommission" in kinds
        assert report.completed_all

    def test_no_reprovision_when_auto_disabled(self, profiles, rm2, catalog):
        cluster = Cluster(HeterogeneousConfig((1, 0, 1, 0), catalog), rm2, profiles)
        events = [Event(500.0, EventKind.PREEMPTION_WARNING, PreemptionBurst(count=1))]
        report = simulate_preemptible_serving(
            cluster,
            KairosPolicy(),
            _queries(num=80, rate=60.0, median=30),
            market=_market(catalog, warning_ms=1.0),
            spot_server_ids=[1],
            scripted_events=events,
            auto_reprovision=False,
            rng=np.random.default_rng(SEED),
        )
        assert "scale_up" not in _kinds(report)
        assert report.completed_all  # the on-demand base absorbs everything


class TestBurstVictimOrdering:
    def test_burst_uses_drain_cost_efficiency_order(self, profiles, rm2, catalog):
        # spot portion spans two types; a partial burst must reclaim the type
        # scale_down_priority ranks first
        cluster = Cluster(HeterogeneousConfig((1, 1, 1, 0), catalog), rm2, profiles)
        events = [Event(200.0, EventKind.PREEMPTION_WARNING, PreemptionBurst(count=1))]
        report = simulate_preemptible_serving(
            cluster,
            KairosPolicy(),
            _queries(num=60, rate=30.0),
            market=_market(catalog, warning_ms=1.0),
            spot_server_ids=[1, 2],  # the c5n and the r5n
            scripted_events=events,
            rng=np.random.default_rng(SEED),
        )
        expected_first = scale_down_priority(
            profiles, rm2, ["c5n.2xlarge", "r5n.large"]
        )[0]
        warned = [e for e in report.scale_log if e.kind == "preemption_warning"]
        assert warned[0].type_name == expected_first

    def test_burst_restricted_to_one_type(self, profiles, rm2, catalog):
        cluster = Cluster(HeterogeneousConfig((1, 1, 1, 0), catalog), rm2, profiles)
        events = [
            Event(
                200.0,
                EventKind.PREEMPTION_WARNING,
                PreemptionBurst(count=5, type_name="r5n.large"),
            )
        ]
        report = simulate_preemptible_serving(
            cluster,
            KairosPolicy(),
            _queries(num=60, rate=30.0),
            market=_market(catalog, warning_ms=1.0),
            spot_server_ids=[1, 2],
            scripted_events=events,
            rng=np.random.default_rng(SEED),
        )
        warned = [e for e in report.scale_log if e.kind == "preemption_warning"]
        assert [e.type_name for e in warned] == ["r5n.large"]


class TestNaturalPreemptions:
    def test_hazard_drives_preemptions_and_run_terminates(self, profiles, rm2, catalog):
        cluster = Cluster(HeterogeneousConfig((1, 0, 2, 0), catalog), rm2, profiles)
        # ~ one preemption per spot instance per second of trace time
        report = simulate_preemptible_serving(
            cluster,
            KairosPolicy(),
            _queries(num=150, rate=50.0, median=30),
            market=_market(catalog, hazard=3_600.0, warning_ms=20.0),
            spot_server_ids=[1, 2],
            startup_delay_ms=100.0,
            rng=np.random.default_rng(SEED),
            market_rng=np.random.default_rng(SEED + 5),
        )
        kinds = _kinds(report)
        assert kinds.count("preemption_warning") >= 2
        assert "scale_up" in kinds  # replacements kept coming while work remained
        assert report.completed_all

    def test_pending_timers_do_not_extend_the_billing_horizon(
        self, profiles, rm2, catalog
    ):
        """A reclaim timer drawn far beyond the trace must not keep the run (and
        every instance's billing) alive after the last query completes."""
        cluster = Cluster(HeterogeneousConfig((1, 0, 2, 0), catalog), rm2, profiles)
        baseline = simulate_preemptible_serving(
            Cluster(HeterogeneousConfig((1, 0, 2, 0), catalog), rm2, profiles),
            KairosPolicy(),
            _queries(num=150, rate=60.0, median=30),
            rng=np.random.default_rng(SEED),
        )
        spotted = simulate_preemptible_serving(
            cluster,
            KairosPolicy(),
            _queries(num=150, rate=60.0, median=30),
            market=_market(catalog, hazard=120.0, warning_ms=20.0),
            spot_server_ids=[1, 2],
            rng=np.random.default_rng(SEED),
            market_rng=np.random.default_rng(SEED + 5),
        )
        # hazard 120/hr over a ~2.5 s trace: timers land far beyond the makespan
        assert spotted.billing_horizon_ms <= baseline.billing_horizon_ms + 1e-6
        # discounted spot capacity can only make the same window cheaper
        assert spotted.total_cost() < baseline.total_cost()

    def test_a_server_is_never_warned_twice(self, profiles, rm2, catalog):
        """Overlapping reclaim sources (two bursts, or a burst racing a natural
        timer) must produce one warning, one kill, one log entry per instance."""
        cluster = Cluster(HeterogeneousConfig((1, 0, 1, 0), catalog), rm2, profiles)
        events = [
            Event(400.0, EventKind.PREEMPTION_WARNING, PreemptionBurst(count=1)),
            Event(450.0, EventKind.PREEMPTION_WARNING, PreemptionBurst(count=1)),
        ]
        report = simulate_preemptible_serving(
            cluster,
            KairosPolicy(),
            _queries(num=100, rate=80.0, median=30),
            market=_market(catalog, warning_ms=200.0),
            spot_server_ids=[1],
            scripted_events=events,
            startup_delay_ms=100.0,
            rng=np.random.default_rng(SEED),
        )
        kinds = _kinds(report)
        assert kinds.count("preemption_warning") == 1
        assert kinds.count("preempted") <= 1
        assert report.completed_all

    def test_zero_hazard_never_preempts(self, profiles, rm2, catalog):
        cluster = Cluster(HeterogeneousConfig((1, 0, 2, 0), catalog), rm2, profiles)
        report = simulate_preemptible_serving(
            cluster,
            KairosPolicy(),
            _queries(num=100, rate=40.0),
            market=_market(catalog, hazard=0.0),
            spot_server_ids=[1, 2],
            rng=np.random.default_rng(SEED),
        )
        assert report.scale_log == []
        assert report.completed_all
        # billed as spot at the discounted rate nonetheless
        by_market = report.ledger.cost_by_market(report.billing_horizon_ms)
        assert by_market[MARKET_SPOT] > 0.0
        assert by_market[MARKET_ON_DEMAND] > 0.0


class TestControllerReprovisioning:
    def test_observe_preemption_books_loss_and_forces_replan(self, profiles):
        controller = ElasticKairosController(
            "RM2", 2.5, 60.0, profiles=profiles, window_ms=1000.0, cooldown_ms=1e9, rng=0
        )
        plan = controller.initial_plan()
        config = plan.selected_config
        victim_type = next(name for name, count in config if count > 0)
        controller.observe_preemption(victim_type, 50.0)
        assert controller.preemptions == [(50.0, victim_type, 1)]
        assert controller.current_config.count_of(victim_type) == config.count_of(victim_type) - 1
        # the next replan fires immediately (cooldown and thresholds bypassed) and
        # its deltas re-issue the lost capacity
        decision = controller.maybe_replan(60.0)
        assert decision is not None
        assert decision.scale_deltas.get(victim_type, 0) >= 1
        assert controller.current_config == decision.new_config
        # the provisioned rate is unchanged: capacity changed, not load
        assert controller.provisioned_rate_qps == 60.0
        # no pending preemption left: the next call is gated normally again
        assert controller.maybe_replan(70.0) is None

    def test_observe_preemption_validates_inputs(self, profiles):
        controller = ElasticKairosController("RM2", 2.5, 60.0, profiles=profiles, rng=0)
        with pytest.raises(RuntimeError):
            controller.observe_preemption("r5n.large", 0.0)
        controller.initial_plan()
        with pytest.raises(ValueError):
            controller.observe_preemption("g4dn.xlarge", 0.0, count=0)

    def test_observe_preemption_clamps_unplanned_losses(self, profiles):
        """A mixed cluster carries spot capacity beyond the controller's plan; losing
        it is recorded and still triggers re-provisioning, but can never drive the
        controller's configuration view negative."""
        controller = ElasticKairosController(
            "RM2", 2.5, 60.0, profiles=profiles, cooldown_ms=1e9, rng=0
        )
        config = controller.initial_plan().selected_config
        victim_type = next(name for name, count in config if count > 0)
        controller.observe_preemption(victim_type, 10.0, count=99)
        assert controller.current_config.count_of(victim_type) == 0
        assert controller.preemptions == [(10.0, victim_type, 99)]
        assert controller.maybe_replan(20.0) is not None  # forced re-provision

    def test_simulation_routes_preemptions_through_the_controller(self, profiles, catalog):
        model = profiles.models["RM2"]
        controller = ElasticKairosController(
            model,
            2.5,
            40.0,
            profiles=profiles,
            window_ms=800.0,
            min_observations=10,
            cooldown_ms=100.0,
            rng=0,
        )
        plan = controller.initial_plan()
        cluster = Cluster(plan.selected_config, model, profiles)
        spot_type = next(name for name, count in plan.selected_config if count > 0)
        spot_ids = [
            s.server_id for s in cluster if s.type_name == spot_type
        ][:1]
        events = [
            Event(
                600.0,
                EventKind.PREEMPTION_WARNING,
                PreemptionBurst(count=1, type_name=spot_type),
            )
        ]
        report = simulate_preemptible_serving(
            cluster,
            KairosPolicy(),
            _queries(num=200, rate=40.0, median=30),
            market=_market(catalog, warning_ms=1.0),
            spot_server_ids=spot_ids,
            scripted_events=events,
            controller=controller,
            startup_delay_ms=150.0,
            rng=np.random.default_rng(SEED),
        )
        # the controller absorbed the loss and its forced replan re-provisioned
        assert controller.preemptions and controller.preemptions[0][1] == spot_type
        assert report.replans
        # the forced replan restores net capacity (not necessarily like-for-like:
        # the planner re-picks the cheapest shape from the live monitor window)
        forced = report.replans[0]
        assert sum(forced.scale_deltas.values()) >= 1
        # the simulator's own like-for-like replacement stays out of the way
        assert not any(
            e.kind == "scale_up" and e.reason == "reprovision" for e in report.scale_log
        )
        assert any(e.kind == "scale_up" and e.reason == "replan" for e in report.scale_log)


    def test_warning_after_last_arrival_still_replans(self, profiles, catalog):
        """Controller re-provisioning fires at the warning instant, so a reclaim
        after the final arrival (no future arrivals to piggyback on) still re-plans
        while the backlog drains."""
        model = profiles.models["RM2"]
        controller = ElasticKairosController(
            model,
            2.5,
            40.0,
            profiles=profiles,
            window_ms=800.0,
            min_observations=10,
            cooldown_ms=100.0,
            rng=0,
        )
        plan = controller.initial_plan()
        cluster = Cluster(plan.selected_config, model, profiles)
        spot_type = next(name for name, count in plan.selected_config if count > 0)
        spot_ids = [s.server_id for s in cluster if s.type_name == spot_type][:1]
        # a heavy backlog arrives almost at once and takes far longer to drain
        # than the arrival span; the burst fires after the last arrival but well
        # inside the drain
        queries = _queries(num=200, rate=400.0, median=400)
        last_arrival = max(q.arrival_time_ms for q in queries)
        burst_ms = last_arrival + 100.0
        events = [
            Event(
                burst_ms,
                EventKind.PREEMPTION_WARNING,
                PreemptionBurst(count=1, type_name=spot_type),
            )
        ]
        report = simulate_preemptible_serving(
            cluster,
            KairosPolicy(),
            queries,
            market=_market(catalog, warning_ms=1.0),
            spot_server_ids=spot_ids,
            scripted_events=events,
            controller=controller,
            startup_delay_ms=150.0,
            rng=np.random.default_rng(SEED),
        )
        assert controller.preemptions
        replan_times = [d.time_ms for d in report.replans]
        assert any(t == pytest.approx(burst_ms) for t in replan_times)

    def test_controller_survives_preemption_of_unplanned_spot_capacity(
        self, profiles, catalog
    ):
        """The documented mixed-market wiring: the physical cluster carries spot
        capacity on top of the controller's planned configuration.  Reclaiming all
        of it must not crash the run — losses clamp against the planned view."""
        model = profiles.models["RM2"]
        controller = ElasticKairosController(
            model,
            2.5,
            40.0,
            profiles=profiles,
            window_ms=800.0,
            min_observations=10,
            cooldown_ms=100.0,
            rng=0,
        )
        plan = controller.initial_plan()
        combined = plan.selected_config.add("g4dn.xlarge", 2)
        cluster = Cluster(combined, model, profiles)
        spot_ids = [s.server_id for s in cluster if s.type_name == "g4dn.xlarge"][-2:]
        events = [
            Event(
                600.0,
                EventKind.PREEMPTION_WARNING,
                PreemptionBurst(count=2, type_name="g4dn.xlarge"),
            )
        ]
        report = simulate_preemptible_serving(
            cluster,
            KairosPolicy(),
            _queries(num=200, rate=40.0, median=30),
            market=_market(catalog, warning_ms=1.0),
            spot_server_ids=spot_ids,
            scripted_events=events,
            controller=controller,
            startup_delay_ms=150.0,
            rng=np.random.default_rng(SEED),
        )
        assert len(controller.preemptions) == 2
        assert report.completed_all


class TestSpotScaleRequests:
    def test_scripted_spot_scale_up_bills_discounted_and_arms_preemption(
        self, profiles, rm2, catalog
    ):
        cluster = Cluster(HeterogeneousConfig((1, 0, 1, 0), catalog), rm2, profiles)
        events = [
            Event(
                300.0,
                EventKind.SCALE_UP,
                ScaleRequest("r5n.large", 1, market=MARKET_SPOT),
            )
        ]
        report = simulate_preemptible_serving(
            cluster,
            KairosPolicy(),
            _queries(num=120, rate=50.0, median=30),
            market=_market(catalog, hazard=3_600.0, warning_ms=10.0),
            scripted_events=events,
            startup_delay_ms=100.0,
            rng=np.random.default_rng(SEED),
            market_rng=np.random.default_rng(SEED + 2),
        )
        spot_intervals = [iv for iv in report.ledger.intervals if iv.market == MARKET_SPOT]
        assert len(spot_intervals) >= 1
        assert spot_intervals[0].start_ms == 300.0
        assert spot_intervals[0].price_multiplier == pytest.approx(0.35)
        # the scaled-up spot instance is subject to the hazard
        assert any(e.kind == "preemption_warning" for e in report.scale_log)

    def test_spot_scale_up_without_market_rejected(self, profiles, rm2, catalog):
        cluster = Cluster(HeterogeneousConfig((1, 0, 1, 0), catalog), rm2, profiles)
        events = [
            Event(
                300.0,
                EventKind.SCALE_UP,
                ScaleRequest("r5n.large", 1, market=MARKET_SPOT),
            )
        ]
        sim = PreemptibleElasticSimulation(
            cluster, KairosPolicy(), scripted_events=events, rng=np.random.default_rng(1)
        )
        with pytest.raises(ValueError, match="without a SpotMarket"):
            sim.run(_queries(num=40, rate=40.0))
