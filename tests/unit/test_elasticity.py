"""Tests for the online-elasticity subsystem.

Covers the usage ledger, elastic cluster membership (draining, views, id stability),
the sliding-rate estimator and re-planning controller, and the elastic serving
simulation's provisioning-event lifecycle and determinism.
"""

import numpy as np
import pytest

from repro.cloud.billing import InstanceUsageLedger
from repro.cloud.config import HeterogeneousConfig
from repro.core.controller import (
    ArrivalRateEstimator,
    ElasticKairosController,
    migration_deltas,
)
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.cluster import Cluster
from repro.sim.elasticity import (
    ElasticServingSimulation,
    drain_cost_efficiency,
    scale_down_priority,
    select_drain_victims,
    simulate_elastic_serving,
)
from repro.sim.events import Event, EventKind, ScaleRequest
from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.phases import LoadPhase, PhasedTrace


@pytest.fixture
def small_stream(rng):
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
        num_queries=150,
    )
    return WorkloadGenerator(spec).generate(rate_qps=40.0, rng=rng)


# -- ledger ------------------------------------------------------------------------------


class TestInstanceUsageLedger:
    def test_cost_integral(self, catalog):
        ledger = InstanceUsageLedger(catalog)
        gpu = catalog["g4dn.xlarge"]
        ledger.start(0, gpu, 0.0)
        ledger.stop(0, 1_800_000.0)  # half an hour
        assert ledger.total_cost(3_600_000.0) == pytest.approx(gpu.price_per_hour / 2)

    def test_open_interval_accrues_to_horizon(self, catalog):
        ledger = InstanceUsageLedger(catalog)
        gpu = catalog["g4dn.xlarge"]
        ledger.start(0, gpu, 0.0)
        assert ledger.total_cost(3_600_000.0) == pytest.approx(gpu.price_per_hour)

    def test_windowed_cost(self, catalog):
        ledger = InstanceUsageLedger(catalog)
        gpu = catalog["g4dn.xlarge"]
        ledger.start(0, gpu, 1000.0)
        ledger.stop(0, 3000.0)
        # fully inside, partial overlap, and disjoint windows
        assert ledger.cost_in_window(0.0, 4000.0) == pytest.approx(
            gpu.price_per_hour * 2000.0 / 3_600_000.0
        )
        assert ledger.cost_in_window(2000.0, 4000.0) == pytest.approx(
            gpu.price_per_hour * 1000.0 / 3_600_000.0
        )
        assert ledger.cost_in_window(4000.0, 8000.0) == 0.0

    def test_double_start_and_missing_stop_rejected(self, catalog):
        ledger = InstanceUsageLedger(catalog)
        ledger.start(0, "g4dn.xlarge", 0.0)
        with pytest.raises(ValueError):
            ledger.start(0, "g4dn.xlarge", 10.0)
        with pytest.raises(ValueError):
            ledger.stop(1, 10.0)

    def test_concurrent_and_mean_rates(self, catalog):
        ledger = InstanceUsageLedger(catalog)
        gpu = catalog["g4dn.xlarge"]
        cpu = catalog["r5n.large"]
        ledger.start(0, gpu, 0.0)
        ledger.start(1, cpu, 0.0)
        ledger.stop(1, 1_800_000.0)
        assert ledger.concurrent_cost_per_hour(100.0) == pytest.approx(
            gpu.price_per_hour + cpu.price_per_hour
        )
        assert ledger.concurrent_cost_per_hour(2_000_000.0) == pytest.approx(
            gpu.price_per_hour
        )
        assert ledger.mean_cost_per_hour(3_600_000.0) == pytest.approx(
            gpu.price_per_hour + cpu.price_per_hour / 2
        )

    def test_close_all(self, catalog):
        ledger = InstanceUsageLedger(catalog)
        ledger.start(0, "g4dn.xlarge", 0.0)
        ledger.start(1, "r5n.large", 100.0)
        ledger.close_all(500.0)
        assert all(iv.end_ms == 500.0 for iv in ledger.intervals)


# -- elastic cluster membership ----------------------------------------------------------


class TestElasticCluster:
    def test_add_server_gets_fresh_id(self, rm2_cluster):
        n = len(rm2_cluster)
        server = rm2_cluster.add_server("g4dn.xlarge", now_ms=500.0)
        assert server.server_id == n
        assert server.commissioned_at_ms == 500.0
        assert len(rm2_cluster) == n + 1

    def test_ids_never_reused_after_removal(self, rm2_cluster):
        first = rm2_cluster.add_server("g4dn.xlarge")
        rm2_cluster.remove_server(first.server_id)
        second = rm2_cluster.add_server("g4dn.xlarge")
        assert second.server_id > first.server_id

    def test_server_by_id_after_removal(self, rm2_cluster):
        victim = rm2_cluster[1]
        rm2_cluster.remove_server(victim.server_id)
        with pytest.raises(KeyError):
            rm2_cluster.server_by_id(victim.server_id)
        # remaining ids still resolve even though indices shifted
        for s in rm2_cluster:
            assert rm2_cluster.server_by_id(s.server_id) is s

    def test_drain_prefers_idle_servers(self, rm2_cluster):
        servers = rm2_cluster.servers_of_type("r5n.large")
        busy, idle = servers[0], servers[1]
        busy.busy_until_ms = 500.0
        busy.local_queue_depth = 1
        victims = rm2_cluster.drain_servers("r5n.large", 1, now_ms=100.0)
        assert victims == [idle]
        assert idle.draining and not busy.draining

    def test_draining_server_rejects_dispatch(self, rm2_cluster, small_stream):
        server = rm2_cluster[0]
        server.start_draining()
        with pytest.raises(RuntimeError):
            server.dispatch(small_stream[0], 0.0)

    def test_active_view_excludes_draining(self, rm2_cluster):
        rm2_cluster[0].start_draining()
        view = rm2_cluster.active_view()
        assert len(view) == len(rm2_cluster) - 1
        assert all(not s.draining for s in view)
        # the view delegates the substrate accessors policies rely on
        assert view.model is rm2_cluster.model
        assert view.config is rm2_cluster.config
        assert view.profiles is rm2_cluster.profiles
        assert view.type_names() == [s.type_name for s in view]

    def test_current_config_tracks_membership(self, rm2_cluster):
        rm2_cluster.add_server("g4dn.xlarge")
        config = rm2_cluster.current_config()
        assert config.count_of("g4dn.xlarge") == 2

    def test_reset_clears_draining(self, rm2_cluster):
        rm2_cluster[0].start_draining()
        rm2_cluster.reset()
        assert all(not s.draining for s in rm2_cluster)


# -- cost-aware drain victim selection ----------------------------------------------------


class TestCostAwareDrainSelection:
    """ROADMAP item: when multiple types shrink at once, drain the victims freeing the
    most $/hr per unit of lost QoS-feasible serving capacity first."""

    def test_scores_rank_expensive_low_capacity_types_first(self, profiles, rm2):
        scores = {
            name: drain_cost_efficiency(profiles, rm2, name)
            for name in profiles.catalog.names
        }
        # For RM2 the GPU frees by far the most $/hr per qps given up (0.526$/hr at a
        # modest QoS-feasible rate), then c5n (0.432$/hr), then t3, then r5n — the
        # memory-optimized type is RM2's cheapest capacity and drains last.
        assert (
            scores["g4dn.xlarge"]
            > scores["c5n.2xlarge"]
            > scores["t3.xlarge"]
            > scores["r5n.large"]
        )

    def test_type_with_zero_feasible_capacity_drains_first(self, profiles, rm2):
        # a type that cannot serve any probed batch within QoS costs nothing to drain
        assert drain_cost_efficiency(
            profiles, rm2, "t3.xlarge", probe_batches=[1000]
        ) == float("inf")

    def test_priority_order_is_deterministic(self, profiles, rm2):
        order = scale_down_priority(profiles, rm2, list(profiles.catalog.names))
        assert order == ["g4dn.xlarge", "c5n.2xlarge", "t3.xlarge", "r5n.large"]
        # subsets keep the same relative order
        assert scale_down_priority(profiles, rm2, ["r5n.large", "c5n.2xlarge"]) == [
            "c5n.2xlarge",
            "r5n.large",
        ]

    def test_three_type_fixture_pins_the_chosen_victims(self, profiles, rm2, catalog):
        """3-type shrink: victims come out in cost-efficiency order across types and
        least-loaded-first within a type (pinned ids on a fixed fixture)."""
        config = HeterogeneousConfig((1, 1, 2, 0), catalog)  # ids 0=g4dn 1=c5n 2,3=r5n
        cluster = Cluster(config, rm2, profiles)
        # make r5n id=2 busy so id=3 is the least-loaded victim of that type
        cluster[2].busy_until_ms = 900.0
        cluster[2].local_queue_depth = 1
        victims = select_drain_victims(
            cluster,
            {"r5n.large": 1, "g4dn.xlarge": 1, "c5n.2xlarge": 1},
            now_ms=100.0,
        )
        # cross-type order: g4dn ($0.526/hr, ~13.7 qps) before c5n ($0.432, ~16.0)
        # before r5n ($0.149, ~13.9); within r5n the idle id=3 is preferred.
        assert [v.server_id for v in victims] == [0, 1, 3]
        assert all(v.draining for v in victims)
        assert not cluster[2].draining

    def test_replan_emits_scale_downs_in_cost_aware_order(self, profiles, rm2):
        """The elastic loop turns a multi-type shrink into SCALE_DOWN events that
        process most-cost-efficient-first within the same instant."""
        config = HeterogeneousConfig((2, 2, 3, 0))
        cluster = Cluster(config, rm2, profiles)
        sim = ElasticServingSimulation(cluster, KairosPolicy(), rng=0)
        from repro.core.kairos import KairosPlanner

        plan = KairosPlanner(rm2, 2.5, profiles=profiles, batch_samples=[64] * 50).plan()
        from repro.core.controller import ReplanDecision

        decision = ReplanDecision(
            time_ms=100.0,
            observed_rate_qps=10.0,
            provisioned_rate_qps=30.0,
            budget_per_hour=1.0,
            old_config=config,
            new_config=HeterogeneousConfig((1, 1, 2, 0)),
            plan=plan,
            scale_deltas={"g4dn.xlarge": -1, "c5n.2xlarge": -1, "r5n.large": -1},
        )
        from repro.sim.engine import EventQueue

        events = EventQueue()
        sim._emit_scale_events(decision, 100.0, events)
        popped = list(events.pop_until(100.0))
        assert [e.payload.type_name for e in popped] == [
            "g4dn.xlarge",
            "c5n.2xlarge",
            "r5n.large",
        ]


# -- rate estimation and the re-planning controller --------------------------------------


class TestArrivalRateEstimator:
    def test_steady_rate(self):
        est = ArrivalRateEstimator(window_ms=1000.0)
        for i in range(1, 101):
            est.observe(i * 10.0)  # 100 qps
        assert est.rate_qps(1000.0) == pytest.approx(100.0, rel=0.05)

    def test_window_eviction(self):
        est = ArrivalRateEstimator(window_ms=1000.0)
        for i in range(1, 101):
            est.observe(i * 10.0)
        # long silence: everything evicts, the rate collapses
        assert est.observations(5000.0) == 0
        assert est.rate_qps(5000.0) == 0.0

    def test_step_detected_after_window_turnover(self):
        est = ArrivalRateEstimator(window_ms=1000.0)
        t = 0.0
        for _ in range(100):
            t += 10.0
            est.observe(t)  # 100 qps
        for _ in range(400):
            t += 5.0
            est.observe(t)  # 200 qps for 2 windows
        assert est.rate_qps(t) == pytest.approx(200.0, rel=0.05)

    def test_rejects_time_travel(self):
        est = ArrivalRateEstimator()
        est.observe(100.0)
        with pytest.raises(ValueError):
            est.observe(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalRateEstimator(window_ms=0.0)


class TestArrivalRateEstimatorTimeOrigin:
    """Regression: the estimator must anchor on the first *observed* arrival.

    Pre-fix, ``rate_qps`` normalized by ``min(window_ms, max(now_ms, last))`` —
    absolute time — so any trace starting at ``t0 >> window_ms`` immediately read
    a full-window span and deflated the rate by ``observed_span / window``.
    """

    def test_rate_anchored_on_first_observed_arrival(self):
        est = ArrivalRateEstimator(window_ms=5_000.0)
        t0 = 1_000_000.0  # a committed trace slice starting ~17 minutes in
        for i in range(21):
            est.observe(t0 + i * 25.0)  # 40 qps over a 500 ms observed span
        now = t0 + 500.0
        # span is the 500 ms since the first arrival, not the full 5 s window:
        # 21 arrivals / 0.5 s = 42 qps.  Pre-fix this read 21 / 5 s = 4.2 qps.
        assert est.rate_qps(now) == pytest.approx(42.0)
        assert est.first_observed_ms == t0

    def test_offset_origin_matches_zero_origin(self):
        def rates(origin):
            est = ArrivalRateEstimator(window_ms=1_000.0)
            out = []
            for i in range(50):
                t = origin + i * 20.0
                est.observe(t)
                out.append(est.rate_qps(t))
            return out

        assert rates(600_000.0) == rates(0.0)

    def test_single_arrival_zero_span_reads_zero(self):
        est = ArrivalRateEstimator(window_ms=1_000.0)
        est.observe(750_000.0)
        assert est.rate_qps(750_000.0) == 0.0

    def test_window_elapsed_requires_an_observation(self):
        est = ArrivalRateEstimator(window_ms=1_000.0)
        # an untouched estimator never claims a trustworthy window, whatever the clock
        assert not est.window_elapsed(1e12)
        est.observe(600_000.0)
        assert not est.window_elapsed(600_999.0)
        assert est.window_elapsed(601_000.0)


class TestMigrationDeltas:
    def test_deltas(self, catalog):
        old = HeterogeneousConfig((2, 1, 3, 0), catalog)
        new = HeterogeneousConfig((3, 0, 3, 2), catalog)
        deltas = migration_deltas(old, new)
        assert deltas == {"g4dn.xlarge": 1, "c5n.2xlarge": -1, "t3.xlarge": 2}

    def test_identical_configs_no_deltas(self, catalog):
        config = HeterogeneousConfig((2, 1, 3, 0), catalog)
        assert migration_deltas(config, config) == {}


class TestElasticKairosController:
    def make_controller(self, profiles, **kw):
        defaults = dict(
            window_ms=1000.0,
            change_threshold=1.5,
            min_observations=20,
            cooldown_ms=2000.0,
            rng=0,
        )
        defaults.update(kw)
        return ElasticKairosController(
            "RM2", 2.5, 100.0, profiles=profiles, **defaults
        )

    def test_requires_initial_plan(self, profiles):
        ctrl = self.make_controller(profiles)
        with pytest.raises(RuntimeError):
            ctrl.maybe_replan(0.0)

    def test_initial_plan_sets_config(self, profiles):
        ctrl = self.make_controller(profiles)
        plan = ctrl.initial_plan()
        assert ctrl.current_config == plan.selected_config
        assert ctrl.provisioned_rate_qps == 100.0

    def test_steady_load_never_replans(self, profiles, rm2):
        ctrl = self.make_controller(profiles)
        ctrl.initial_plan()
        t = 0.0
        for i in range(300):
            t += 10.0  # 100 qps, exactly the provisioned rate
            ctrl.observe_arrival(_query(i, 64, t), t)
            assert ctrl.maybe_replan(t) is None
        assert ctrl.decisions == []

    def test_sustained_step_triggers_one_shot_replan(self, profiles):
        ctrl = self.make_controller(profiles)
        ctrl.initial_plan()
        t = 0.0
        for i in range(150):
            t += 10.0
            ctrl.observe_arrival(_query(i, 64, t), t)
            ctrl.maybe_replan(t)
        assert ctrl.decisions == []
        for i in range(150, 1000):
            t += 4.0  # 250 qps: a 2.5x step
            ctrl.observe_arrival(_query(i, 64, t), t)
            ctrl.maybe_replan(t)
            if ctrl.decisions:
                break
        assert len(ctrl.decisions) == 1
        decision = ctrl.decisions[0]
        assert decision.observed_rate_qps > 150.0
        assert decision.budget_per_hour > 2.5
        assert decision.is_scale_up
        assert decision.new_config.cost_per_hour() > decision.old_config.cost_per_hour()
        # the decision's deltas migrate old into new exactly
        migrated = decision.old_config
        for name, delta in decision.scale_deltas.items():
            migrated = migrated.add(name, delta)
        assert migrated == decision.new_config
        assert ctrl.provisioned_rate_qps == decision.observed_rate_qps

    def test_cooldown_blocks_immediate_second_replan(self, profiles):
        ctrl = self.make_controller(profiles, cooldown_ms=1e9)
        ctrl.initial_plan()
        t = 0.0
        for i in range(1000):
            t += 4.0
            ctrl.observe_arrival(_query(i, 64, t), t)
            ctrl.maybe_replan(t)
        assert len(ctrl.decisions) <= 1

    def test_budget_ceiling(self, profiles):
        ctrl = self.make_controller(profiles, max_budget_per_hour=3.0)
        ctrl.initial_plan()
        t = 0.0
        for i in range(2000):
            t += 1.0  # 1000 qps: 10x the provisioned load
            ctrl.observe_arrival(_query(i, 64, t), t)
            if ctrl.maybe_replan(t):
                break
        assert ctrl.decisions and ctrl.decisions[0].budget_per_hour <= 3.0

    def test_severe_drop_below_min_observations_still_replans(self, profiles):
        # 100 qps -> 2 qps: the 1s window holds only ~2 arrivals, far below
        # min_observations — but once a full window has elapsed, sparsity IS the
        # load-drop signal and must not block the down-replan.
        ctrl = self.make_controller(profiles, min_observations=20)
        ctrl.initial_plan()
        t = 0.0
        for i in range(150):
            t += 10.0
            ctrl.observe_arrival(_query(i, 64, t), t)
            ctrl.maybe_replan(t)
        assert ctrl.decisions == []
        for i in range(150, 170):
            t += 500.0  # 2 qps
            ctrl.observe_arrival(_query(i, 64, t), t)
            if ctrl.maybe_replan(t):
                break
        assert ctrl.decisions
        assert not ctrl.decisions[0].is_scale_up

    def test_scale_down_on_load_drop(self, profiles):
        ctrl = self.make_controller(profiles)
        ctrl.initial_plan()
        t = 0.0
        for i in range(300):
            t += 50.0  # 20 qps: a 5x drop from the provisioned 100 qps
            ctrl.observe_arrival(_query(i, 64, t), t)
            if ctrl.maybe_replan(t):
                break
        assert ctrl.decisions
        decision = ctrl.decisions[0]
        assert not decision.is_scale_up
        assert decision.budget_per_hour < 2.5


class TestElasticControllerOffsetTrace:
    """Regression: a trace whose first arrival is at ``t0 >> window_ms`` must not
    fire a spurious load-drop re-plan at trace start.

    Pre-fix, ``maybe_replan`` treated the window as elapsed once ``now_ms >=
    window_ms`` (absolute time), bypassing the ``min_observations`` gate, and the
    deflated early rate then looked like a severe load drop.
    """

    def make_controller(self, profiles, **kw):
        defaults = dict(
            window_ms=1000.0,
            change_threshold=1.5,
            min_observations=20,
            cooldown_ms=2000.0,
            rng=0,
        )
        defaults.update(kw)
        return ElasticKairosController(
            "RM2", 2.5, 100.0, profiles=profiles, **defaults
        )

    def test_no_spurious_replan_at_offset_trace_start(self, profiles):
        ctrl = self.make_controller(profiles)
        ctrl.initial_plan()
        t0 = 600_000.0  # first arrival ten minutes in, at the provisioned 100 qps
        for i in range(5):
            t = t0 + i * 10.0
            ctrl.observe_arrival(_query(i, 64, t), t)
            assert ctrl.maybe_replan(t) is None
        assert ctrl.decisions == []

    def test_offset_trace_still_detects_real_load_step(self, profiles):
        ctrl = self.make_controller(profiles)
        ctrl.initial_plan()
        t0 = 600_000.0
        t = t0
        for i in range(600):
            t += 4.0  # 250 qps: a 2.5x step, sustained past the window
            ctrl.observe_arrival(_query(i, 64, t), t)
            if ctrl.maybe_replan(t):
                break
        assert len(ctrl.decisions) == 1
        assert ctrl.decisions[0].is_scale_up

    def test_offset_trace_matches_zero_origin_decisions(self, profiles):
        # cooldown off: the initial cooldown is deliberately anchored at absolute
        # t=0 (the controller goes live when the run starts), which would shift
        # the first decision of the zero-origin twin — not what this test pins.
        def decide(origin):
            ctrl = self.make_controller(profiles, cooldown_ms=0.0)
            ctrl.initial_plan()
            t = origin
            fired_after = None
            for i in range(600):
                t += 4.0
                ctrl.observe_arrival(_query(i, 64, t), t)
                if ctrl.maybe_replan(t):
                    fired_after = t - origin
                    break
            return fired_after, [d.observed_rate_qps for d in ctrl.decisions]

        assert decide(600_000.0) == decide(0.0)


def _query(qid, batch, t):
    from repro.workload.query import Query

    return Query(query_id=qid, batch_size=batch, arrival_time_ms=t)


# -- elastic serving simulation ----------------------------------------------------------


class TestElasticServingSimulation:
    def test_static_cluster_serves_everything(self, rm2_cluster, small_stream):
        report = simulate_elastic_serving(
            rm2_cluster, KairosPolicy(), small_stream, rng=3
        )
        assert report.completed_all
        assert len(report.metrics) == len(small_stream)
        assert report.replans == [] and report.scale_log == []
        # every initial server billed for the whole run
        assert len(report.ledger.intervals) == len(rm2_cluster)

    def test_scripted_scale_up_adds_capacity_after_delay(self, rm2_cluster, small_stream):
        events = [Event(500.0, EventKind.SCALE_UP, ScaleRequest("g4dn.xlarge", 2))]
        report = simulate_elastic_serving(
            rm2_cluster,
            KairosPolicy(),
            small_stream,
            startup_delay_ms=250.0,
            scripted_events=events,
            rng=3,
        )
        assert report.completed_all
        kinds = [(e.kind, e.time_ms) for e in report.scale_log]
        assert (("scale_up"), 500.0) == (report.scale_log[0].kind, report.scale_log[0].time_ms)
        readies = [e for e in report.scale_log if e.kind == "instance_ready"]
        assert len(readies) == 2 and all(e.time_ms == 750.0 for e in readies)
        assert report.peak_instances == len(report.ledger.intervals) == 6
        # billing for the new instances starts at the request, not at readiness
        new_intervals = [iv for iv in report.ledger.intervals if iv.start_ms > 0]
        assert len(new_intervals) == 2
        assert all(iv.start_ms == 500.0 for iv in new_intervals)

    def test_scripted_scale_down_drains_and_decommissions(self, rm2_cluster, small_stream):
        events = [Event(1000.0, EventKind.SCALE_DOWN, ScaleRequest("r5n.large", 1))]
        report = simulate_elastic_serving(
            rm2_cluster, KairosPolicy(), small_stream, scripted_events=events, rng=3
        )
        assert report.completed_all
        assert len(report.cluster) == 3
        decommissions = [e for e in report.scale_log if e.kind == "decommission"]
        assert len(decommissions) == 1
        closed = [iv for iv in report.ledger.intervals if iv.end_ms is not None]
        drained = [iv for iv in closed if iv.end_ms < report.simulated_duration_ms]
        assert len(drained) == 1 and drained[0].type_name == "r5n.large"
        # draining never drops in-flight work: all queries completed exactly once
        assert len(report.metrics) == len(small_stream)

    def test_drain_to_zero_idles_instead_of_crashing(self, rm2_cluster, small_stream):
        # Draining every instance must not crash the policy re-bind; in-flight work
        # finishes, the rest is reported unserved.
        events = [
            Event(1000.0, EventKind.SCALE_DOWN, ScaleRequest(t, 99))
            for t in ("g4dn.xlarge", "c5n.2xlarge", "r5n.large")
        ]
        report = simulate_elastic_serving(
            rm2_cluster, KairosPolicy(), small_stream, scripted_events=events, rng=2
        )
        assert len(report.cluster) == 0
        assert not report.completed_all
        assert 0 < len(report.metrics) < len(small_stream)

    def test_drain_to_zero_then_scale_up_serves_stranded_queries(
        self, rm2_cluster, small_stream
    ):
        events = [
            Event(1000.0, EventKind.SCALE_DOWN, ScaleRequest(t, 99))
            for t in ("g4dn.xlarge", "c5n.2xlarge", "r5n.large")
        ]
        events.append(Event(1800.0, EventKind.SCALE_UP, ScaleRequest("g4dn.xlarge", 2)))
        report = simulate_elastic_serving(
            rm2_cluster,
            KairosPolicy(),
            small_stream,
            scripted_events=events,
            startup_delay_ms=200.0,
            rng=2,
        )
        assert report.completed_all
        assert len(report.metrics) == len(small_stream)
        assert len(report.cluster) == 2

    def test_unknown_scale_type_raises(self, rm2_cluster, small_stream):
        events = [Event(100.0, EventKind.SCALE_DOWN, ScaleRequest("no-such-type", 1))]
        with pytest.raises(KeyError):
            simulate_elastic_serving(
                rm2_cluster, KairosPolicy(), small_stream, scripted_events=events, rng=3
            )

    def test_scripted_events_validated(self, rm2_cluster):
        with pytest.raises(ValueError):
            ElasticServingSimulation(
                rm2_cluster,
                KairosPolicy(),
                scripted_events=[Event(1.0, EventKind.QUERY_ARRIVAL, None)],
            )
        with pytest.raises(ValueError):
            ElasticServingSimulation(
                rm2_cluster,
                KairosPolicy(),
                scripted_events=[Event(1.0, EventKind.SCALE_UP, "not-a-request")],
            )

    def test_empty_stream_is_a_valid_noop(self, rm2_cluster):
        # Zero offered load is a legitimate scenario (the fuzzer draws it): the run
        # serves nothing, records nothing, and bills zero-length intervals.
        report = ElasticServingSimulation(rm2_cluster, KairosPolicy()).run([])
        assert report.total_queries == 0
        assert report.dispatched_queries == 0
        assert report.completed_all
        assert len(report.metrics) == 0
        assert report.billing_horizon_ms == 0.0
        assert report.total_cost() == 0.0

    def test_run_is_one_shot(self, rm2_cluster, small_stream):
        sim = ElasticServingSimulation(rm2_cluster, KairosPolicy(), rng=3)
        sim.run(small_stream)
        with pytest.raises(RuntimeError, match="one-shot"):
            sim.run(small_stream)

    def test_scale_down_cancels_booting_instances_first(self, rm2_cluster, small_stream):
        # A scale-down arriving while a scale-up of the same type is still booting
        # cancels the boot instead of draining a live server: membership ends where
        # the net delta says, and the cancelled instance never joins the cluster.
        n = len(rm2_cluster)
        events = [
            Event(500.0, EventKind.SCALE_UP, ScaleRequest("g4dn.xlarge", 2)),
            Event(600.0, EventKind.SCALE_DOWN, ScaleRequest("g4dn.xlarge", 1)),
        ]
        report = simulate_elastic_serving(
            rm2_cluster,
            KairosPolicy(),
            small_stream,
            startup_delay_ms=1000.0,  # still booting at 600 ms
            scripted_events=events,
            rng=3,
        )
        kinds = [e.kind for e in report.scale_log]
        assert "cancel_startup" in kinds
        assert "decommission" not in kinds  # no live server was drained
        assert len(report.cluster) == n + 1  # net +1 g4dn
        assert sum(1 for e in report.scale_log if e.kind == "instance_ready") == 1
        # the cancelled instance's billing stopped at the cancel, not the run end
        cancelled = [iv for iv in report.ledger.intervals if iv.end_ms == 600.0]
        assert len(cancelled) == 1 and cancelled[0].start_ms == 500.0

    def test_billing_horizon_covers_late_warmup_start(self, rm2_cluster, small_stream):
        # With warm-up queries excluded from metrics, the makespan starts late, but
        # billing must still integrate from t=0 to the run's end.
        report = simulate_elastic_serving(
            rm2_cluster, KairosPolicy(), small_stream, warmup_queries=50, rng=3
        )
        assert report.billing_horizon_ms > report.simulated_duration_ms
        # every initial server is billed over the full horizon
        for iv in report.ledger.intervals:
            assert iv.start_ms == 0.0 and iv.end_ms == report.billing_horizon_ms

    def test_deterministic_with_controller(self, profiles, rm2):
        def run_once():
            controller = ElasticKairosController(
                "RM2",
                2.5,
                60.0,
                profiles=profiles,
                window_ms=1000.0,
                change_threshold=1.5,
                min_observations=20,
                cooldown_ms=2000.0,
                rng=0,
            )
            plan = controller.initial_plan()
            cluster = Cluster(plan.selected_config, rm2, profiles)
            trace = PhasedTrace(
                [LoadPhase.step(60.0, 3000.0), LoadPhase.step(150.0, 3000.0)],
                WorkloadSpec(
                    batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1)
                ),
            )
            result = trace.generate(rng=5)
            report = simulate_elastic_serving(
                cluster,
                KairosPolicy(),
                list(result.queries),
                controller=controller,
                startup_delay_ms=300.0,
                rng=11,
            )
            return report

        a = run_once()
        b = run_once()
        assert a.summary() == b.summary()
        assert [
            (e.time_ms, e.kind, e.type_name, e.count) for e in a.scale_log
        ] == [(e.time_ms, e.kind, e.type_name, e.count) for e in b.scale_log]
        assert len(a.replans) == len(b.replans) >= 1
        # all elasticity traffic flowed through the event queue's ordering contract:
        # records are complete and the clock-dependent summary is reproducible
        assert a.completed_all
