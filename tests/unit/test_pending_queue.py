"""PendingQueue: arrival-ordered semantics identical to the plain list it replaced."""

import pytest

from repro.sim.pending import PendingQueue
from repro.workload.query import Query


def q(query_id, batch=10, arrival=0.0):
    return Query(query_id, batch, arrival)


class TestPendingQueue:
    def test_append_and_snapshot_order(self):
        queue = PendingQueue()
        for i in (3, 1, 7):
            queue.append(q(i))
        assert [query.query_id for query in queue.snapshot()] == [3, 1, 7]
        assert len(queue) == 3 and bool(queue)

    def test_remove_preserves_relative_order(self):
        queue = PendingQueue()
        for i in range(6):
            queue.append(q(i))
        queue.remove(2)
        queue.remove(4)
        assert [query.query_id for query in queue.snapshot()] == [0, 1, 3, 5]

    def test_remove_returns_query_and_updates_membership(self):
        queue = PendingQueue()
        queue.append(q(9))
        assert 9 in queue
        removed = queue.remove(9)
        assert removed.query_id == 9
        assert 9 not in queue
        assert len(queue) == 0 and not queue

    def test_remove_missing_raises_keyerror(self):
        queue = PendingQueue()
        queue.append(q(1))
        with pytest.raises(KeyError):
            queue.remove(2)
        queue.remove(1)
        with pytest.raises(KeyError):
            queue.remove(1)  # double-remove

    def test_duplicate_append_rejected(self):
        queue = PendingQueue()
        queue.append(q(5))
        with pytest.raises(ValueError):
            queue.append(q(5))

    def test_snapshot_is_memoized_until_mutation(self):
        queue = PendingQueue()
        queue.append(q(1))
        first = queue.snapshot()
        assert queue.snapshot() is first  # unchanged queue: same list object
        queue.append(q(2))
        assert queue.snapshot() is not first

    def test_iteration_matches_snapshot(self):
        queue = PendingQueue()
        for i in (4, 2, 8):
            queue.append(q(i))
        queue.remove(2)
        assert [query.query_id for query in queue] == [4, 8]

    def test_compaction_keeps_order_under_churn(self):
        queue = PendingQueue()
        alive = []
        for i in range(500):
            queue.append(q(i))
            alive.append(i)
            if i % 3 == 0 and len(alive) > 1:
                victim = alive.pop(0)
                queue.remove(victim)
        assert [query.query_id for query in queue.snapshot()] == alive
        assert len(queue) == len(alive)
        # the tombstone backlog is bounded by the compaction policy
        assert len(queue._entries) <= max(32, 2 * len(alive) + 1)

    def test_interleaved_append_remove_append(self):
        queue = PendingQueue()
        queue.append(q(1))
        queue.append(q(2))
        queue.remove(1)
        queue.append(q(3))
        queue.append(q(1))  # a removed id may be admitted again
        assert [query.query_id for query in queue.snapshot()] == [2, 3, 1]
