"""The vectorized cost-matrix fast path: call counts, golden equivalence, empty cases.

The optimization contract is strict: one ``predict_many_ms`` call per instance *type*
per scheduling round (instead of one per server), and an ``L`` matrix element-wise
identical to the seed per-server implementation (reproduced here as
``reference_build_cost_matrix``).
"""

from collections import Counter

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.core.cost_matrix import CostMatrix, build_cost_matrix
from repro.core.latency_model import (
    LatencyEstimator,
    OnlineLatencyEstimator,
    PerfectLatencyEstimator,
)
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.cluster import Cluster
from repro.workload.query import Query


class CountingEstimator(LatencyEstimator):
    """Delegates to an inner estimator, counting ``predict_many_ms`` calls per type."""

    def __init__(self, inner: LatencyEstimator):
        self.inner = inner
        self.many_calls = Counter()
        self.scalar_calls = Counter()

    def predict_ms(self, instance_type, batch_size):
        self.scalar_calls[instance_type] += 1
        return self.inner.predict_ms(instance_type, batch_size)

    def predict_many_ms(self, instance_type, batch_sizes):
        self.many_calls[instance_type] += 1
        return self.inner.predict_many_ms(instance_type, batch_sizes)

    def observe(self, instance_type, batch_size, latency_ms):
        self.inner.observe(instance_type, batch_size, latency_ms)


def reference_build_cost_matrix(queries, servers, estimator, now_ms, qos_ms, coefficients):
    """The seed implementation: one estimator call per *server*, per-column assembly."""
    m, n = len(queries), len(servers)
    batches = np.asarray([q.batch_size for q in queries], dtype=int)
    waits = np.asarray([q.waiting_time_ms(now_ms) for q in queries], dtype=float)
    usage = np.empty((m, n), dtype=float)
    weights = np.empty(n, dtype=float)
    for j, server in enumerate(servers):
        predicted = estimator.predict_many_ms(server.type_name, batches)
        usage[:, j] = (
            server.remaining_busy_ms(now_ms) + server.dispatch_overhead_ms + predicted
        )
        weights[j] = coefficients[server.type_name]
    feasible = (usage + waits[:, None]) <= 0.98 * qos_ms + 1e-9
    penalized = np.where(feasible, usage, 10.0 * qos_ms)
    weighted = penalized * weights[None, :]
    return usage, penalized, weighted, feasible


@pytest.fixture
def mixed_cluster(profiles, rm2, catalog):
    """3 instance types, multiple servers each, staggered busy times."""
    config = HeterogeneousConfig((3, 2, 4, 0), catalog)
    cluster = Cluster(config, rm2, profiles)
    for i, server in enumerate(cluster):
        server.busy_until_ms = float((i * 13) % 50)
    return cluster


COEFFS = {"g4dn.xlarge": 1.0, "c5n.2xlarge": 0.5, "r5n.large": 0.2, "t3.xlarge": 0.1}


def _queries(rng, count, max_batch=1000):
    batches = rng.integers(1, max_batch + 1, size=count)
    return [Query(i, int(b), float(i)) for i, b in enumerate(batches)]


class TestEstimatorCallCounts:
    def test_one_predict_many_call_per_type(self, mixed_cluster, profiles, rm2, rng):
        counting = CountingEstimator(PerfectLatencyEstimator(profiles, rm2))
        queries = _queries(rng, 12)
        build_cost_matrix(queries, mixed_cluster.servers, counting, 100.0, rm2.qos_ms, COEFFS)
        present_types = set(mixed_cluster.type_names())
        assert set(counting.many_calls) == present_types
        assert all(count == 1 for count in counting.many_calls.values())

    def test_one_call_per_type_per_scheduling_round(self, mixed_cluster, profiles, rm2, rng):
        counting = CountingEstimator(PerfectLatencyEstimator(profiles, rm2))
        policy = KairosPolicy(estimator=counting)
        policy.bind(mixed_cluster, rm2.qos_ms)
        counting.many_calls.clear()
        queries = _queries(rng, 6)
        for round_idx in range(3):
            policy.schedule(50.0 * round_idx, queries, mixed_cluster)
        present_types = set(mixed_cluster.type_names())
        assert set(counting.many_calls) == present_types
        assert all(count == 3 for count in counting.many_calls.values())

    def test_empty_pending_short_circuits(self, mixed_cluster, profiles, rm2):
        counting = CountingEstimator(PerfectLatencyEstimator(profiles, rm2))
        policy = KairosPolicy(estimator=counting)
        policy.bind(mixed_cluster, rm2.qos_ms)
        counting.many_calls.clear()
        counting.scalar_calls.clear()
        assert policy.schedule(0.0, [], mixed_cluster) == []
        assert not counting.many_calls and not counting.scalar_calls


class TestGoldenEquivalence:
    @pytest.mark.parametrize("estimator_kind", ["perfect", "online"])
    def test_identical_to_seed_implementation(
        self, mixed_cluster, profiles, rm2, rng, estimator_kind
    ):
        if estimator_kind == "perfect":
            estimator = PerfectLatencyEstimator(profiles, rm2)
        else:
            estimator = OnlineLatencyEstimator()
            for server in mixed_cluster:
                profile = profiles.profile(rm2, server.instance_type)
                for batch in (1, 100, 700):
                    estimator.observe(
                        server.type_name, batch, float(profile.latency_ms(batch))
                    )
        for trial in range(5):
            queries = _queries(np.random.default_rng(trial), 1 + 7 * trial)
            now_ms = 37.0 * trial
            matrix = build_cost_matrix(
                queries, mixed_cluster.servers, estimator, now_ms, rm2.qos_ms, COEFFS
            )
            usage, penalized, weighted, feasible = reference_build_cost_matrix(
                queries, mixed_cluster.servers, estimator, now_ms, rm2.qos_ms, COEFFS
            )
            # element-wise identical, not approximately equal
            assert np.array_equal(matrix.usage_ms, usage)
            assert np.array_equal(matrix.penalized_ms, penalized)
            assert np.array_equal(matrix.weighted, weighted)
            assert np.array_equal(matrix.qos_feasible, feasible)

    def test_non_contiguous_type_layout(self, profiles, rm2, catalog, rng):
        """Interleaved types (elastic clusters after scale events) take the fancy path."""
        config = HeterogeneousConfig((2, 0, 2, 0), catalog)
        cluster = Cluster(config, rm2, profiles)
        cluster.add_server("g4dn.xlarge")  # base type appended after r5n servers
        servers = cluster.servers
        assert servers[-1].type_name == servers[0].type_name  # interleaved layout
        estimator = PerfectLatencyEstimator(profiles, rm2)
        queries = _queries(rng, 9)
        matrix = build_cost_matrix(queries, servers, estimator, 0.0, rm2.qos_ms, COEFFS)
        usage, penalized, weighted, feasible = reference_build_cost_matrix(
            queries, servers, estimator, 0.0, rm2.qos_ms, COEFFS
        )
        assert np.array_equal(matrix.usage_ms, usage)
        assert np.array_equal(matrix.weighted, weighted)


class TestMultiModelFastPath:
    """The joint matrix keeps the PR-2 contract, generalized per model:
    one ``predict_many_ms`` call per (model, type) pair per round, and with one
    registered model the output is element-wise identical to ``build_cost_matrix``."""

    def _mm_inputs(self, profiles, catalog, rng, *, n_queries=10):
        from repro.cloud.models import get_model
        from repro.sim.server import ServerInstance

        rm2, wnd = get_model("RM2"), get_model("WND")
        servers, server_models = [], []
        for i, (model, type_name) in enumerate(
            [
                (rm2, "g4dn.xlarge"),
                (rm2, "r5n.large"),
                (rm2, "r5n.large"),
                (wnd, "g4dn.xlarge"),
                (wnd, "c5n.2xlarge"),
            ]
        ):
            itype = catalog[type_name]
            server = ServerInstance(
                server_id=i,
                instance_type=itype,
                profile=profiles.profile(model, itype),
                busy_until_ms=float((i * 13) % 50),
            )
            servers.append(server)
            server_models.append(model.name)
        batches = rng.integers(1, 1001, size=n_queries)
        queries = [
            Query(i, int(b), float(i), model_name="RM2" if i % 3 else "WND")
            for i, b in enumerate(batches)
        ]
        estimators = {
            "RM2": CountingEstimator(PerfectLatencyEstimator(profiles, rm2)),
            "WND": CountingEstimator(PerfectLatencyEstimator(profiles, wnd)),
        }
        coefficients = {
            "RM2": {"g4dn.xlarge": 1.0, "r5n.large": 0.2},
            "WND": {"g4dn.xlarge": 1.0, "c5n.2xlarge": 0.5},
        }
        qos = {"RM2": rm2.qos_ms, "WND": wnd.qos_ms}
        return queries, servers, server_models, estimators, coefficients, qos

    def test_one_predict_many_call_per_model_type_pair(self, profiles, catalog, rng):
        from repro.core.cost_matrix import build_multi_model_cost_matrix

        queries, servers, server_models, estimators, coefficients, qos = self._mm_inputs(
            profiles, catalog, rng
        )
        build_multi_model_cost_matrix(
            queries, servers, server_models, estimators, 100.0, qos, coefficients
        )
        assert dict(estimators["RM2"].many_calls) == {"g4dn.xlarge": 1, "r5n.large": 1}
        assert dict(estimators["WND"].many_calls) == {"g4dn.xlarge": 1, "c5n.2xlarge": 1}

    def test_model_without_pending_queries_gets_no_estimator_traffic(
        self, profiles, catalog, rng
    ):
        from repro.core.cost_matrix import build_multi_model_cost_matrix

        queries, servers, server_models, estimators, coefficients, qos = self._mm_inputs(
            profiles, catalog, rng
        )
        rm2_only = [q for q in queries if q.model_name == "RM2"]
        matrix = build_multi_model_cost_matrix(
            rm2_only, servers, server_models, estimators, 100.0, qos, coefficients
        )
        assert not estimators["WND"].many_calls
        # the whole WND column block is cross-model for RM2 rows
        assert matrix.cross_model[:, 3:].all()

    def test_single_model_identical_to_seed_build(self, mixed_cluster, profiles, rm2, rng):
        from repro.core.cost_matrix import build_multi_model_cost_matrix

        estimator = PerfectLatencyEstimator(profiles, rm2)
        for trial in range(5):
            queries = _queries(np.random.default_rng(trial), 1 + 7 * trial)
            now_ms = 37.0 * trial
            single = build_cost_matrix(
                queries, mixed_cluster.servers, estimator, now_ms, rm2.qos_ms, COEFFS
            )
            multi = build_multi_model_cost_matrix(
                queries,
                mixed_cluster.servers,
                ["RM2"] * len(mixed_cluster),
                {"RM2": estimator},
                now_ms,
                {"RM2": rm2.qos_ms},
                {"RM2": COEFFS},
            )
            assert np.array_equal(multi.usage_ms, single.usage_ms)
            assert np.array_equal(multi.penalized_ms, single.penalized_ms)
            assert np.array_equal(multi.weighted, single.weighted)
            assert np.array_equal(multi.qos_feasible, single.qos_feasible)

    def test_policy_round_counts_one_call_per_model_type(self, profiles, catalog, rng):
        """The full policy path keeps the per-(model, type) call contract per round."""
        from repro.cloud.config import HeterogeneousConfig
        from repro.schedulers.kairos_policy import MultiModelKairosPolicy
        from repro.sim.cluster import MultiModelCluster

        configs = {
            "RM2": HeterogeneousConfig((1, 0, 2, 0), catalog),
            "WND": HeterogeneousConfig((1, 1, 0, 0), catalog),
        }
        cluster = MultiModelCluster(configs, profiles)
        estimators = {
            "RM2": CountingEstimator(PerfectLatencyEstimator(profiles, profiles.models["RM2"])),
            "WND": CountingEstimator(PerfectLatencyEstimator(profiles, profiles.models["WND"])),
        }
        policy = MultiModelKairosPolicy(estimators)
        view = cluster.active_view()
        policy.bind(view)
        for counting in estimators.values():
            counting.many_calls.clear()
        batches = rng.integers(1, 1001, size=8)
        queries = [
            Query(i, int(b), float(i), model_name="RM2" if i % 2 else "WND")
            for i, b in enumerate(batches)
        ]
        for round_idx in range(3):
            policy.schedule(50.0 * round_idx, queries, view)
        assert dict(estimators["RM2"].many_calls) == {"g4dn.xlarge": 3, "r5n.large": 3}
        assert dict(estimators["WND"].many_calls) == {"g4dn.xlarge": 3, "c5n.2xlarge": 3}


class TestEmptyCases:
    def test_no_queries_allocates_nothing(self, mixed_cluster, profiles, rm2):
        estimator = CountingEstimator(PerfectLatencyEstimator(profiles, rm2))
        matrix = build_cost_matrix(
            [], mixed_cluster.servers, estimator, 0.0, rm2.qos_ms, COEFFS
        )
        assert matrix.shape == (0, len(mixed_cluster))
        assert matrix.usage_ms.size == 0
        assert matrix.qos_feasible.dtype == bool
        assert not estimator.many_calls  # no estimator traffic for the empty matrix
        assert matrix.feasible_fraction() == 0.0

    def test_no_servers(self, profiles, rm2, rng):
        estimator = PerfectLatencyEstimator(profiles, rm2)
        matrix = build_cost_matrix(_queries(rng, 3), [], estimator, 0.0, rm2.qos_ms, COEFFS)
        assert matrix.shape == (3, 0)
        assert matrix.usage_ms.size == 0
        assert isinstance(matrix, CostMatrix)
