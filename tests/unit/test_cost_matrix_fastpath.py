"""The vectorized cost-matrix fast path: call counts, golden equivalence, empty cases.

The optimization contract is strict: one ``predict_many_ms`` call per instance *type*
per scheduling round (instead of one per server), and an ``L`` matrix element-wise
identical to the seed per-server implementation (reproduced here as
``reference_build_cost_matrix``).
"""

from collections import Counter

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.core.cost_matrix import CostMatrix, build_cost_matrix
from repro.core.latency_model import (
    LatencyEstimator,
    OnlineLatencyEstimator,
    PerfectLatencyEstimator,
)
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.cluster import Cluster
from repro.workload.query import Query


class CountingEstimator(LatencyEstimator):
    """Delegates to an inner estimator, counting ``predict_many_ms`` calls per type."""

    def __init__(self, inner: LatencyEstimator):
        self.inner = inner
        self.many_calls = Counter()
        self.scalar_calls = Counter()

    def predict_ms(self, instance_type, batch_size):
        self.scalar_calls[instance_type] += 1
        return self.inner.predict_ms(instance_type, batch_size)

    def predict_many_ms(self, instance_type, batch_sizes):
        self.many_calls[instance_type] += 1
        return self.inner.predict_many_ms(instance_type, batch_sizes)

    def observe(self, instance_type, batch_size, latency_ms):
        self.inner.observe(instance_type, batch_size, latency_ms)


def reference_build_cost_matrix(queries, servers, estimator, now_ms, qos_ms, coefficients):
    """The seed implementation: one estimator call per *server*, per-column assembly."""
    m, n = len(queries), len(servers)
    batches = np.asarray([q.batch_size for q in queries], dtype=int)
    waits = np.asarray([q.waiting_time_ms(now_ms) for q in queries], dtype=float)
    usage = np.empty((m, n), dtype=float)
    weights = np.empty(n, dtype=float)
    for j, server in enumerate(servers):
        predicted = estimator.predict_many_ms(server.type_name, batches)
        usage[:, j] = (
            server.remaining_busy_ms(now_ms) + server.dispatch_overhead_ms + predicted
        )
        weights[j] = coefficients[server.type_name]
    feasible = (usage + waits[:, None]) <= 0.98 * qos_ms + 1e-9
    penalized = np.where(feasible, usage, 10.0 * qos_ms)
    weighted = penalized * weights[None, :]
    return usage, penalized, weighted, feasible


@pytest.fixture
def mixed_cluster(profiles, rm2, catalog):
    """3 instance types, multiple servers each, staggered busy times."""
    config = HeterogeneousConfig((3, 2, 4, 0), catalog)
    cluster = Cluster(config, rm2, profiles)
    for i, server in enumerate(cluster):
        server.busy_until_ms = float((i * 13) % 50)
    return cluster


COEFFS = {"g4dn.xlarge": 1.0, "c5n.2xlarge": 0.5, "r5n.large": 0.2, "t3.xlarge": 0.1}


def _queries(rng, count, max_batch=1000):
    batches = rng.integers(1, max_batch + 1, size=count)
    return [Query(i, int(b), float(i)) for i, b in enumerate(batches)]


class TestEstimatorCallCounts:
    def test_one_predict_many_call_per_type(self, mixed_cluster, profiles, rm2, rng):
        counting = CountingEstimator(PerfectLatencyEstimator(profiles, rm2))
        queries = _queries(rng, 12)
        build_cost_matrix(queries, mixed_cluster.servers, counting, 100.0, rm2.qos_ms, COEFFS)
        present_types = set(mixed_cluster.type_names())
        assert set(counting.many_calls) == present_types
        assert all(count == 1 for count in counting.many_calls.values())

    def test_one_call_per_type_per_scheduling_round(self, mixed_cluster, profiles, rm2, rng):
        counting = CountingEstimator(PerfectLatencyEstimator(profiles, rm2))
        policy = KairosPolicy(estimator=counting)
        policy.bind(mixed_cluster, rm2.qos_ms)
        counting.many_calls.clear()
        queries = _queries(rng, 6)
        for round_idx in range(3):
            policy.schedule(50.0 * round_idx, queries, mixed_cluster)
        present_types = set(mixed_cluster.type_names())
        assert set(counting.many_calls) == present_types
        assert all(count == 3 for count in counting.many_calls.values())

    def test_empty_pending_short_circuits(self, mixed_cluster, profiles, rm2):
        counting = CountingEstimator(PerfectLatencyEstimator(profiles, rm2))
        policy = KairosPolicy(estimator=counting)
        policy.bind(mixed_cluster, rm2.qos_ms)
        counting.many_calls.clear()
        counting.scalar_calls.clear()
        assert policy.schedule(0.0, [], mixed_cluster) == []
        assert not counting.many_calls and not counting.scalar_calls


class TestGoldenEquivalence:
    @pytest.mark.parametrize("estimator_kind", ["perfect", "online"])
    def test_identical_to_seed_implementation(
        self, mixed_cluster, profiles, rm2, rng, estimator_kind
    ):
        if estimator_kind == "perfect":
            estimator = PerfectLatencyEstimator(profiles, rm2)
        else:
            estimator = OnlineLatencyEstimator()
            for server in mixed_cluster:
                profile = profiles.profile(rm2, server.instance_type)
                for batch in (1, 100, 700):
                    estimator.observe(
                        server.type_name, batch, float(profile.latency_ms(batch))
                    )
        for trial in range(5):
            queries = _queries(np.random.default_rng(trial), 1 + 7 * trial)
            now_ms = 37.0 * trial
            matrix = build_cost_matrix(
                queries, mixed_cluster.servers, estimator, now_ms, rm2.qos_ms, COEFFS
            )
            usage, penalized, weighted, feasible = reference_build_cost_matrix(
                queries, mixed_cluster.servers, estimator, now_ms, rm2.qos_ms, COEFFS
            )
            # element-wise identical, not approximately equal
            assert np.array_equal(matrix.usage_ms, usage)
            assert np.array_equal(matrix.penalized_ms, penalized)
            assert np.array_equal(matrix.weighted, weighted)
            assert np.array_equal(matrix.qos_feasible, feasible)

    def test_non_contiguous_type_layout(self, profiles, rm2, catalog, rng):
        """Interleaved types (elastic clusters after scale events) take the fancy path."""
        config = HeterogeneousConfig((2, 0, 2, 0), catalog)
        cluster = Cluster(config, rm2, profiles)
        cluster.add_server("g4dn.xlarge")  # base type appended after r5n servers
        servers = cluster.servers
        assert servers[-1].type_name == servers[0].type_name  # interleaved layout
        estimator = PerfectLatencyEstimator(profiles, rm2)
        queries = _queries(rng, 9)
        matrix = build_cost_matrix(queries, servers, estimator, 0.0, rm2.qos_ms, COEFFS)
        usage, penalized, weighted, feasible = reference_build_cost_matrix(
            queries, servers, estimator, 0.0, rm2.qos_ms, COEFFS
        )
        assert np.array_equal(matrix.usage_ms, usage)
        assert np.array_equal(matrix.weighted, weighted)


class TestEmptyCases:
    def test_no_queries_allocates_nothing(self, mixed_cluster, profiles, rm2):
        estimator = CountingEstimator(PerfectLatencyEstimator(profiles, rm2))
        matrix = build_cost_matrix(
            [], mixed_cluster.servers, estimator, 0.0, rm2.qos_ms, COEFFS
        )
        assert matrix.shape == (0, len(mixed_cluster))
        assert matrix.usage_ms.size == 0
        assert matrix.qos_feasible.dtype == bool
        assert not estimator.many_calls  # no estimator traffic for the empty matrix
        assert matrix.feasible_fraction() == 0.0

    def test_no_servers(self, profiles, rm2, rng):
        estimator = PerfectLatencyEstimator(profiles, rm2)
        matrix = build_cost_matrix(_queries(rng, 3), [], estimator, 0.0, rm2.qos_ms, COEFFS)
        assert matrix.shape == (3, 0)
        assert matrix.usage_ms.size == 0
        assert isinstance(matrix, CostMatrix)
