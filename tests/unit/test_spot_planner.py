"""Tests for risk-aware mixed-market planning (SpotAwareKairosPlanner and the
multi-model ``plan_joint_mixed``)."""

import numpy as np
import pytest

from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG
from repro.cloud.spot import SpotMarket, SpotTypeMarket
from repro.core.kairos import (
    MultiModelKairosPlanner,
    SpotAwareKairosPlanner,
    enumerate_spot_configs,
)
from repro.workload.batch_sizes import production_batch_distribution

BUDGET = 2.5
HORIZON_MS = 60_000.0


def _samples(seed=100):
    return production_batch_distribution().sample(2000, np.random.default_rng(seed))


def _market(discount=0.65, hazard=60.0, names=None):
    catalog = DEFAULT_INSTANCE_CATALOG
    offerings = [
        SpotTypeMarket(t.name, discount=discount, preemptions_per_hour=hazard)
        for t in catalog.types
        if names is None or t.name in names
    ]
    return SpotMarket(offerings, warning_ms=500.0)


def make_planner(profiles, *, market=None, **kw):
    defaults = dict(
        profiles=profiles,
        batch_samples=_samples(),
        planning_horizon_ms=HORIZON_MS,
        demand_headroom=1.6,
    )
    defaults.update(kw)
    return SpotAwareKairosPlanner("RM2", BUDGET, market=market, **defaults)


class TestEnumerateSpotConfigs:
    def test_discounted_budget_and_offered_types_only(self, profiles):
        market = _market(names=["r5n.large"])
        space = enumerate_spot_configs(0.2, DEFAULT_INSTANCE_CATALOG, market)
        # r5n at 0.149 * 0.35 = 0.05215 $/hr: 3 instances fit in 0.2
        counts = sorted(c.count_of("r5n.large") for c in space)
        assert counts == [0, 1, 2, 3]
        assert all(
            c.count_of(name) == 0
            for c in space
            for name in ("g4dn.xlarge", "c5n.2xlarge", "t3.xlarge")
        )

    def test_includes_the_empty_allocation(self, profiles):
        space = enumerate_spot_configs(1.0, DEFAULT_INSTANCE_CATALOG, _market())
        assert any(c.is_empty() for c in space)

    def test_same_catalog_object_for_fast_bound_path(self, profiles):
        space = enumerate_spot_configs(0.5, DEFAULT_INSTANCE_CATALOG, _market())
        assert all(c.catalog is DEFAULT_INSTANCE_CATALOG for c in space)


class TestPlanMixed:
    def test_no_market_degenerates_to_cheapest_covering_ondemand(self, profiles):
        planner = make_planner(profiles)
        plan = planner.plan_mixed(60.0)
        assert not plan.has_spot
        assert plan.availability == 1.0
        assert plan.demand_met and plan.floor_met
        required = 60.0 * 1.6
        assert plan.ondemand_bound >= required - 1e-9
        # no strictly cheaper on-demand config in the space covers the demand
        space = planner.enumerate()
        bounds = planner.estimator.upper_bounds_batch(space)
        cheaper = [
            c
            for c, b in zip(space, bounds)
            if b >= required - 1e-9 and c.cost_per_hour() < plan.cost_per_hour - 1e-9
        ]
        assert cheaper == []

    def test_mixed_plan_undercuts_all_ondemand(self, profiles):
        target = 60.0
        od = make_planner(profiles).plan_mixed(target)
        mixed = make_planner(profiles, market=_market()).plan_mixed(target)
        assert mixed.has_spot
        assert mixed.demand_met and mixed.floor_met
        assert mixed.cost_per_hour < od.cost_per_hour
        # the effective (risk-discounted) bound still covers the demand
        assert mixed.effective_bound >= target * 1.6 - 1e-9

    def test_effective_bound_discounts_spot_by_availability(self, profiles):
        mixed = make_planner(profiles, market=_market()).plan_mixed(60.0)
        assert 0.0 < mixed.availability < 1.0
        assert mixed.effective_bound == pytest.approx(
            mixed.ondemand_bound + mixed.availability * mixed.spot_bound
        )
        expected = _market()["r5n.large"].expected_availability(HORIZON_MS)
        # uniform market: every type shares one availability value
        assert mixed.availability == pytest.approx(expected)

    def test_ondemand_floor_is_enforced(self, profiles):
        target = 60.0
        required = target * 1.6
        for floor in (0.0, 0.4, 0.8):
            plan = make_planner(
                profiles, market=_market(), ondemand_floor=floor
            ).plan_mixed(target)
            assert plan.demand_met and plan.floor_met
            assert plan.ondemand_bound >= floor * required - 1e-9
        # a higher floor can only shift spend toward on-demand capacity
        lax = make_planner(profiles, market=_market(), ondemand_floor=0.0).plan_mixed(target)
        strict = make_planner(profiles, market=_market(), ondemand_floor=1.0).plan_mixed(target)
        assert strict.ondemand_cost_per_hour >= lax.ondemand_cost_per_hour

    def test_higher_hazard_shifts_spend_toward_ondemand(self, profiles):
        target = 60.0
        calm = make_planner(profiles, market=_market(hazard=1.0)).plan_mixed(target)
        stormy = make_planner(profiles, market=_market(hazard=600.0)).plan_mixed(target)
        # the market itself got flakier...
        assert _market(hazard=600.0)["r5n.large"].expected_availability(
            HORIZON_MS
        ) < _market(hazard=1.0)["r5n.large"].expected_availability(HORIZON_MS)
        # ...so the plan leans harder on reliable capacity and cannot get cheaper
        # (every stormy-feasible pair is calm-feasible: availability only shrinks)
        assert stormy.cost_per_hour >= calm.cost_per_hour - 1e-9
        assert stormy.spot_cost_per_hour <= calm.spot_cost_per_hour + 1e-9
        assert stormy.ondemand_cost_per_hour >= calm.ondemand_cost_per_hour - 1e-9

    def test_infeasible_demand_degrades_to_best_effort(self, profiles):
        plan = make_planner(profiles, market=_market()).plan_mixed(100_000.0)
        assert not plan.demand_met
        assert plan.cost_per_hour <= BUDGET + 1e-9

    def test_combined_config_sums_markets(self, profiles):
        plan = make_planner(profiles, market=_market()).plan_mixed(60.0)
        combined = plan.combined_config
        for name, count in combined:
            assert count == plan.ondemand_config.count_of(name) + plan.spot_config.count_of(name)

    def test_deterministic(self, profiles):
        a = make_planner(profiles, market=_market()).plan_mixed(60.0)
        b = make_planner(profiles, market=_market()).plan_mixed(60.0)
        assert a.ondemand_config == b.ondemand_config
        assert a.spot_config == b.spot_config
        assert a.effective_bound == b.effective_bound

    def test_parameter_validation(self, profiles):
        with pytest.raises(ValueError):
            make_planner(profiles, ondemand_floor=1.5)
        with pytest.raises(ValueError):
            make_planner(profiles, demand_headroom=0.5)
        with pytest.raises(ValueError):
            make_planner(profiles, planning_horizon_ms=0.0)
        planner = make_planner(profiles)
        with pytest.raises(ValueError):
            planner.plan_mixed(-1.0)


class TestPlanJointMixed:
    def make_joint(self, profiles, budget=BUDGET, **kw):
        samples = {
            name: production_batch_distribution().sample(
                2000, np.random.default_rng(100 + i)
            )
            for i, name in enumerate(("RM2", "WND"))
        }
        return MultiModelKairosPlanner(
            ["RM2", "WND"],
            budget,
            profiles=profiles,
            batch_samples_by_model=samples,
            demand_headroom={"RM2": 1.6, "WND": 2.1},
            **kw,
        )

    def test_joint_mixed_covers_targets_and_undercuts_ondemand(self, profiles):
        planner = self.make_joint(profiles)
        targets = {"RM2": 40.0, "WND": 120.0}
        od = planner.plan_joint_mixed(targets, None, planning_horizon_ms=HORIZON_MS)
        mixed = planner.plan_joint_mixed(
            targets, _market(), planning_horizon_ms=HORIZON_MS
        )
        assert od.within_budget and od.meets_all_targets
        assert mixed.within_budget and mixed.meets_all_targets
        assert mixed.total_cost_per_hour < od.total_cost_per_hour
        assert any(not a.spot_config.is_empty() for a in mixed.allocations)
        for allocation in mixed.allocations:
            headroom = {"RM2": 1.6, "WND": 2.1}[allocation.model_name]
            assert allocation.effective_bound >= allocation.target_qps * headroom - 1e-9

    def test_over_budget_falls_back_to_proportional_split(self, profiles):
        planner = self.make_joint(profiles, budget=1.0)
        plan = planner.plan_joint_mixed(
            {"RM2": 500.0, "WND": 5000.0}, _market(), planning_horizon_ms=HORIZON_MS
        )
        assert not plan.within_budget
        assert not plan.meets_all_targets

    def test_missing_target_rejected(self, profiles):
        planner = self.make_joint(profiles)
        with pytest.raises(KeyError):
            planner.plan_joint_mixed({"RM2": 20.0}, _market())

    def test_allocation_lookup(self, profiles):
        planner = self.make_joint(profiles)
        plan = planner.plan_joint_mixed(
            {"RM2": 20.0, "WND": 150.0}, _market(), planning_horizon_ms=HORIZON_MS
        )
        assert plan.allocation_of("RM2").model_name == "RM2"
        with pytest.raises(KeyError):
            plan.allocation_of("NCF")
