"""Tests for repro.cloud.instances (paper Table 4)."""

import pytest

from repro.cloud.instances import (
    DEFAULT_INSTANCE_CATALOG,
    InstanceCatalog,
    InstanceClass,
    InstanceType,
    get_instance_type,
)


class TestInstanceType:
    def test_table4_prices(self):
        assert get_instance_type("g4dn.xlarge").price_per_hour == pytest.approx(0.526)
        assert get_instance_type("c5n.2xlarge").price_per_hour == pytest.approx(0.432)
        assert get_instance_type("r5n.large").price_per_hour == pytest.approx(0.149)
        assert get_instance_type("t3.xlarge").price_per_hour == pytest.approx(0.1664)

    def test_classes(self):
        assert get_instance_type("g4dn.xlarge").instance_class == InstanceClass.GPU_ACCELERATED
        assert get_instance_type("c5n.2xlarge").instance_class == InstanceClass.COMPUTE_OPTIMIZED
        assert get_instance_type("r5n.large").instance_class == InstanceClass.MEMORY_OPTIMIZED
        assert get_instance_type("t3.xlarge").instance_class == InstanceClass.GENERAL_PURPOSE

    def test_only_gpu_is_accelerated(self):
        accelerated = [t.name for t in DEFAULT_INSTANCE_CATALOG.types if t.is_accelerated]
        assert accelerated == ["g4dn.xlarge"]

    def test_price_per_ms(self):
        t = get_instance_type("g4dn.xlarge")
        assert t.price_per_ms == pytest.approx(0.526 / 3_600_000)

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            get_instance_type("p3.2xlarge")

    def test_invalid_price_rejected(self):
        with pytest.raises(ValueError):
            InstanceType("x", InstanceClass.GENERAL_PURPOSE, price_per_hour=0.0)

    def test_invalid_class_rejected(self):
        with pytest.raises(ValueError):
            InstanceType("x", "quantum", price_per_hour=1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            InstanceType("", InstanceClass.GENERAL_PURPOSE, price_per_hour=1.0)


class TestInstanceCatalog:
    def test_default_order_and_base(self):
        assert DEFAULT_INSTANCE_CATALOG.names == [
            "g4dn.xlarge",
            "c5n.2xlarge",
            "r5n.large",
            "t3.xlarge",
        ]
        assert DEFAULT_INSTANCE_CATALOG.base_type.name == "g4dn.xlarge"
        assert len(DEFAULT_INSTANCE_CATALOG) == 4

    def test_auxiliary_types(self):
        aux = [t.name for t in DEFAULT_INSTANCE_CATALOG.auxiliary_types]
        assert "g4dn.xlarge" not in aux
        assert len(aux) == 3

    def test_price_vector_matches_order(self):
        prices = DEFAULT_INSTANCE_CATALOG.price_vector()
        assert prices[0] == pytest.approx(0.526)
        assert prices[2] == pytest.approx(0.149)

    def test_contains_and_getitem(self):
        assert "r5n.large" in DEFAULT_INSTANCE_CATALOG
        assert DEFAULT_INSTANCE_CATALOG["r5n.large"].memory_gb == pytest.approx(16.0)

    def test_index_of(self):
        assert DEFAULT_INSTANCE_CATALOG.index_of("c5n.2xlarge") == 1

    def test_with_base(self):
        swapped = DEFAULT_INSTANCE_CATALOG.with_base("r5n.large")
        assert swapped.base_type.name == "r5n.large"
        # original is untouched
        assert DEFAULT_INSTANCE_CATALOG.base_type.name == "g4dn.xlarge"

    def test_subset(self):
        sub = DEFAULT_INSTANCE_CATALOG.subset(["g4dn.xlarge", "r5n.large"])
        assert sub.names == ["g4dn.xlarge", "r5n.large"]
        assert sub.base_type.name == "g4dn.xlarge"

    def test_subset_unknown_rejected(self):
        with pytest.raises(KeyError):
            DEFAULT_INSTANCE_CATALOG.subset(["nope"])

    def test_duplicate_names_rejected(self):
        t = get_instance_type("r5n.large")
        with pytest.raises(ValueError):
            InstanceCatalog([t, t])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            InstanceCatalog([])

    def test_unknown_base_rejected(self):
        with pytest.raises(KeyError):
            InstanceCatalog([get_instance_type("r5n.large")], base_type="g4dn.xlarge")

    def test_describe_rows(self):
        rows = DEFAULT_INSTANCE_CATALOG.describe()
        assert len(rows) == 4
        assert rows[0]["is_base"] is True
        assert all("price_per_hour" in r for r in rows)
