"""Tests for repro.core.distributor (Kairos's matching-based query distribution)."""

import pytest

from repro.cloud.instances import get_instance_type
from repro.cloud.profiles import LinearLatencyProfile
from repro.core.distributor import QueryDistributor
from repro.core.latency_model import OnlineLatencyEstimator
from repro.sim.server import ServerInstance
from repro.workload.query import Query


def make_servers():
    gpu = ServerInstance(0, get_instance_type("g4dn.xlarge"), LinearLatencyProfile(10.0, 0.05))
    cpu1 = ServerInstance(1, get_instance_type("r5n.large"), LinearLatencyProfile(20.0, 0.30))
    cpu2 = ServerInstance(2, get_instance_type("r5n.large"), LinearLatencyProfile(20.0, 0.30))
    return [gpu, cpu1, cpu2]


def make_estimator():
    est = OnlineLatencyEstimator()
    for batch in (1, 500, 1000):
        est.observe("g4dn.xlarge", batch, 10.0 + 0.05 * batch)
        est.observe("r5n.large", batch, 20.0 + 0.30 * batch)
    return est


COEFFS = {"g4dn.xlarge": 1.0, "r5n.large": 60.0 / 320.0}
QOS = 100.0


@pytest.fixture
def distributor():
    return QueryDistributor(make_estimator(), COEFFS, QOS)


class TestQueryDistributor:
    def test_assignment_count_is_min_m_n(self, distributor):
        servers = make_servers()
        queries = [Query(i, 50, 0.0) for i in range(5)]
        result = distributor.distribute(0.0, queries, servers)
        assert len(result) == 3  # more queries than instances
        few = distributor.distribute(0.0, queries[:2], servers)
        assert len(few) == 2  # more instances than queries

    def test_one_query_per_server(self, distributor):
        servers = make_servers()
        queries = [Query(i, 50, 0.0) for i in range(5)]
        result = distributor.distribute(0.0, queries, servers)
        targets = [a.server_index for a in result.assignments]
        assert len(set(targets)) == len(targets)

    def test_large_query_goes_to_base(self, distributor):
        servers = make_servers()
        queries = [Query(0, 900, 0.0), Query(1, 50, 0.0), Query(2, 60, 0.0)]
        result = distributor.distribute(0.0, queries, servers)
        by_query = {a.query.query_id: a.server_index for a in result.assignments}
        assert by_query[0] == 0  # the only QoS-feasible home for the big query
        assert by_query[1] in (1, 2)
        assert by_query[2] in (1, 2)

    def test_small_queries_prefer_cheap_instances(self, distributor):
        servers = make_servers()
        queries = [Query(0, 50, 0.0)]
        result = distributor.distribute(0.0, queries, servers)
        # weighted cost on r5n (0.1875 * 35) beats the GPU (12.5)... GPU cost is 12.5,
        # CPU weighted is 6.6 -> the small query lands on a CPU, keeping the GPU free.
        assert result.assignments[0].server_index in (1, 2)

    def test_earliest_arrivals_considered_first_when_capped(self):
        distributor = QueryDistributor(
            make_estimator(), COEFFS, QOS, max_queries_per_round=2
        )
        servers = make_servers()
        queries = [Query(i, 50, float(i)) for i in range(10)]
        result = distributor.distribute(20.0, queries, servers)
        assert len(result) == 2
        assigned_ids = {a.query.query_id for a in result.assignments}
        assert assigned_ids == {0, 1}

    def test_feasibility_flag_reported(self, distributor):
        servers = make_servers()[1:]  # CPUs only
        queries = [Query(0, 900, 0.0)]
        result = distributor.distribute(0.0, queries, servers)
        assert len(result) == 1
        assert not result.assignments[0].predicted_feasible

    def test_objective_value_matches_weighted_costs(self, distributor):
        servers = make_servers()
        queries = [Query(i, 100, 0.0) for i in range(3)]
        result = distributor.distribute(0.0, queries, servers)
        manual = sum(
            result.cost_matrix.weighted[i, a.server_index]
            for i, a in enumerate(result.assignments)
        )
        assert result.objective_value == pytest.approx(manual)

    def test_empty_inputs(self, distributor):
        assert len(distributor.distribute(0.0, [], make_servers())) == 0
        assert len(distributor.distribute(0.0, [Query(0, 10, 0.0)], [])) == 0

    def test_busy_server_usage_included(self, distributor):
        servers = make_servers()
        servers[0].busy_until_ms = 80.0  # GPU busy for a long time
        queries = [Query(0, 50, 0.0)]
        result = distributor.distribute(0.0, queries, servers)
        # the small query avoids the busy GPU
        assert result.assignments[0].server_index in (1, 2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            QueryDistributor(make_estimator(), COEFFS, 0.0)
        with pytest.raises(ValueError):
            QueryDistributor(make_estimator(), COEFFS, QOS, max_queries_per_round=0)

    def test_alternative_solver_same_objective(self):
        jv = QueryDistributor(make_estimator(), COEFFS, QOS, solver_method="jv")
        hung = QueryDistributor(make_estimator(), COEFFS, QOS, solver_method="hungarian")
        servers = make_servers()
        queries = [Query(i, 30 + 40 * i, 0.0) for i in range(3)]
        assert jv.distribute(0.0, queries, servers).objective_value == pytest.approx(
            hung.distribute(0.0, queries, servers).objective_value
        )
