"""Tests for the fault-injection / graceful-degradation subsystem.

Covers the seeded fault processes (zero-hazard no-draw contract), the bounded-retry
lifecycle end to end (crash -> void in-flight -> re-queue with backoff -> dead-letter
exhaustion), transient slowdown windows, the AutoThrottle-style admission controller
(EWMA tracking, adaptive limit, shedding valve), the failed/healthy billing
partition, the controller's cooldown-bypassing crash re-plan, and byte-identity per
seed with injection enabled.
"""

import numpy as np
import pytest

from repro.cloud.billing import InstanceUsageLedger
from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG
from repro.core.controller import ElasticKairosController
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.cluster import Cluster
from repro.sim.elasticity import ElasticServingSimulation
from repro.sim.events import CrashStorm, Event, EventKind
from repro.sim.faults import (
    AdmissionController,
    FaultInjector,
    FaultProfile,
    RetryPolicy,
    select_shed_victims,
)
from repro.cloud.instances import get_instance_type
from repro.cloud.profiles import LinearLatencyProfile
from repro.sim.server import ServerInstance
from repro.workload.query import Query

pytestmark = pytest.mark.chaos

SEED = 777


def _query(qid, batch, t):
    return Query(query_id=qid, batch_size=batch, arrival_time_ms=t)


def _queries(n, *, batch=64, spacing_ms=25.0, start_ms=0.0):
    return [_query(i, batch, start_ms + i * spacing_ms) for i in range(n)]


def _cluster(profiles, rm2, counts=(2, 0, 2, 0)):
    return Cluster(HeterogeneousConfig(counts, DEFAULT_INSTANCE_CATALOG), rm2, profiles)


def _injector(**kw):
    kw.setdefault("failures_per_hour", 0.0)
    return FaultInjector.uniform(DEFAULT_INSTANCE_CATALOG, **kw)


# -- fault processes ---------------------------------------------------------------------


class TestFaultInjector:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(type_name="")
        with pytest.raises(ValueError):
            FaultProfile(type_name="x", failures_per_hour=-1.0)
        with pytest.raises(ValueError):
            FaultProfile(type_name="x", slowdown_factor=0.5)
        with pytest.raises(ValueError):
            FaultProfile(type_name="x", slowdown_duration_ms=0.0)

    def test_duplicate_and_mismatched_profiles_rejected(self):
        p = FaultProfile(type_name="a", failures_per_hour=1.0)
        with pytest.raises(ValueError):
            FaultInjector([p, p])
        with pytest.raises(ValueError):
            FaultInjector({"b": p})

    def test_zero_hazard_consumes_no_draws(self):
        """The seed-stability cornerstone: a zero-hazard injector never touches RNG."""
        injector = _injector()
        rng = np.random.default_rng(SEED)
        before = rng.bit_generator.state
        assert injector.draw_failure_delay_ms("g4dn.xlarge", rng) is None
        assert injector.draw_slowdown_delay_ms("g4dn.xlarge", rng) is None
        assert injector.draw_failure_delay_ms("not-profiled", rng) is None
        assert rng.bit_generator.state == before

    def test_positive_hazard_draws_exponential_delays(self):
        injector = _injector(failures_per_hour=60.0, slowdowns_per_hour=30.0)
        rng = np.random.default_rng(SEED)
        crash = injector.draw_failure_delay_ms("g4dn.xlarge", rng)
        slow = injector.draw_slowdown_delay_ms("g4dn.xlarge", rng)
        assert crash is not None and crash > 0
        assert slow is not None and slow > 0
        # identical stream state => identical delays (determinism per seed)
        rng2 = np.random.default_rng(SEED)
        assert injector.draw_failure_delay_ms("g4dn.xlarge", rng2) == crash
        assert injector.draw_slowdown_delay_ms("g4dn.xlarge", rng2) == slow

    def test_container_protocol(self):
        injector = _injector(failures_per_hour=1.0)
        assert len(injector) == len(DEFAULT_INSTANCE_CATALOG.types)
        assert "g4dn.xlarge" in injector
        assert injector["g4dn.xlarge"].failures_per_hour == 1.0
        with pytest.raises(KeyError):
            injector["nonexistent"]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(response_timeout_ms=0.0)

    def test_exponential_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_ms=10.0, backoff_factor=3.0)
        assert policy.backoff_ms(1) == 10.0
        assert policy.backoff_ms(2) == 30.0
        assert policy.backoff_ms(3) == 90.0
        with pytest.raises(ValueError):
            policy.backoff_ms(0)


# -- admission control -------------------------------------------------------------------


class TestAdmissionController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(target_latency_ms=0.0)
        with pytest.raises(ValueError):
            AdmissionController(target_latency_ms=100.0, min_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionController(
                target_latency_ms=100.0, initial_concurrency=1, min_concurrency=2
            )
        with pytest.raises(ValueError):
            AdmissionController(target_latency_ms=100.0, smoothing=0.0)
        with pytest.raises(ValueError):
            AdmissionController(target_latency_ms=100.0, shed_backlog_factor=0.5)

    def test_fast_completions_open_the_window(self):
        ac = AdmissionController(target_latency_ms=400.0, initial_concurrency=8)
        for _ in range(50):
            ac.observe_latency(100.0)  # 4x faster than target
        assert ac.concurrency_limit > 8

    def test_slow_completions_close_the_window(self):
        ac = AdmissionController(target_latency_ms=400.0, initial_concurrency=8)
        for _ in range(50):
            ac.observe_latency(1600.0)  # 4x slower than target
        assert ac.concurrency_limit < 8
        assert ac.concurrency_limit >= ac.min_concurrency

    def test_limit_clamped_to_bounds(self):
        ac = AdmissionController(
            target_latency_ms=400.0,
            initial_concurrency=8,
            min_concurrency=2,
            max_concurrency=16,
        )
        for _ in range(500):
            ac.observe_latency(1.0)
        assert ac.concurrency_limit == 16
        for _ in range(500):
            ac.observe_latency(100_000.0)
        assert ac.concurrency_limit == 2

    def test_ewma_smooths_one_outlier(self):
        ac = AdmissionController(target_latency_ms=400.0, smoothing=0.3)
        for _ in range(20):
            ac.observe_latency(400.0)
        on_target = ac.concurrency_limit
        ac.observe_latency(40_000.0)  # one catastrophic outlier
        assert ac.concurrency_limit >= on_target // 2  # no whipsaw to the floor

    def test_shedding_valve(self):
        ac = AdmissionController(
            target_latency_ms=400.0, initial_concurrency=4, shed_backlog_factor=2.0
        )
        assert ac.backlog_capacity() == 8
        assert ac.to_shed(8) == 0
        assert ac.to_shed(11) == 3
        ac.record_shed(3)
        assert ac.shed_count == 3

    def test_reset(self):
        ac = AdmissionController(target_latency_ms=400.0, initial_concurrency=8)
        ac.observe_latency(10_000.0)
        ac.record_shed(5)
        ac.reset()
        assert ac.concurrency_limit == 8
        assert ac.latency_ewma_ms is None
        assert ac.shed_count == 0

    def test_select_shed_victims_smallest_batch_first(self):
        pending = [_query(0, 32, 0.0), _query(1, 8, 1.0), _query(2, 128, 2.0), _query(3, 8, 3.0)]
        victims = select_shed_victims(pending, 2)
        # both batch-8 queries go first; within the class, later arrival sheds first
        assert [q.query_id for q in victims] == [3, 1]
        assert select_shed_victims(pending, 0) == []


# -- billing partition -------------------------------------------------------------------


class TestFailureBilling:
    def test_failed_interval_closes_at_crash_instant(self, catalog):
        ledger = InstanceUsageLedger(catalog)
        gpu = catalog["g4dn.xlarge"]
        ledger.start(0, gpu, 0.0)
        ledger.stop(0, 1_800_000.0, failed=True)
        (iv,) = ledger.intervals
        assert iv.failed and iv.end_ms == 1_800_000.0
        # a crashed instance is never billed past its failure instant
        assert ledger.total_cost(3_600_000.0) == pytest.approx(gpu.price_per_hour / 2)

    def test_failed_healthy_split_partitions_the_bill(self, catalog):
        ledger = InstanceUsageLedger(catalog)
        gpu = catalog["g4dn.xlarge"]
        ledger.start(0, gpu, 0.0)
        ledger.stop(0, 900_000.0, failed=True)
        ledger.start(1, gpu, 0.0)
        ledger.stop(1, 1_800_000.0)
        horizon = 3_600_000.0
        split = ledger.cost_by_failure(horizon)
        assert split[True] == pytest.approx(gpu.price_per_hour / 4)
        assert split[False] == pytest.approx(gpu.price_per_hour / 2)
        assert split[True] + split[False] == pytest.approx(ledger.total_cost(horizon))
        assert ledger.cost_of_failures(horizon) == pytest.approx(split[True])

    def test_no_failures_means_empty_partition(self, catalog):
        ledger = InstanceUsageLedger(catalog)
        ledger.start(0, catalog["g4dn.xlarge"], 0.0)
        ledger.stop(0, 1000.0)
        assert ledger.cost_of_failures(2000.0) == 0.0
        assert True not in ledger.cost_by_failure(2000.0)


# -- server slowdown windows -------------------------------------------------------------


def _server(sid=0):
    return ServerInstance(
        sid, get_instance_type("g4dn.xlarge"), LinearLatencyProfile(10.0, 0.05)
    )


class TestServerSlowdown:
    def test_slowdown_multiplies_service_inside_window(self):
        fast, slow = _server(0), _server(1)
        slow.begin_slowdown(3.0, until_ms=10_000.0)
        q = _query(0, 64, 0.0)
        _, _, s_fast = fast.dispatch(q, 0.0)
        _, _, s_slow = slow.dispatch(q, 0.0)
        assert s_slow == pytest.approx(3.0 * s_fast)

    def test_dispatch_after_window_is_unaffected(self):
        a, b = _server(0), _server(1)
        b.begin_slowdown(3.0, until_ms=100.0)
        q = _query(0, 64, 200.0)
        assert b.dispatch(q, 200.0)[2] == pytest.approx(a.dispatch(q, 200.0)[2])

    def test_end_slowdown_restores_speed(self):
        a, b = _server(0), _server(1)
        b.begin_slowdown(2.0, until_ms=1e9)
        b.end_slowdown()
        q = _query(0, 64, 0.0)
        assert b.dispatch(q, 0.0)[2] == pytest.approx(a.dispatch(q, 0.0)[2])

    def test_begin_slowdown_validates_factor(self):
        with pytest.raises(ValueError):
            _server().begin_slowdown(0.5, until_ms=100.0)

    def test_overlapping_windows_replace_not_compound(self):
        """A second window installs its factor outright: 3x then 2x is 2x, not 6x."""
        a, b = _server(0), _server(1)
        b.begin_slowdown(3.0, until_ms=10_000.0)
        b.begin_slowdown(2.0, until_ms=10_000.0)
        q = _query(0, 64, 0.0)
        assert b.dispatch(q, 0.0)[2] == pytest.approx(2.0 * a.dispatch(q, 0.0)[2])

    def test_overlapping_window_may_shorten_the_remaining_degradation(self):
        """Replacement covers the window too: the new (earlier) expiry wins."""
        a, b = _server(0), _server(1)
        b.begin_slowdown(3.0, until_ms=10_000.0)
        b.begin_slowdown(2.0, until_ms=5_000.0)
        q = _query(0, 64, 6_000.0)
        assert b.dispatch(q, 6_000.0)[2] == pytest.approx(a.dispatch(q, 6_000.0)[2])

    def test_dispatch_starting_exactly_at_expiry_is_unaffected(self):
        """The window is half-open: a start at ``until_ms`` is already outside it."""
        a, b = _server(0), _server(1)
        until = 100.0 + b.dispatch_overhead_ms
        b.begin_slowdown(3.0, until_ms=until)
        q = _query(0, 64, 100.0)
        assert b.dispatch(q, 100.0)[2] == pytest.approx(a.dispatch(q, 100.0)[2])

    def test_permanent_degradation_compounds_with_the_transient_window(self):
        """Gray degradation is a separate mechanism: the two factors multiply."""
        a, b = _server(0), _server(1)
        b.begin_slowdown(2.0, until_ms=10_000.0)
        b.begin_degradation(3.0)
        q = _query(0, 64, 0.0)
        assert b.dispatch(q, 0.0)[2] == pytest.approx(6.0 * a.dispatch(q, 0.0)[2])

    def test_repeated_degradation_onsets_compound(self):
        a, b = _server(0), _server(1)
        b.begin_degradation(2.0)
        b.begin_degradation(3.0)
        q = _query(0, 64, 0.0)
        assert b.dispatch(q, 0.0)[2] == pytest.approx(6.0 * a.dispatch(q, 0.0)[2])

    def test_begin_degradation_validates_factor(self):
        with pytest.raises(ValueError):
            _server().begin_degradation(0.9)


# -- controller crash re-plan ------------------------------------------------------------


class TestObserveFailure:
    def make_controller(self, profiles, **kw):
        defaults = dict(
            window_ms=1000.0,
            change_threshold=1.5,
            min_observations=20,
            cooldown_ms=2000.0,
            rng=0,
        )
        defaults.update(kw)
        controller = ElasticKairosController(
            "RM2", 2.5, 100.0, profiles=profiles, **defaults
        )
        controller.initial_plan()
        return controller

    def test_requires_initial_plan(self, profiles):
        controller = ElasticKairosController(
            "RM2", 2.5, 100.0, profiles=profiles, rng=0
        )
        with pytest.raises(RuntimeError):
            controller.observe_failure("g4dn.xlarge", 1000.0)

    def test_rejects_nonpositive_count(self, profiles):
        controller = self.make_controller(profiles)
        with pytest.raises(ValueError):
            controller.observe_failure("g4dn.xlarge", 1000.0, count=0)

    def test_crash_forces_replan_bypassing_cooldown(self, profiles):
        controller = self.make_controller(profiles)
        # inside the post-initial-plan cooldown a load blip would be ignored, but
        # capacity loss must re-plan immediately
        controller.observe_failure("g4dn.xlarge", 1_000.0)
        decision = controller.maybe_replan(1_000.0)
        assert decision is not None
        assert controller.failures == [(1_000.0, "g4dn.xlarge", 1)]

    def test_failures_recorded_separately_from_preemptions(self, profiles):
        controller = self.make_controller(profiles)
        controller.observe_preemption("g4dn.xlarge", 500.0)
        controller.maybe_replan(500.0)
        controller.observe_failure("c5n.2xlarge", 900.0, count=2)
        assert controller.preemptions == [(500.0, "g4dn.xlarge", 1)]
        assert controller.failures == [(900.0, "c5n.2xlarge", 2)]


# -- end-to-end lifecycle through the elastic loop ---------------------------------------


def _storm_sim(profiles, rm2, *, retry, storm_at=200.0, count=2, auto_replace=True, **kw):
    cluster = _cluster(profiles, rm2)
    faults = _injector(auto_replace=auto_replace)
    storm = Event(storm_at, EventKind.INSTANCE_FAILED, CrashStorm(count))
    return ElasticServingSimulation(
        cluster,
        KairosPolicy(),
        faults=faults,
        fault_rng=np.random.default_rng(SEED),
        retry=retry,
        scripted_events=[storm],
        startup_delay_ms=100.0,
        **kw,
    )


class TestCrashLifecycle:
    def test_storm_voids_inflight_and_requeues(self, profiles, rm2):
        """Crash -> in-flight work voided -> re-queue -> served by survivors."""
        sim = _storm_sim(profiles, rm2, retry=RetryPolicy(max_attempts=3))
        report = sim.run(_queries(40))
        assert report.instance_failures == 2
        assert report.completed_all
        assert len(report.metrics) == 40
        assert report.retries > 0  # the voided in-flight work went around again
        assert report.dead_letters == []
        voided = [e for e in report.scale_log if e.kind == "void_inflight"]
        assert voided and all(e.time_ms == 200.0 for e in voided)

    def test_crashed_instances_never_billed_past_failure(self, profiles, rm2):
        sim = _storm_sim(profiles, rm2, retry=RetryPolicy(max_attempts=3))
        report = sim.run(_queries(40))
        failed = [iv for iv in report.ledger.intervals if iv.failed]
        assert len(failed) == 2
        assert all(iv.end_ms == 200.0 for iv in failed)
        split = report.ledger.cost_by_failure(report.billing_horizon_ms)
        assert sum(split.values()) == pytest.approx(report.total_cost())

    def test_retry_budget_exhaustion_dead_letters(self, profiles, rm2):
        """max_attempts=1: the first crash-voided attempt goes straight to dead letters."""
        # a single server so the storm voids everything in flight with no survivors
        cluster = _cluster(profiles, rm2, counts=(1, 0, 0, 0))
        faults = _injector(auto_replace=False)
        storm = Event(30.0, EventKind.INSTANCE_FAILED, CrashStorm(1))
        sim = ElasticServingSimulation(
            cluster,
            KairosPolicy(),
            faults=faults,
            fault_rng=np.random.default_rng(SEED),
            retry=RetryPolicy(max_attempts=1),
            scripted_events=[storm],
        )
        report = sim.run(_queries(3, spacing_ms=5.0))
        assert report.instance_failures == 1
        assert report.dead_letters
        assert all(d.attempts == 1 for d in report.dead_letters)
        assert all(d.reason == "crash" for d in report.dead_letters)
        # conservation: every query is served, dead-lettered, or still pending
        assert (
            len(report.metrics)
            + len(report.dead_letters)
            + len(report.shed_queries)
            + report.unserved_queries
            == 3
        )

    def test_backoff_delays_the_requeue(self, profiles, rm2):
        """The re-queued arrival lands backoff_ms after the crash, not at it."""
        cluster = _cluster(profiles, rm2, counts=(2, 0, 0, 0))
        faults = _injector(auto_replace=False)
        storm = Event(30.0, EventKind.INSTANCE_FAILED, CrashStorm(1))
        base = 500.0
        sim = ElasticServingSimulation(
            cluster,
            KairosPolicy(),
            faults=faults,
            fault_rng=np.random.default_rng(SEED),
            retry=RetryPolicy(max_attempts=3, backoff_base_ms=base),
            scripted_events=[storm],
        )
        report = sim.run(_queries(4, spacing_ms=5.0))
        assert report.completed_all and report.retries > 0
        retried = [r for r in report.metrics.records if r.start_ms >= 30.0 + base]
        assert retried  # at least one attempt started only after the backoff window

    def test_auto_replace_restores_capacity(self, profiles, rm2):
        sim = _storm_sim(profiles, rm2, retry=RetryPolicy(max_attempts=3), auto_replace=True)
        report = sim.run(_queries(40))
        replacements = [
            e for e in report.scale_log if e.kind == "scale_up" and e.reason == "replace_failed"
        ]
        assert sum(e.count for e in replacements) == 2
        assert report.completed_all

    def test_no_auto_replace_serves_with_survivors(self, profiles, rm2):
        sim = _storm_sim(profiles, rm2, retry=RetryPolicy(max_attempts=3), auto_replace=False)
        report = sim.run(_queries(40))
        assert not any(e.reason == "replace_failed" for e in report.scale_log)
        assert report.completed_all  # two survivors absorb the re-queued work

    def test_response_timeout_abandons_and_retries(self, profiles, rm2):
        """A deadline shorter than any service time dead-letters everything."""
        cluster = _cluster(profiles, rm2, counts=(1, 0, 0, 0))
        sim = ElasticServingSimulation(
            cluster,
            KairosPolicy(),
            retry=RetryPolicy(max_attempts=2, backoff_base_ms=1.0, response_timeout_ms=0.5),
        )
        report = sim.run(_queries(3))
        assert len(report.metrics) == 0
        assert len(report.dead_letters) == 3
        assert all(d.reason == "timeout" and d.attempts == 2 for d in report.dead_letters)
        assert report.retries == 3  # one re-queue per query before exhaustion


class TestFaultSeedStability:
    """Runs with injection enabled are byte-identical per seed."""

    def _chaos_report(self, profiles, rm2, seed):
        cluster = _cluster(profiles, rm2)
        controller = None
        faults = _injector(
            failures_per_hour=600.0, slowdowns_per_hour=600.0, slowdown_factor=2.0,
            slowdown_duration_ms=400.0,
        )
        sim = ElasticServingSimulation(
            cluster,
            KairosPolicy(),
            controller=controller,
            faults=faults,
            fault_rng=np.random.default_rng([seed, 505]),
            retry=RetryPolicy(max_attempts=3, backoff_base_ms=20.0),
            admission=AdmissionController(target_latency_ms=400.0),
            startup_delay_ms=100.0,
        )
        return sim.run(_queries(60, spacing_ms=10.0))

    def _signature(self, report):
        return (
            tuple(
                (r.query.query_id, r.server_id, r.start_ms, r.completion_ms, r.service_ms)
                for r in report.metrics.records
            ),
            tuple((e.time_ms, e.kind, e.type_name, e.count) for e in report.scale_log),
            tuple((iv.server_id, iv.start_ms, iv.end_ms, iv.failed) for iv in report.ledger.intervals),
            report.retries,
            tuple(d.query.query_id for d in report.dead_letters),
            tuple(s.query.query_id for s in report.shed_queries),
        )

    def test_byte_identical_across_runs(self, profiles, rm2):
        a = self._chaos_report(profiles, rm2, SEED)
        b = self._chaos_report(profiles, rm2, SEED)
        assert a.instance_failures > 0  # the hazard actually fired
        assert self._signature(a) == self._signature(b)

    def test_different_seed_changes_the_fault_schedule(self, profiles, rm2):
        a = self._chaos_report(profiles, rm2, SEED)
        b = self._chaos_report(profiles, rm2, SEED + 1)
        assert self._signature(a) != self._signature(b)
