"""Tests for repro.utils.stats."""

import numpy as np
import pytest

from repro.utils.stats import RunningPercentile, StreamingStats, percentile


class TestPercentile:
    def test_matches_numpy(self, rng):
        samples = rng.normal(size=500)
        assert percentile(samples, 99) == pytest.approx(np.percentile(samples, 99))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @pytest.mark.parametrize("q", [-1, 101])
    def test_bad_quantile_rejected(self, q):
        with pytest.raises(ValueError):
            percentile([1.0], q)


class TestStreamingStats:
    def test_mean_and_variance_match_numpy(self, rng):
        data = rng.normal(loc=3.0, scale=2.0, size=1000)
        stats = StreamingStats()
        stats.extend(data)
        assert stats.count == 1000
        assert stats.mean == pytest.approx(np.mean(data))
        assert stats.variance == pytest.approx(np.var(data))
        assert stats.std == pytest.approx(np.std(data))
        assert stats.min == pytest.approx(np.min(data))
        assert stats.max == pytest.approx(np.max(data))

    def test_total(self):
        stats = StreamingStats()
        stats.extend([1.0, 2.0, 3.0])
        assert stats.total == pytest.approx(6.0)

    def test_single_sample_variance_zero(self):
        stats = StreamingStats()
        stats.add(5.0)
        assert stats.variance == 0.0

    def test_merge_equivalent_to_combined(self, rng):
        a_data = rng.normal(size=300)
        b_data = rng.normal(loc=1.0, size=200)
        a, b = StreamingStats(), StreamingStats()
        a.extend(a_data)
        b.extend(b_data)
        merged = a.merge(b)
        combined = np.concatenate([a_data, b_data])
        assert merged.count == 500
        assert merged.mean == pytest.approx(np.mean(combined))
        assert merged.variance == pytest.approx(np.var(combined))

    def test_merge_with_empty(self):
        a = StreamingStats()
        a.extend([1.0, 2.0])
        merged = a.merge(StreamingStats())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)
        merged2 = StreamingStats().merge(a)
        assert merged2.count == 2


class TestRunningPercentile:
    def test_value(self, rng):
        data = rng.uniform(size=200)
        tracker = RunningPercentile()
        tracker.extend(data)
        assert len(tracker) == 200
        assert tracker.value(50) == pytest.approx(np.percentile(data, 50))

    def test_fraction_above(self):
        tracker = RunningPercentile()
        tracker.extend([1.0, 2.0, 3.0, 4.0])
        assert tracker.fraction_above(2.5) == pytest.approx(0.5)

    def test_fraction_above_empty(self):
        assert RunningPercentile().fraction_above(1.0) == 0.0
