"""Tests for repro.utils.validation."""

import math

import numpy as np
import pytest

from repro.utils.validation import (
    approx_equal,
    check_finite,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5) == 2.5

    @pytest.mark.parametrize("value", [0, -1, float("nan"), float("inf")])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive(value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0) == 0.0

    @pytest.mark.parametrize("value", [-0.1, float("nan")])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_non_negative(value)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts(self, value):
        assert check_probability(value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_probability(value)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(5, low=5, high=5) == 5.0

    def test_exclusive_bounds_reject_edges(self):
        with pytest.raises(ValueError):
            check_in_range(5, low=5, high=10, inclusive=False)

    def test_above_high_rejected(self):
        with pytest.raises(ValueError):
            check_in_range(11, low=0, high=10)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            check_in_range(float("inf"), low=0)


class TestCheckFinite:
    def test_accepts_finite_array(self):
        out = check_finite([1.0, 2.0])
        assert isinstance(out, np.ndarray)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_finite([1.0, float("nan")])

    def test_empty_ok(self):
        assert check_finite([]).size == 0


class TestIntValidators:
    def test_positive_int_accepts_integral_float(self):
        assert check_positive_int(3.0) == 3

    @pytest.mark.parametrize("value", [0, -2, 1.5, True, "3"])
    def test_positive_int_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive_int(value)

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int(0) == 0

    @pytest.mark.parametrize("value", [-1, 2.5, False])
    def test_non_negative_int_rejects(self, value):
        with pytest.raises(ValueError):
            check_non_negative_int(value)


def test_approx_equal():
    assert approx_equal(1.0, 1.0 + 1e-12)
    assert not approx_equal(1.0, 1.001)
