"""Tests for repro.core.controller (the KairosServingSystem facade)."""

import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.core.controller import KairosServingSystem
from repro.schedulers.kairos_policy import KairosPolicy
from repro.workload.batch_sizes import FixedBatchSizes, production_batch_distribution
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


@pytest.fixture
def system(profiles):
    return KairosServingSystem(
        "RM2", budget_per_hour=2.5, profiles=profiles, rng=11,
        batch_distribution=production_batch_distribution(),
    )


class TestKairosServingSystem:
    def test_plan_is_cached(self, system):
        first = system.plan()
        second = system.plan()
        assert first is second
        forced = system.plan(force=True)
        assert forced is not first

    def test_selected_config_within_budget(self, system):
        config = system.selected_config
        assert config.fits_budget(2.5)
        assert config.total_instances >= 1

    def test_simulate_serves_all_queries(self, system):
        spec = WorkloadSpec(batch_sizes=production_batch_distribution(), num_queries=150)
        queries = WorkloadGenerator(spec).generate(40.0, rng=4)
        report = system.simulate(queries)
        assert report.completed_all
        assert report.policy_name == "KAIROS"

    def test_simulate_on_explicit_config(self, system):
        spec = WorkloadSpec(batch_sizes=FixedBatchSizes(50), num_queries=50)
        queries = WorkloadGenerator(spec).generate(20.0, rng=4)
        report = system.simulate(queries, config=HeterogeneousConfig((1, 0, 1, 0)))
        assert len(report.cluster) == 2

    def test_measure_throughput(self, system):
        result = system.measure_throughput(num_queries=250, max_iterations=4)
        assert result.qps > 0
        assert result.model_name == "RM2"

    def test_build_policy_fresh_instances(self, system):
        a = system.build_policy()
        b = system.build_policy()
        assert isinstance(a, KairosPolicy)
        assert a is not b

    def test_perfect_estimator_switch(self, profiles):
        system = KairosServingSystem(
            "WND", profiles=profiles, use_online_latency_learning=False, rng=0
        )
        policy = system.build_policy()
        assert policy._use_perfect

    def test_refine_with_kairos_plus_improves_or_matches(self, system):
        plan = system.plan()
        # cheap surrogate evaluator so the test stays fast: upper bound itself
        bounds = {tuple(c.counts): b for c, b in plan.ranked}
        result = system.refine_with_kairos_plus(
            evaluator=lambda config: bounds[tuple(config.counts)] * 0.9,
            max_evaluations=5,
        )
        assert result.num_evaluations <= 5
        assert result.best_config is not None

    def test_accepts_model_object(self, profiles, rm2):
        system = KairosServingSystem(rm2, profiles=profiles, rng=0)
        assert system.model.name == "RM2"
