"""Tests for the multi-model co-location subsystem.

Covers the model-partitioned cluster (global id space, views, routing), workload
tagging and interleaving, the joint shared-budget planner, the joint elastic
controller, the multi-model serving simulation — and the headline compatibility
contract: with exactly one registered model the multi-model pipeline is byte-identical
to the pre-existing single-model serving paths.
"""

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.core.controller import MultiModelElasticController
from repro.core.kairos import KairosPlanner, MultiModelKairosPlanner
from repro.schedulers.kairos_policy import KairosPolicy, MultiModelKairosPolicy
from repro.sim.cluster import Cluster, MultiModelCluster, ServerIdAllocator
from repro.sim.elasticity import simulate_elastic_serving
from repro.sim.events import Event, EventKind, ScaleRequest
from repro.sim.multi_model import MultiModelServingSimulation, simulate_multi_model_serving
from repro.sim.simulation import simulate_serving
from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes, production_batch_distribution
from repro.workload.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    interleave_model_streams,
)
from repro.workload.phases import LoadPhase, MultiModelTrace, PhasedTrace
from repro.workload.query import Query

SEED = 20230715


@pytest.fixture
def two_model_configs(catalog):
    return {
        "RM2": HeterogeneousConfig((1, 1, 2, 0), catalog),
        "WND": HeterogeneousConfig((1, 0, 2, 0), catalog),
    }


@pytest.fixture
def mm_cluster(two_model_configs, profiles):
    return MultiModelCluster(two_model_configs, profiles)


def _tagged_streams(num_queries=80, rates=(30.0, 120.0), seed=SEED):
    streams = {}
    for i, name in enumerate(("RM2", "WND")):
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=num_queries,
            model_name=name,
        )
        streams[name] = WorkloadGenerator(spec).generate(rate_qps=rates[i], rng=seed + i)
    return streams


# -- workload tagging ---------------------------------------------------------------------


class TestWorkloadTagging:
    def test_generator_stamps_model_tags(self):
        spec = WorkloadSpec(num_queries=5, model_name="RM2")
        queries = WorkloadGenerator(spec).generate(rate_qps=10.0, rng=0)
        assert all(q.model_name == "RM2" for q in queries)

    def test_untagged_spec_generates_untagged_queries(self):
        queries = WorkloadGenerator(WorkloadSpec(num_queries=5)).generate(10.0, rng=0)
        assert all(q.model_name is None for q in queries)

    def test_interleave_orders_and_renumbers(self):
        streams = _tagged_streams(num_queries=40)
        merged = interleave_model_streams(streams)
        assert len(merged) == 80
        times = [q.arrival_time_ms for q in merged]
        assert times == sorted(times)
        assert [q.query_id for q in merged] == list(range(80))
        # both models present, tags preserved
        assert {q.model_name for q in merged} == {"RM2", "WND"}

    def test_interleave_tags_untagged_streams(self):
        untagged = [Query(0, 8, 1.0), Query(1, 16, 2.0)]
        merged = interleave_model_streams({"RM2": untagged})
        assert all(q.model_name == "RM2" for q in merged)

    def test_multi_model_trace_is_deterministic(self):
        spec = WorkloadSpec(batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1))
        def build():
            return MultiModelTrace(
                {
                    "RM2": PhasedTrace([LoadPhase.step(20.0, 2000.0)], spec),
                    "WND": PhasedTrace([LoadPhase.step(90.0, 2000.0)], spec),
                }
            ).generate(rng=5)

        a, b = build(), build()
        assert a.queries == b.queries
        assert a.model_names == ("RM2", "WND")
        assert len(a.queries_of_model("RM2")) == len(a.per_model["RM2"].queries)


# -- cluster partitioning -----------------------------------------------------------------


class TestMultiModelCluster:
    def test_global_ids_are_unique_across_models(self, mm_cluster):
        ids = [s.server_id for s in mm_cluster]
        assert len(ids) == len(set(ids)) == 7

    def test_id_routing(self, mm_cluster):
        for name in mm_cluster.model_names:
            for server in mm_cluster.cluster_of(name):
                assert mm_cluster.model_of_server(server.server_id) == name
                assert mm_cluster.server_by_id(server.server_id) is server

    def test_single_model_ids_match_plain_cluster(self, profiles, rm2, small_config):
        mm = MultiModelCluster({"RM2": small_config}, profiles)
        plain = Cluster(small_config, rm2, profiles)
        assert [s.server_id for s in mm] == [s.server_id for s in plain]
        assert [s.type_name for s in mm] == [s.type_name for s in plain]

    def test_add_and_remove_keep_global_uniqueness(self, mm_cluster):
        added = mm_cluster.add_server("WND", "g4dn.xlarge", now_ms=10.0)
        assert mm_cluster.model_of_server(added.server_id) == "WND"
        all_ids = [s.server_id for s in mm_cluster]
        assert len(all_ids) == len(set(all_ids))
        mm_cluster.remove_server(added.server_id)
        with pytest.raises(KeyError):
            mm_cluster.server_by_id(added.server_id)

    def test_reserved_ids_resolve_their_model(self, mm_cluster):
        server_id = mm_cluster.reserve_server_id("RM2")
        assert mm_cluster.model_of_server(server_id) == "RM2"

    def test_unknown_model_raises(self, mm_cluster):
        with pytest.raises(KeyError):
            mm_cluster.cluster_of("NCF")

    def test_view_concatenates_partitions_in_model_order(self, mm_cluster):
        view = mm_cluster.active_view()
        assert len(view) == 7
        models = view.server_models()
        assert models == ["RM2"] * 4 + ["WND"] * 3
        assert view.qos_by_model() == {"RM2": 350.0, "WND": 25.0}
        assert view.model("WND").name == "WND"

    def test_view_excludes_draining_servers(self, mm_cluster):
        mm_cluster.drain_servers("RM2", "r5n.large", 1, now_ms=0.0)
        view = mm_cluster.active_view()
        assert len(view) == 6
        assert all(not s.draining for s in view)

    def test_allocator_never_reuses_ids(self):
        allocator = ServerIdAllocator()
        assert [allocator.reserve() for _ in range(3)] == [0, 1, 2]
        with pytest.raises(ValueError):
            ServerIdAllocator(start=-1)


# -- joint planning -----------------------------------------------------------------------


class TestMultiModelKairosPlanner:
    def make_planner(self, profiles, budget=2.5, **kw):
        samples = {
            name: production_batch_distribution().sample(
                2000, np.random.default_rng(100 + i)
            )
            for i, name in enumerate(("RM2", "WND"))
        }
        return MultiModelKairosPlanner(
            ["RM2", "WND"],
            budget,
            profiles=profiles,
            batch_samples_by_model=samples,
            **kw,
        )

    def test_plan_covers_every_target_within_budget(self, profiles):
        planner = self.make_planner(profiles)
        plan = planner.plan_joint({"RM2": 20.0, "WND": 150.0})
        assert plan.within_budget and plan.meets_all_targets
        assert plan.total_cost_per_hour <= 2.5 + 1e-9
        for allocation in plan.allocations:
            assert allocation.upper_bound >= allocation.target_qps

    def test_cheapest_covering_config_is_selected(self, profiles):
        planner = self.make_planner(profiles)
        plan = planner.plan_joint({"RM2": 20.0, "WND": 150.0})
        # no strictly cheaper config in the space covers the same target
        space = planner.enumerate()
        for allocation in plan.allocations:
            bounds = planner.estimators[allocation.model_name].upper_bounds_batch(space)
            required = allocation.target_qps * planner.demand_headroom[
                allocation.model_name
            ]
            cheaper_covering = [
                c
                for c, b in zip(space, bounds)
                if b >= required - 1e-9
                and c.cost_per_hour() < allocation.cost_per_hour - 1e-9
            ]
            assert cheaper_covering == []

    def test_joint_beats_equal_budget_split(self, profiles):
        """The Fig. 17 claim at planning level: joint cost < independent cost."""
        budget = 2.5
        planner = self.make_planner(profiles, budget=budget, demand_headroom={"RM2": 1.6, "WND": 2.1})
        independent = {
            name: KairosPlanner(
                name,
                budget / 2,
                profiles=profiles,
                batch_samples=planner.batch_samples_by_model[name],
            ).plan()
            for name in ("RM2", "WND")
        }
        targets = {
            name: 0.45 * independent[name].selected_upper_bound
            for name in independent
        }
        joint = planner.plan_joint(targets)
        independent_cost = sum(
            p.selected_config.cost_per_hour() for p in independent.values()
        )
        assert joint.within_budget and joint.meets_all_targets
        assert joint.total_cost_per_hour < independent_cost

    def test_over_budget_falls_back_to_proportional_split(self, profiles):
        planner = self.make_planner(profiles, budget=1.0)
        plan = planner.plan_joint({"RM2": 500.0, "WND": 5000.0})
        assert not plan.within_budget
        assert plan.total_cost_per_hour <= 1.0 + min(
            t.price_per_hour for t in profiles.catalog.types
        ) * 2  # each model gets at least the cheapest instance
        assert not plan.meets_all_targets

    def test_headroom_scales_the_requirement(self, profiles):
        lax = self.make_planner(profiles).plan_joint({"RM2": 20.0, "WND": 150.0})
        strict = self.make_planner(profiles, demand_headroom=2.0).plan_joint(
            {"RM2": 20.0, "WND": 150.0}
        )
        assert strict.total_cost_per_hour >= lax.total_cost_per_hour

    def test_missing_target_rejected(self, profiles):
        planner = self.make_planner(profiles)
        with pytest.raises(KeyError):
            planner.plan_joint({"RM2": 20.0})

    def test_invalid_headroom_rejected(self, profiles):
        with pytest.raises(ValueError):
            self.make_planner(profiles, demand_headroom=0.5)


# -- joint elastic controller --------------------------------------------------------------


class TestMultiModelElasticController:
    def make_controller(self, profiles, **kw):
        defaults = dict(
            window_ms=1000.0,
            change_threshold=1.5,
            min_observations=20,
            cooldown_ms=2000.0,
            rng=0,
        )
        defaults.update(kw)
        return MultiModelElasticController(
            ["RM2", "WND"],
            2.5,
            {"RM2": 30.0, "WND": 200.0},
            profiles=profiles,
            **defaults,
        )

    def _drive(self, ctrl, name, rate_qps, n, t0=0.0, other=None):
        t = t0
        gap = 1000.0 / rate_qps
        qid = 0
        for _ in range(n):
            t += gap
            ctrl.observe_arrival(Query(qid, 64, t, model_name=name), t)
            qid += 1
            decision = ctrl.maybe_replan(t)
            if decision is not None:
                return decision, t
        return None, t

    def test_requires_initial_plan(self, profiles):
        ctrl = self.make_controller(profiles)
        with pytest.raises(RuntimeError):
            ctrl.maybe_replan(0.0)

    def test_steady_load_never_replans(self, profiles):
        ctrl = self.make_controller(profiles)
        ctrl.initial_plan()
        t = 0.0
        for i in range(600):
            t += 5.0
            name = "RM2" if i % 7 == 0 else "WND"  # ~ the provisioned mix
            ctrl.observe_arrival(Query(i, 64, t, model_name=name), t)
            assert ctrl.maybe_replan(t) is None
        assert ctrl.decisions == []

    def test_one_models_step_triggers_joint_replan(self, profiles):
        ctrl = self.make_controller(profiles)
        plan = ctrl.initial_plan()
        assert ctrl.current_configs == plan.configs()
        # RM2 steps 30 -> 90 qps while WND stays silent; the re-plan is joint and
        # RM2's partition grows.
        decision, _ = self._drive(ctrl, "RM2", 90.0, 2000)
        assert decision is not None and ctrl.decisions == [decision]
        assert decision.observed_rates_qps["RM2"] > 45.0
        # silent WND plans for its provisioned rate, not zero
        assert decision.observed_rates_qps["WND"] == pytest.approx(200.0)
        assert "RM2" in decision.scale_deltas
        migrated = decision.old_configs["RM2"]
        for type_name, delta in decision.scale_deltas["RM2"].items():
            migrated = migrated.add(type_name, delta)
        assert migrated == decision.new_configs["RM2"]
        assert ctrl.provisioned_rate_qps("RM2") == decision.observed_rates_qps["RM2"]

    def test_untrustworthy_window_keeps_other_models_provisioning(self, profiles):
        """A model whose window is too sparse to trust must not have its partition
        re-targeted to the noisy estimate when another model triggers a re-plan."""
        ctrl = self.make_controller(profiles, cooldown_ms=0.0)
        ctrl.initial_plan()
        # two early WND arrivals: far below min_observations, window not elapsed
        ctrl.observe_arrival(Query(9000, 64, 5.0, model_name="WND"), 5.0)
        ctrl.observe_arrival(Query(9001, 64, 10.0, model_name="WND"), 10.0)
        # RM2 bursts to 200 qps (provisioned 30): trusted once >= min_observations
        decision = None
        t = 10.0
        for i in range(60):
            t += 5.0
            ctrl.observe_arrival(Query(i, 64, t, model_name="RM2"), t)
            decision = ctrl.maybe_replan(t)
            if decision is not None:
                break
        assert decision is not None
        # WND's sparse window (2 arrivals) is not trusted: the joint plan keeps
        # provisioning it for the 200 qps it was planned for, and its recorded
        # provisioned rate is unchanged.
        assert decision.observed_rates_qps["WND"] == pytest.approx(200.0)
        assert ctrl.provisioned_rate_qps("WND") == pytest.approx(200.0)

    def test_untagged_arrival_rejected(self, profiles):
        ctrl = self.make_controller(profiles)
        ctrl.initial_plan()
        with pytest.raises(ValueError):
            ctrl.observe_arrival(Query(0, 64, 1.0), 1.0)

    def test_budget_scales_with_total_load_and_is_capped(self, profiles):
        ctrl = self.make_controller(profiles, max_budget_per_hour=3.0)
        ctrl.initial_plan()
        decision, _ = self._drive(ctrl, "WND", 2000.0, 4000)
        assert decision is not None
        assert decision.budget_per_hour <= 3.0


# -- multi-model serving -------------------------------------------------------------------


class TestMultiModelServingSimulation:
    def test_serves_both_models_and_attributes_cost(self, mm_cluster):
        queries = interleave_model_streams(_tagged_streams())
        report = simulate_multi_model_serving(
            mm_cluster, MultiModelKairosPolicy(), queries, rng=3
        )
        assert report.completed_all
        assert len(report.metrics.of_model("RM2")) == 80
        assert len(report.metrics.of_model("WND")) == 80
        by_model = report.cost_by_model()
        assert set(by_model) == {"RM2", "WND"}
        assert sum(by_model.values()) == pytest.approx(report.total_cost())
        assert all(cost > 0 for cost in by_model.values())

    def test_queries_never_cross_models(self, mm_cluster):
        queries = interleave_model_streams(_tagged_streams())
        report = simulate_multi_model_serving(
            mm_cluster, MultiModelKairosPolicy(), queries, rng=3
        )
        rm2_types = {s.server_id for s in report.cluster.cluster_of("RM2")}
        for record in report.metrics.of_model("RM2").records:
            assert record.server_id in rm2_types

    def test_untagged_queries_rejected_with_two_models(self, mm_cluster):
        with pytest.raises(ValueError):
            simulate_multi_model_serving(
                mm_cluster, MultiModelKairosPolicy(), [Query(0, 8, 0.0)], rng=3
            )

    def test_unknown_model_tag_rejected(self, mm_cluster):
        with pytest.raises(KeyError):
            simulate_multi_model_serving(
                mm_cluster,
                MultiModelKairosPolicy(),
                [Query(0, 8, 0.0, model_name="NCF")],
                rng=3,
            )

    def test_scale_events_route_to_their_model_partition(self, mm_cluster):
        queries = interleave_model_streams(_tagged_streams())
        events = [
            Event(500.0, EventKind.SCALE_UP, ScaleRequest("g4dn.xlarge", 1, model_name="WND")),
            Event(900.0, EventKind.SCALE_DOWN, ScaleRequest("r5n.large", 1, model_name="RM2")),
        ]
        report = simulate_multi_model_serving(
            mm_cluster,
            MultiModelKairosPolicy(),
            queries,
            scripted_events=events,
            startup_delay_ms=200.0,
            rng=3,
        )
        assert report.completed_all
        configs = report.cluster.current_configs()
        assert configs["WND"].count_of("g4dn.xlarge") == 2
        assert configs["RM2"].count_of("r5n.large") == 1
        # the new WND instance is billed under the WND tag from the request instant
        wnd_intervals = [
            iv for iv in report.ledger.intervals if iv.tag == "WND" and iv.start_ms > 0
        ]
        assert len(wnd_intervals) == 1 and wnd_intervals[0].start_ms == 500.0

    def test_scale_request_without_model_rejected_when_ambiguous(self, mm_cluster):
        events = [Event(10.0, EventKind.SCALE_UP, ScaleRequest("g4dn.xlarge", 1))]
        with pytest.raises(ValueError):
            MultiModelServingSimulation(
                mm_cluster, MultiModelKairosPolicy(), scripted_events=events
            )

    def test_run_is_one_shot(self, mm_cluster):
        queries = interleave_model_streams(_tagged_streams(num_queries=10))
        sim = MultiModelServingSimulation(mm_cluster, MultiModelKairosPolicy(), rng=3)
        sim.run(queries)
        with pytest.raises(RuntimeError, match="one-shot"):
            sim.run(queries)

    def test_joint_replanning_end_to_end(self, profiles):
        ctrl = MultiModelElasticController(
            ["RM2", "WND"],
            2.5,
            {"RM2": 30.0, "WND": 200.0},
            profiles=profiles,
            window_ms=1000.0,
            change_threshold=1.5,
            min_observations=20,
            cooldown_ms=2000.0,
            demand_headroom={"RM2": 1.6, "WND": 2.1},
            rng=0,
        )
        plan = ctrl.initial_plan()
        cluster = MultiModelCluster(plan.configs(), profiles)
        spec = WorkloadSpec(batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1))
        trace = MultiModelTrace(
            {
                "RM2": PhasedTrace(
                    [LoadPhase.step(30.0, 2500.0), LoadPhase.step(80.0, 2500.0)], spec
                ),
                "WND": PhasedTrace([LoadPhase.step(200.0, 5000.0)], spec),
            }
        )
        result = trace.generate(rng=5)
        report = simulate_multi_model_serving(
            cluster,
            MultiModelKairosPolicy(),
            list(result.queries),
            controller=ctrl,
            startup_delay_ms=300.0,
            rng=11,
        )
        assert len(report.replans) >= 1
        # the step hit RM2, so at least one re-plan grows the RM2 partition
        assert any(
            sum(d.scale_deltas.get("RM2", {}).values()) > 0 for d in report.replans
        )
        initial_total = sum(c.total_instances for c in plan.configs().values())
        assert report.peak_instances > initial_total and report.scale_log


# -- single-model compatibility ------------------------------------------------------------


class TestSingleModelByteIdentity:
    """With one registered model the multi-model pipeline must not drift at all."""

    def _stream(self):
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=150,
        )
        return WorkloadGenerator(spec).generate(rate_qps=40.0, rng=SEED)

    @staticmethod
    def _tuples(records):
        return [
            (
                r.query.query_id,
                r.query.batch_size,
                r.query.arrival_time_ms,
                r.server_id,
                r.server_type,
                r.start_ms,
                r.completion_ms,
                r.service_ms,
            )
            for r in records
        ]

    @pytest.mark.parametrize("noisy", [False, True])
    def test_identical_to_static_and_elastic_single_model_paths(
        self, small_config, rm2, profiles, noisy
    ):
        from repro.sim.simulation import gaussian_service_noise

        noise = gaussian_service_noise(0.05) if noisy else None
        queries = self._stream()
        mm = MultiModelCluster({"RM2": small_config}, profiles)
        mm_report = simulate_multi_model_serving(
            mm,
            MultiModelKairosPolicy(),
            queries,
            noise=noise,
            rng=np.random.default_rng(SEED + 1),
        )
        static_report = simulate_serving(
            small_config,
            rm2,
            profiles,
            KairosPolicy(),
            queries,
            noise=noise,
            rng=np.random.default_rng(SEED + 1),
        )
        elastic_report = simulate_elastic_serving(
            Cluster(small_config, rm2, profiles),
            KairosPolicy(),
            queries,
            noise=noise,
            rng=np.random.default_rng(SEED + 1),
        )
        mm_tuples = self._tuples(mm_report.metrics.of_model("RM2").records)
        assert mm_tuples == self._tuples(static_report.metrics.records)
        assert mm_tuples == self._tuples(elastic_report.metrics.records)
        # summaries (derived statistics) agree byte for byte as well
        assert repr(mm_report.metrics.of_model("RM2").summary()) == repr(
            static_report.metrics.summary()
        )

    def test_untagged_queries_allowed_with_single_model(self, small_config, profiles):
        mm = MultiModelCluster({"RM2": small_config}, profiles)
        report = simulate_multi_model_serving(
            mm, MultiModelKairosPolicy(), self._stream(), rng=3
        )
        assert report.completed_all


class TestSpotDisabledByteIdentity:
    """The preemption-capable path with spot disabled must not drift at all.

    Same contract as the single-model multi-model identity above: with no market (or
    a zero-hazard one) :class:`~repro.sim.preemption.PreemptibleElasticSimulation`
    must reproduce the pre-existing elastic and static serving paths bit for bit.
    """

    def _stream(self):
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=150,
        )
        return WorkloadGenerator(spec).generate(rate_qps=40.0, rng=SEED)

    @pytest.mark.parametrize("noisy", [False, True])
    def test_no_market_identical_to_elastic_and_static(
        self, small_config, rm2, profiles, noisy
    ):
        from repro.sim.preemption import simulate_preemptible_serving
        from repro.sim.simulation import gaussian_service_noise

        noise = gaussian_service_noise(0.05) if noisy else None
        queries = self._stream()
        preemptible = simulate_preemptible_serving(
            Cluster(small_config, rm2, profiles),
            KairosPolicy(),
            queries,
            noise=noise,
            rng=np.random.default_rng(SEED + 1),
        )
        elastic = simulate_elastic_serving(
            Cluster(small_config, rm2, profiles),
            KairosPolicy(),
            queries,
            noise=noise,
            rng=np.random.default_rng(SEED + 1),
        )
        static = simulate_serving(
            small_config,
            rm2,
            profiles,
            KairosPolicy(),
            queries,
            noise=noise,
            rng=np.random.default_rng(SEED + 1),
        )
        tuples = TestSingleModelByteIdentity._tuples
        assert tuples(preemptible.metrics.records) == tuples(elastic.metrics.records)
        assert tuples(preemptible.metrics.records) == tuples(static.metrics.records)
        assert repr(preemptible.metrics.summary()) == repr(elastic.metrics.summary())
        assert preemptible.total_cost() == elastic.total_cost()
        assert preemptible.scale_log == [] and preemptible.replans == []

    def test_zero_hazard_market_identical_metrics_cheaper_bill(
        self, small_config, rm2, profiles, catalog
    ):
        """Zero hazard: no preemption events, no market-rng draws — only the bill
        changes (the spot portion is billed at the discounted rate)."""
        from repro.cloud.spot import SpotMarket
        from repro.sim.preemption import simulate_preemptible_serving

        queries = self._stream()
        market = SpotMarket.uniform(catalog, discount=0.6, preemptions_per_hour=0.0)
        spotted = simulate_preemptible_serving(
            Cluster(small_config, rm2, profiles),
            KairosPolicy(),
            queries,
            market=market,
            spot_server_ids=[2, 3],
            rng=np.random.default_rng(SEED + 1),
        )
        elastic = simulate_elastic_serving(
            Cluster(small_config, rm2, profiles),
            KairosPolicy(),
            queries,
            rng=np.random.default_rng(SEED + 1),
        )
        tuples = TestSingleModelByteIdentity._tuples
        assert tuples(spotted.metrics.records) == tuples(elastic.metrics.records)
        assert repr(spotted.metrics.summary()) == repr(elastic.metrics.summary())
        assert spotted.scale_log == []
        assert spotted.total_cost() < elastic.total_cost()


class TestShardedDispatch:
    """MultiModelKairosPolicy(sharded=True): per-model partitioned rounds."""

    def _burst_queries(self, per_model: int, models=("RM2", "WND")):
        queries = []
        qid = 0
        rng = np.random.default_rng(SEED)
        for name in models:
            for _ in range(per_model):
                queries.append(Query(qid, int(rng.integers(1, 64)), 0.0, name))
                qid += 1
        return queries

    def _cluster(self, catalog, profiles, counts=(2, 2, 3, 0)):
        return MultiModelCluster(
            {"RM2": HeterogeneousConfig(counts, catalog),
             "WND": HeterogeneousConfig(counts, catalog)},
            profiles,
        )

    def test_uncontended_round_matches_union_decisions(self, catalog, profiles):
        queries = self._burst_queries(4)  # 4 pending vs 7 eligible per model
        decisions = {}
        for sharded in (False, True):
            cluster = self._cluster(catalog, profiles)
            view = cluster.active_view()
            policy = MultiModelKairosPolicy(use_perfect_estimator=True, sharded=sharded)
            policy.bind(view)
            decisions[sharded] = {
                (q.query_id, idx) for q, idx in policy.schedule(0.0, queries, view)
            }
        assert decisions[True] == decisions[False]
        assert decisions[True]  # non-vacuous: the round committed work

    def test_contended_round_falls_back_to_union(self, catalog, profiles):
        queries = self._burst_queries(9)  # 9 pending vs 7 eligible per model
        cluster = self._cluster(catalog, profiles)
        view = cluster.active_view()
        policy = MultiModelKairosPolicy(use_perfect_estimator=True, sharded=True)
        policy.bind(view)
        union = MultiModelKairosPolicy(use_perfect_estimator=True, sharded=False)
        union.bind(view)
        got = {(q.query_id, i) for q, i in policy.schedule(0.0, queries, view)}
        want = {(q.query_id, i) for q, i in union.schedule(0.0, queries, view)}
        assert policy.union_rounds == 1 and policy.sharded_rounds == 0
        assert got == want  # the fallback IS the union matching

    def test_sharded_solves_fewer_cells(self, catalog, profiles):
        queries = self._burst_queries(4)
        cells = {}
        for sharded in (False, True):
            cluster = self._cluster(catalog, profiles)
            view = cluster.active_view()
            policy = MultiModelKairosPolicy(use_perfect_estimator=True, sharded=sharded)
            policy.bind(view)
            policy.schedule(0.0, queries, view)
            cells[sharded] = policy.solved_cells
        # 2 co-located models: the union solves every cross pair too, 2x the cells
        assert cells[False] == 2 * cells[True]

    def test_full_run_serves_same_queries_within_qos(self, catalog, profiles):
        streams = {}
        for i, (name, rate) in enumerate((("RM2", 40.0), ("WND", 120.0))):
            spec = WorkloadSpec(
                batch_sizes=TruncatedLogNormalBatchSizes(median=60, sigma=1.0),
                num_queries=120,
                model_name=name,
            )
            streams[name] = WorkloadGenerator(spec).generate(rate_qps=rate, rng=SEED + i)
        queries = interleave_model_streams(streams)
        reports = {}
        for sharded in (False, True):
            sim = MultiModelServingSimulation(
                self._cluster(catalog, profiles, counts=(2, 2, 4, 0)),
                MultiModelKairosPolicy(sharded=sharded),
                rng=np.random.default_rng(SEED + 1),
            )
            reports[sharded] = sim.run(queries)
        assert reports[True].dispatched_queries == reports[False].dispatched_queries
        assert reports[True].all_meet_qos() == reports[False].all_meet_qos()

    def test_sharded_default_off_preserves_byte_identity(self, catalog, profiles):
        # the constructor default must leave the union path untouched
        policy = MultiModelKairosPolicy()
        assert policy._sharded is False
