"""Seed-stability regression: serving runs are byte-identical per seed.

The elasticity subsystem added event kinds and cluster-membership machinery; this
suite locks down that the *static* serving path still produces bit-for-bit identical
``ServingMetrics`` for a fixed seed, run after run — including under service noise,
where the RNG draw sequence is part of the contract.  The multi-model subsystem adds
a co-located elastic scenario with the same guarantee per model, and the spot-market
subsystem a preemption scenario (hazard draws, a forced burst, re-queues, and
reactive re-provisioning) with the same byte-identity guarantee for metrics, scale
logs, and per-market billing.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.spot import SpotMarket
from repro.schedulers.kairos_policy import KairosPolicy, MultiModelKairosPolicy
from repro.sim.cluster import Cluster, MultiModelCluster
from repro.sim.events import Event, EventKind, PreemptionBurst, ScaleRequest
from repro.sim.multi_model import MultiModelServingSimulation
from repro.sim.preemption import PreemptibleElasticSimulation
from repro.sim.simulation import gaussian_service_noise, simulate_serving
from repro.workload.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    interleave_model_streams,
)
from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes

SEED = 20230627


def _record_tuple(record):
    """Every field that feeds metrics, as an exact (not approximate) tuple."""
    return (
        record.query.query_id,
        record.query.batch_size,
        record.query.arrival_time_ms,
        record.server_id,
        record.server_type,
        record.start_ms,
        record.completion_ms,
        record.service_ms,
    )


def _run(small_config, rm2, profiles, *, noise=None):
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
        num_queries=150,
    )
    queries = WorkloadGenerator(spec).generate(rate_qps=40.0, rng=SEED)
    return simulate_serving(
        small_config,
        rm2,
        profiles,
        KairosPolicy(),
        queries,
        noise=noise,
        rng=np.random.default_rng(SEED + 1),
    )


class TestSeedStability:
    def test_metrics_byte_identical_across_runs(self, small_config, rm2, profiles):
        first = _run(small_config, rm2, profiles)
        second = _run(small_config, rm2, profiles)
        r1 = [_record_tuple(r) for r in first.metrics.records]
        r2 = [_record_tuple(r) for r in second.metrics.records]
        assert r1 == r2  # exact float equality, not approx
        assert repr(first.metrics.summary()) == repr(second.metrics.summary())
        assert first.summary() == second.summary()

    def test_metrics_byte_identical_with_noise(self, small_config, rm2, profiles):
        noise = gaussian_service_noise(0.05)
        first = _run(small_config, rm2, profiles, noise=noise)
        second = _run(small_config, rm2, profiles, noise=noise)
        r1 = [_record_tuple(r) for r in first.metrics.records]
        r2 = [_record_tuple(r) for r in second.metrics.records]
        assert r1 == r2
        assert repr(first.metrics.summary()) == repr(second.metrics.summary())

    def test_different_seed_actually_changes_the_run(self, small_config, rm2, profiles):
        # guards against the stability assertions passing vacuously (e.g. a constant
        # workload that ignores the seed)
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=150,
        )
        a = WorkloadGenerator(spec).generate(rate_qps=40.0, rng=SEED)
        b = WorkloadGenerator(spec).generate(rate_qps=40.0, rng=SEED + 99)
        assert [q.arrival_time_ms for q in a] != [q.arrival_time_ms for q in b]


def _mm_elastic_run(profiles, catalog, *, noise=None):
    """A 2-model co-located elastic scenario: scripted per-model scale events."""
    cluster = MultiModelCluster(
        {
            "RM2": HeterogeneousConfig((1, 1, 2, 0), catalog),
            "WND": HeterogeneousConfig((1, 1, 1, 0), catalog),
        },
        profiles,
    )
    streams = {}
    for i, (name, rate) in enumerate((("RM2", 30.0), ("WND", 110.0))):
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=100,
            model_name=name,
        )
        streams[name] = WorkloadGenerator(spec).generate(rate_qps=rate, rng=SEED + i)
    queries = interleave_model_streams(streams)
    events = [
        Event(700.0, EventKind.SCALE_UP, ScaleRequest("r5n.large", 1, model_name="RM2")),
        Event(1400.0, EventKind.SCALE_DOWN, ScaleRequest("c5n.2xlarge", 1, model_name="WND")),
    ]
    sim = MultiModelServingSimulation(
        cluster,
        MultiModelKairosPolicy(),
        scripted_events=events,
        startup_delay_ms=250.0,
        noise=noise,
        rng=np.random.default_rng(SEED + 1),
    )
    return sim.run(queries)


class TestMultiModelSeedStability:
    """The co-located elastic path: per-model metrics byte-identical per seed."""

    def _per_model_tuples(self, report):
        return {
            name: [_record_tuple(r) for r in report.metrics.of_model(name).records]
            for name in report.metrics.model_names
        }

    def test_metrics_byte_identical_across_runs(self, profiles, catalog):
        first = _mm_elastic_run(profiles, catalog)
        second = _mm_elastic_run(profiles, catalog)
        assert self._per_model_tuples(first) == self._per_model_tuples(second)
        assert repr(first.metrics.summary()) == repr(second.metrics.summary())
        assert first.cost_by_model() == second.cost_by_model()
        assert [
            (e.time_ms, e.kind, e.type_name, e.count) for e in first.scale_log
        ] == [(e.time_ms, e.kind, e.type_name, e.count) for e in second.scale_log]
        # the scripted elasticity actually fired (non-vacuous scenario)
        assert any(e.kind == "instance_ready" for e in first.scale_log)
        assert any(e.kind == "scale_down" for e in first.scale_log)

    def test_metrics_byte_identical_with_noise(self, profiles, catalog):
        noise = gaussian_service_noise(0.05)
        first = _mm_elastic_run(profiles, catalog, noise=noise)
        second = _mm_elastic_run(profiles, catalog, noise=noise)
        assert self._per_model_tuples(first) == self._per_model_tuples(second)
        assert repr(first.metrics.summary()) == repr(second.metrics.summary())

    def test_noise_actually_perturbs_the_run(self, profiles, catalog):
        # non-vacuousness: the noisy run differs from the noiseless one
        clean = _mm_elastic_run(profiles, catalog)
        noisy = _mm_elastic_run(profiles, catalog, noise=gaussian_service_noise(0.05))
        assert self._per_model_tuples(clean) != self._per_model_tuples(noisy)


def _spot_run(profiles, catalog, *, noise=None):
    """A preemption scenario: nonzero hazard, a forced burst, and re-provisioning."""
    cluster = Cluster(HeterogeneousConfig((1, 0, 3, 0), catalog), profiles.models["RM2"], profiles)
    market = SpotMarket.uniform(
        catalog, discount=0.65, preemptions_per_hour=2_400.0, warning_ms=30.0
    )
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=40, sigma=1.1),
        num_queries=150,
    )
    queries = WorkloadGenerator(spec).generate(rate_qps=60.0, rng=SEED)
    events = [Event(900.0, EventKind.PREEMPTION_WARNING, PreemptionBurst(count=2))]
    sim = PreemptibleElasticSimulation(
        cluster,
        KairosPolicy(),
        market=market,
        spot_server_ids=[2, 3],
        scripted_events=events,
        startup_delay_ms=150.0,
        noise=noise,
        rng=np.random.default_rng(SEED + 1),
        market_rng=np.random.default_rng(SEED + 2),
    )
    return sim.run(queries)


class TestSpotSeedStability:
    """The preemption path: metrics, scale log, and billing byte-identical per seed."""

    def _scale_tuples(self, report):
        return [
            (e.time_ms, e.kind, e.type_name, e.count, e.reason) for e in report.scale_log
        ]

    def test_metrics_byte_identical_across_runs(self, profiles, catalog):
        first = _spot_run(profiles, catalog)
        second = _spot_run(profiles, catalog)
        assert [_record_tuple(r) for r in first.metrics.records] == [
            _record_tuple(r) for r in second.metrics.records
        ]
        assert repr(first.metrics.summary()) == repr(second.metrics.summary())
        assert self._scale_tuples(first) == self._scale_tuples(second)
        assert first.ledger.cost_by_market(first.billing_horizon_ms) == (
            second.ledger.cost_by_market(second.billing_horizon_ms)
        )
        # non-vacuous: the preemption machinery actually fired
        kinds = [e.kind for e in first.scale_log]
        assert "preemption_warning" in kinds and "preempted" in kinds
        assert any(e.kind == "scale_up" and e.reason == "reprovision" for e in first.scale_log)

    def test_metrics_byte_identical_with_noise(self, profiles, catalog):
        noise = gaussian_service_noise(0.05)
        first = _spot_run(profiles, catalog, noise=noise)
        second = _spot_run(profiles, catalog, noise=noise)
        assert [_record_tuple(r) for r in first.metrics.records] == [
            _record_tuple(r) for r in second.metrics.records
        ]
        assert repr(first.metrics.summary()) == repr(second.metrics.summary())
        assert self._scale_tuples(first) == self._scale_tuples(second)

    def test_noise_actually_perturbs_the_run(self, profiles, catalog):
        clean = _spot_run(profiles, catalog)
        noisy = _spot_run(profiles, catalog, noise=gaussian_service_noise(0.05))
        assert [_record_tuple(r) for r in clean.metrics.records] != [
            _record_tuple(r) for r in noisy.metrics.records
        ]


# The Fig. 16 latency-noise measurement at the scale where deferred-violation
# handling fires, printed exactly.  Kept small enough that the subprocess
# runs below stay in the low seconds.
_HASH_SEED_SNIPPET = """\
from repro.analysis.robustness import _normalized_vs_homogeneous
from repro.analysis.settings import ExperimentSettings

settings = ExperimentSettings(num_queries=250, capacity_iterations=4, monitor_samples=1000)
rows = _normalized_vs_homogeneous(settings, ["RM2"], prediction_noise_std=0.05)
print(repr(rows))
"""


class TestHashSeedStability:
    """Results must not depend on ``PYTHONHASHSEED``.

    String-set iteration order is hash-randomized per interpreter, so any code
    that probes a stochastic estimator while iterating a ``set`` of type names
    (the hopeless-query check did, before being fixed) consumes RNG draws in a
    process-dependent order and produces irreproducible results files.  The
    in-process byte-identity tests above cannot see this — hash order is fixed
    within one interpreter — so this test compares fresh interpreters with
    several different hash seeds (1 vs 3 was observed to diverge pre-fix; the
    extra seeds guard against a future hash-order dependency whose particular
    string contents happen to agree on any one pair).
    """

    def test_noisy_measure_identical_across_hash_seeds(self):
        src_root = str(Path(repro.__file__).resolve().parents[1])
        outputs = []
        for hash_seed in ("1", "3", "42"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", _HASH_SEED_SNIPPET],
                capture_output=True,
                text=True,
                env=env,
                timeout=300,
                check=True,
            )
            outputs.append(proc.stdout)
        assert len(set(outputs)) == 1, outputs
        assert "RM2" in outputs[0]  # non-vacuous: the measurement actually ran


# ---------------------------------------------------------------------------------------
# PR 5 scheduling-round engine overhaul: byte-identity against the pre-overhaul code
# ---------------------------------------------------------------------------------------
#
# The digests below were captured by running these exact scenarios on the commit
# *before* the engine overhaul (flat-array JV core, equal-timestamp pop_batch
# coalescing, incremental cost matrices, single-query fast paths) with
# tools/_capture_digests.py.  Asserting them here proves the rewritten paths
# reproduce the seed event-at-a-time loop's ServingMetrics (and scale logs) byte for
# byte — per seed, with and without service noise — not merely that repeat runs of
# the new code agree with each other.
_PRE_OVERHAUL_DIGESTS = {
    "single": "f67ab790c496cd9e",
    "single_noise": "cc785bb03df65671",
    "elastic": "1610351554e02bb5",
    "elastic_noise": "b92f5dffb59cc36f",
    "multi_model": "79423442308345fb",
    "multi_model_noise": "7e79891c2152b2b3",
    "preemption": "8331a67057e7551e",
    "preemption_noise": "8973360085b9cfc9",
}


def _digest_of(parts):
    import hashlib

    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode())
    return h.hexdigest()[:16]


class TestEngineOverhaulByteIdentity:
    """Coalesced + incremental + rewritten-solver paths vs the pre-PR implementation."""

    def _noise(self, noisy):
        return gaussian_service_noise(0.05) if noisy else None

    @pytest.mark.parametrize("noisy,key", [(False, "single"), (True, "single_noise")])
    def test_single_model(self, profiles, catalog, noisy, key):
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=150,
        )
        queries = WorkloadGenerator(spec).generate(rate_qps=40.0, rng=SEED)
        report = simulate_serving(
            HeterogeneousConfig((1, 1, 2, 0), catalog),
            profiles.models["RM2"],
            profiles,
            KairosPolicy(),
            queries,
            noise=self._noise(noisy),
            rng=np.random.default_rng(SEED + 1),
        )
        digest = _digest_of([_record_tuple(r) for r in report.metrics.records])
        assert digest == _PRE_OVERHAUL_DIGESTS[key]

    @pytest.mark.parametrize("noisy,key", [(False, "elastic"), (True, "elastic_noise")])
    def test_elastic(self, profiles, catalog, noisy, key):
        from repro.sim.elasticity import ElasticServingSimulation

        cluster = Cluster(
            HeterogeneousConfig((1, 1, 2, 0), catalog), profiles.models["RM2"], profiles
        )
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=150,
        )
        queries = WorkloadGenerator(spec).generate(rate_qps=50.0, rng=SEED)
        events = [
            Event(600.0, EventKind.SCALE_UP, ScaleRequest("r5n.large", 1)),
            Event(1500.0, EventKind.SCALE_DOWN, ScaleRequest("c5n.2xlarge", 1)),
        ]
        sim = ElasticServingSimulation(
            cluster,
            KairosPolicy(),
            scripted_events=events,
            startup_delay_ms=250.0,
            noise=self._noise(noisy),
            rng=np.random.default_rng(SEED + 1),
        )
        report = sim.run(queries)
        digest = _digest_of(
            [_record_tuple(r) for r in report.metrics.records]
            + [(e.time_ms, e.kind, e.type_name, e.count) for e in report.scale_log]
        )
        assert digest == _PRE_OVERHAUL_DIGESTS[key]
        # non-vacuous: the scripted elasticity actually fired
        assert any(e.kind == "instance_ready" for e in report.scale_log)

    @pytest.mark.parametrize(
        "noisy,key", [(False, "multi_model"), (True, "multi_model_noise")]
    )
    def test_multi_model(self, profiles, catalog, noisy, key):
        report = _mm_elastic_run(profiles, catalog, noise=self._noise(noisy))
        parts = []
        for name in report.metrics.model_names:
            parts.extend(_record_tuple(r) for r in report.metrics.of_model(name).records)
        parts.extend(
            (e.time_ms, e.kind, e.type_name, e.count) for e in report.scale_log
        )
        assert _digest_of(parts) == _PRE_OVERHAUL_DIGESTS[key]

    @pytest.mark.parametrize(
        "noisy,key", [(False, "preemption"), (True, "preemption_noise")]
    )
    def test_preemption(self, profiles, catalog, noisy, key):
        report = _spot_run(profiles, catalog, noise=self._noise(noisy))
        digest = _digest_of(
            [_record_tuple(r) for r in report.metrics.records]
            + [
                (e.time_ms, e.kind, e.type_name, e.count, e.reason)
                for e in report.scale_log
            ]
        )
        assert digest == _PRE_OVERHAUL_DIGESTS[key]
        # non-vacuous: the preemption machinery actually fired
        assert "preempted" in [e.kind for e in report.scale_log]
