"""Seed-stability regression: ``simulate_serving`` is byte-identical per seed.

The elasticity subsystem added event kinds and cluster-membership machinery; this
suite locks down that the *static* serving path still produces bit-for-bit identical
``ServingMetrics`` for a fixed seed, run after run — including under service noise,
where the RNG draw sequence is part of the contract.
"""

import numpy as np
import pytest

from repro.sim.simulation import gaussian_service_noise, simulate_serving
from repro.schedulers.kairos_policy import KairosPolicy
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes

SEED = 20230627


def _record_tuple(record):
    """Every field that feeds metrics, as an exact (not approximate) tuple."""
    return (
        record.query.query_id,
        record.query.batch_size,
        record.query.arrival_time_ms,
        record.server_id,
        record.server_type,
        record.start_ms,
        record.completion_ms,
        record.service_ms,
    )


def _run(small_config, rm2, profiles, *, noise=None):
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
        num_queries=150,
    )
    queries = WorkloadGenerator(spec).generate(rate_qps=40.0, rng=SEED)
    return simulate_serving(
        small_config,
        rm2,
        profiles,
        KairosPolicy(),
        queries,
        noise=noise,
        rng=np.random.default_rng(SEED + 1),
    )


class TestSeedStability:
    def test_metrics_byte_identical_across_runs(self, small_config, rm2, profiles):
        first = _run(small_config, rm2, profiles)
        second = _run(small_config, rm2, profiles)
        r1 = [_record_tuple(r) for r in first.metrics.records]
        r2 = [_record_tuple(r) for r in second.metrics.records]
        assert r1 == r2  # exact float equality, not approx
        assert repr(first.metrics.summary()) == repr(second.metrics.summary())
        assert first.summary() == second.summary()

    def test_metrics_byte_identical_with_noise(self, small_config, rm2, profiles):
        noise = gaussian_service_noise(0.05)
        first = _run(small_config, rm2, profiles, noise=noise)
        second = _run(small_config, rm2, profiles, noise=noise)
        r1 = [_record_tuple(r) for r in first.metrics.records]
        r2 = [_record_tuple(r) for r in second.metrics.records]
        assert r1 == r2
        assert repr(first.metrics.summary()) == repr(second.metrics.summary())

    def test_different_seed_actually_changes_the_run(self, small_config, rm2, profiles):
        # guards against the stability assertions passing vacuously (e.g. a constant
        # workload that ignores the seed)
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=150,
        )
        a = WorkloadGenerator(spec).generate(rate_qps=40.0, rng=SEED)
        b = WorkloadGenerator(spec).generate(rate_qps=40.0, rng=SEED + 99)
        assert [q.arrival_time_ms for q in a] != [q.arrival_time_ms for q in b]
