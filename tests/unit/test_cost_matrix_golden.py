"""Golden regression tests for the cost-matrix QoS semantics (paper Eqs. 2-8).

These pin the exact numeric behaviour of ``build_cost_matrix`` against hand-computed
3x3 matrices: the ``xi = 0.98`` QoS headroom, the ``10 * T_qos`` penalty for
infeasible pairs, and the ``C_j`` column weighting.  The elasticity refactor routes
scheduling through views of mutating clusters; if anything in that plumbing shifted
Eq. 2-8 behaviour, these exact-equality tests fail first.
"""

import numpy as np
import pytest

from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG
from repro.core.cost_matrix import (
    DEFAULT_PENALTY_FACTOR,
    DEFAULT_QOS_HEADROOM,
    build_cost_matrix,
    build_multi_model_cost_matrix,
)
from repro.sim.server import ServerInstance
from repro.workload.query import Query


class TableEstimator:
    """Latency oracle returning hand-picked values per (instance type, batch size)."""

    def __init__(self, table):
        self.table = table

    def predict_ms(self, type_name, batch_size):
        return self.table[type_name][batch_size]

    def predict_many_ms(self, type_name, batches):
        return np.asarray([self.table[type_name][int(b)] for b in batches], dtype=float)


LATENCIES = {
    "g4dn.xlarge": {8: 20.0, 16: 30.0, 32: 40.0},
    "c5n.2xlarge": {8: 40.0, 16: 60.0, 32: 90.0},
    "r5n.large": {8: 50.0, 16: 80.0, 32: 120.0},
}

COEFFICIENTS = {"g4dn.xlarge": 1.0, "c5n.2xlarge": 0.5, "r5n.large": 0.25}


def make_server(server_id, type_name, profiles, rm2, *, busy_until=0.0, overhead=0.0):
    itype = DEFAULT_INSTANCE_CATALOG[type_name]
    return ServerInstance(
        server_id=server_id,
        instance_type=itype,
        profile=profiles.profile(rm2, itype),
        busy_until_ms=busy_until,
        dispatch_overhead_ms=overhead,
    )


@pytest.fixture
def golden_inputs(profiles, rm2):
    # now = 10: waits are 0, 6, 10 ms for arrivals at 10, 4, 0.
    queries = [
        Query(query_id=0, batch_size=8, arrival_time_ms=10.0),
        Query(query_id=1, batch_size=16, arrival_time_ms=4.0),
        Query(query_id=2, batch_size=32, arrival_time_ms=0.0),
    ]
    servers = [
        make_server(0, "g4dn.xlarge", profiles, rm2, busy_until=30.0),  # 20 ms backlog
        make_server(1, "c5n.2xlarge", profiles, rm2),
        make_server(2, "r5n.large", profiles, rm2),
    ]
    return queries, servers


class TestGoldenCostMatrix:
    """Hand-computed 3x3 matrices at qos_ms=100, now_ms=10."""

    def build(self, golden_inputs, **kwargs):
        queries, servers = golden_inputs
        return build_cost_matrix(
            queries,
            servers,
            TableEstimator(LATENCIES),
            now_ms=10.0,
            qos_ms=100.0,
            coefficients=COEFFICIENTS,
            **kwargs,
        )

    def test_default_constants_are_the_papers(self):
        assert DEFAULT_QOS_HEADROOM == 0.98
        assert DEFAULT_PENALTY_FACTOR == 10.0

    def test_usage_matrix(self, golden_inputs):
        cm = self.build(golden_inputs)
        # L[i, j] = remaining busy (20 on the g4dn, 0 elsewhere) + predicted latency
        expected = np.array(
            [
                [40.0, 40.0, 50.0],
                [50.0, 60.0, 80.0],
                [60.0, 90.0, 120.0],
            ]
        )
        np.testing.assert_array_equal(cm.usage_ms, expected)

    def test_feasibility_uses_098_headroom_with_waiting_time(self, golden_inputs):
        cm = self.build(golden_inputs)
        # feasible iff usage + wait <= 0.98 * 100 = 98:
        #   q2 (wait 10): 60+10=70 ok; 90+10=100 > 98; 120+10=130 > 98
        expected = np.array(
            [
                [True, True, True],
                [True, True, True],
                [True, False, False],
            ]
        )
        np.testing.assert_array_equal(cm.qos_feasible, expected)
        assert cm.feasible_fraction() == pytest.approx(7.0 / 9.0)

    def test_penalty_is_ten_times_qos(self, golden_inputs):
        cm = self.build(golden_inputs)
        expected = np.array(
            [
                [40.0, 40.0, 50.0],
                [50.0, 60.0, 80.0],
                [60.0, 1000.0, 1000.0],
            ]
        )
        np.testing.assert_array_equal(cm.penalized_ms, expected)

    def test_coefficient_weighting(self, golden_inputs):
        cm = self.build(golden_inputs)
        # weighted = C_j * penalized, column-wise C = (1.0, 0.5, 0.25)
        expected = np.array(
            [
                [40.0, 20.0, 12.5],
                [50.0, 30.0, 20.0],
                [60.0, 500.0, 250.0],
            ]
        )
        np.testing.assert_array_equal(cm.weighted, expected)

    def test_exact_headroom_boundary_is_feasible(self, profiles, rm2):
        # usage + wait == 98 exactly: with wait 0 and latency 98 the pair must count
        # as feasible (the headroom comparison carries a 1e-9 tolerance).
        queries = [Query(query_id=0, batch_size=8, arrival_time_ms=10.0)]
        servers = [make_server(0, "g4dn.xlarge", profiles, rm2)]
        cm = build_cost_matrix(
            queries,
            servers,
            TableEstimator({"g4dn.xlarge": {8: 98.0}}),
            now_ms=10.0,
            qos_ms=100.0,
            coefficients={"g4dn.xlarge": 1.0},
        )
        assert cm.qos_feasible[0, 0]
        # one epsilon beyond the headroom flips to the penalty
        cm2 = build_cost_matrix(
            queries,
            servers,
            TableEstimator({"g4dn.xlarge": {8: 98.001}}),
            now_ms=10.0,
            qos_ms=100.0,
            coefficients={"g4dn.xlarge": 1.0},
        )
        assert not cm2.qos_feasible[0, 0]
        assert cm2.penalized_ms[0, 0] == 1000.0

    def test_dispatch_overhead_enters_usage(self, profiles, rm2):
        queries = [Query(query_id=0, batch_size=8, arrival_time_ms=10.0)]
        servers = [make_server(0, "g4dn.xlarge", profiles, rm2, overhead=3.0)]
        cm = build_cost_matrix(
            queries,
            servers,
            TableEstimator(LATENCIES),
            now_ms=10.0,
            qos_ms=100.0,
            coefficients=COEFFICIENTS,
        )
        assert cm.usage_ms[0, 0] == 23.0

    def test_custom_headroom_and_penalty_respected(self, golden_inputs):
        cm = self.build(golden_inputs, qos_headroom=0.5, penalty_factor=2.0)
        # threshold = 50 (inclusive): q0 fits everywhere (40, 40, exactly 50); every
        # other pair exceeds it once the waiting time is added.
        expected_feasible = np.array(
            [
                [True, True, True],
                [False, False, False],
                [False, False, False],
            ]
        )
        np.testing.assert_array_equal(cm.qos_feasible, expected_feasible)
        assert cm.penalized_ms[2, 2] == 200.0

    def test_non_positive_coefficient_rejected(self, golden_inputs):
        queries, servers = golden_inputs
        with pytest.raises(ValueError):
            build_cost_matrix(
                queries,
                servers,
                TableEstimator(LATENCIES),
                now_ms=10.0,
                qos_ms=100.0,
                coefficients={**COEFFICIENTS, "r5n.large": 0.0},
            )


class TestGoldenMultiModelCostMatrix:
    """The joint matrix, pinned against hand-computed values.

    Single-model case: element-wise identical to the seed single-model matrix.
    Two-model case: a 2-model x 3-type fixture with every same-model entry
    hand-computed and every cross-model entry carrying the row model's penalty.
    """

    def test_single_model_identical_to_seed_matrix(self, golden_inputs):
        queries, servers = golden_inputs
        single = build_cost_matrix(
            queries,
            servers,
            TableEstimator(LATENCIES),
            now_ms=10.0,
            qos_ms=100.0,
            coefficients=COEFFICIENTS,
        )
        multi = build_multi_model_cost_matrix(
            queries,  # untagged: legal with exactly one registered model
            servers,
            ["M"] * len(servers),
            {"M": TableEstimator(LATENCIES)},
            now_ms=10.0,
            qos_ms_by_model={"M": 100.0},
            coefficients_by_model={"M": COEFFICIENTS},
        )
        np.testing.assert_array_equal(multi.usage_ms, single.usage_ms)
        np.testing.assert_array_equal(multi.penalized_ms, single.penalized_ms)
        np.testing.assert_array_equal(multi.weighted, single.weighted)
        np.testing.assert_array_equal(multi.qos_feasible, single.qos_feasible)
        assert not multi.cross_model.any()

    @pytest.fixture
    def two_model_inputs(self, profiles, rm2):
        # now = 10: waits are 0, 6, 10 ms.  Queries q0/q1 target model A (QoS 100),
        # q2 targets model B (QoS 50).  Servers: s0 (g4dn, A, 20 ms backlog),
        # s1 (c5n, A), s2 (r5n, B).
        queries = [
            Query(query_id=0, batch_size=8, arrival_time_ms=10.0, model_name="A"),
            Query(query_id=1, batch_size=16, arrival_time_ms=4.0, model_name="A"),
            Query(query_id=2, batch_size=8, arrival_time_ms=0.0, model_name="B"),
        ]
        servers = [
            make_server(0, "g4dn.xlarge", profiles, rm2, busy_until=30.0),
            make_server(1, "c5n.2xlarge", profiles, rm2),
            make_server(2, "r5n.large", profiles, rm2),
        ]
        estimators = {
            "A": TableEstimator(
                {"g4dn.xlarge": {8: 20.0, 16: 30.0}, "c5n.2xlarge": {8: 40.0, 16: 60.0}}
            ),
            "B": TableEstimator({"r5n.large": {8: 30.0}}),
        }
        return queries, servers, ["A", "A", "B"], estimators

    def build(self, two_model_inputs):
        queries, servers, server_models, estimators = two_model_inputs
        return build_multi_model_cost_matrix(
            queries,
            servers,
            server_models,
            estimators,
            now_ms=10.0,
            qos_ms_by_model={"A": 100.0, "B": 50.0},
            coefficients_by_model={
                "A": {"g4dn.xlarge": 1.0, "c5n.2xlarge": 0.5},
                "B": {"r5n.large": 0.25},
            },
        )

    def test_two_model_usage_matrix(self, two_model_inputs):
        cm = self.build(two_model_inputs)
        # Same-model entries: remaining busy (20 on s0) + predicted latency.
        # Cross-model entries: the row model's penalty (10 * 100 for A, 10 * 50 for B).
        expected = np.array(
            [
                [40.0, 40.0, 1000.0],
                [50.0, 60.0, 1000.0],
                [500.0, 500.0, 30.0],
            ]
        )
        np.testing.assert_array_equal(cm.usage_ms, expected)

    def test_two_model_feasibility_uses_each_models_qos(self, two_model_inputs):
        cm = self.build(two_model_inputs)
        # A rows: threshold 0.98 * 100 = 98; B row: 0.98 * 50 = 49 with wait 10
        # (30 + 10 = 40 <= 49).  Cross-model pairs are never feasible.
        expected = np.array(
            [
                [True, True, False],
                [True, True, False],
                [False, False, True],
            ]
        )
        np.testing.assert_array_equal(cm.qos_feasible, expected)
        np.testing.assert_array_equal(
            cm.cross_model,
            np.array(
                [
                    [False, False, True],
                    [False, False, True],
                    [True, True, False],
                ]
            ),
        )

    def test_two_model_penalty_and_weighting(self, two_model_inputs):
        cm = self.build(two_model_inputs)
        expected_penalized = np.array(
            [
                [40.0, 40.0, 1000.0],
                [50.0, 60.0, 1000.0],
                [500.0, 500.0, 30.0],
            ]
        )
        np.testing.assert_array_equal(cm.penalized_ms, expected_penalized)
        # column weights come from the *column* model: A's (1.0, 0.5), B's 0.25
        expected_weighted = np.array(
            [
                [40.0, 20.0, 250.0],
                [50.0, 30.0, 250.0],
                [500.0, 250.0, 7.5],
            ]
        )
        np.testing.assert_array_equal(cm.weighted, expected_weighted)

    def test_untagged_query_rejected_with_two_models(self, two_model_inputs):
        queries, servers, server_models, estimators = two_model_inputs
        queries = [queries[0], Query(query_id=9, batch_size=8, arrival_time_ms=0.0)]
        with pytest.raises(ValueError):
            build_multi_model_cost_matrix(
                queries,
                servers,
                server_models,
                estimators,
                now_ms=10.0,
                qos_ms_by_model={"A": 100.0, "B": 50.0},
                coefficients_by_model={
                    "A": {"g4dn.xlarge": 1.0, "c5n.2xlarge": 0.5},
                    "B": {"r5n.large": 0.25},
                },
            )

    def test_missing_coefficient_rejected(self, two_model_inputs):
        queries, servers, server_models, estimators = two_model_inputs
        with pytest.raises(KeyError):
            build_multi_model_cost_matrix(
                queries,
                servers,
                server_models,
                estimators,
                now_ms=10.0,
                qos_ms_by_model={"A": 100.0, "B": 50.0},
                coefficients_by_model={"A": {"g4dn.xlarge": 1.0, "c5n.2xlarge": 0.5}},
            )
