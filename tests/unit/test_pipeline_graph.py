"""Unit tests for the task-graph core: validation, topology, critical paths."""

from __future__ import annotations

import pytest

from repro.pipeline import (
    TaskGraph,
    TaskStage,
    chain_graph,
    diamond_graph,
    fan_out_in_graph,
)


def diamond() -> TaskGraph:
    return TaskGraph(
        graph_id=1,
        stages=(
            TaskStage("src", "RM2", 16),
            TaskStage("left", "RM2", 32, ("src",)),
            TaskStage("right", "WND", 8, ("src",)),
            TaskStage("sink", "WND", 4, ("left", "right")),
        ),
        deadline_ms=500.0,
    )


class TestTaskStage:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            TaskStage("", "RM2", 8)

    def test_rejects_empty_model(self):
        with pytest.raises(ValueError, match="must name a model"):
            TaskStage("s0", "", 8)

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError, match="batch_size"):
            TaskStage("s0", "RM2", 0)

    def test_rejects_duplicate_parent(self):
        with pytest.raises(ValueError, match="duplicate parent"):
            TaskStage("s1", "RM2", 8, ("s0", "s0"))

    def test_rejects_self_parent(self):
        with pytest.raises(ValueError, match="own parent"):
            TaskStage("s0", "RM2", 8, ("s0",))


class TestTaskGraphValidation:
    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError, match="no stages"):
            TaskGraph(1, (), deadline_ms=100.0)

    def test_rejects_duplicate_stage_names(self):
        with pytest.raises(ValueError, match="twice"):
            TaskGraph(
                1,
                (TaskStage("s0", "RM2", 8), TaskStage("s0", "WND", 8)),
                deadline_ms=100.0,
            )

    def test_rejects_unknown_parent(self):
        with pytest.raises(ValueError, match="unknown"):
            TaskGraph(
                1,
                (TaskStage("s0", "RM2", 8), TaskStage("s1", "RM2", 8, ("ghost",))),
                deadline_ms=100.0,
            )

    def test_rejects_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph(
                1,
                (
                    TaskStage("a", "RM2", 8, ("c",)),
                    TaskStage("b", "RM2", 8, ("a",)),
                    TaskStage("c", "RM2", 8, ("b",)),
                ),
                deadline_ms=100.0,
            )

    def test_rejects_multiple_sinks(self):
        with pytest.raises(ValueError, match="exactly one sink"):
            TaskGraph(
                1,
                (
                    TaskStage("src", "RM2", 8),
                    TaskStage("a", "RM2", 8, ("src",)),
                    TaskStage("b", "RM2", 8, ("src",)),
                ),
                deadline_ms=100.0,
            )

    def test_rejects_nonpositive_deadline_and_value(self):
        with pytest.raises(ValueError):
            TaskGraph(1, (TaskStage("s0", "RM2", 8),), deadline_ms=0.0)
        with pytest.raises(ValueError):
            TaskGraph(1, (TaskStage("s0", "RM2", 8),), deadline_ms=10.0, value=0.0)

    def test_rejects_negative_release(self):
        with pytest.raises(ValueError, match="release_ms"):
            TaskGraph(
                1, (TaskStage("s0", "RM2", 8),), deadline_ms=10.0, release_ms=-1.0
            )


class TestTopology:
    def test_topological_order_is_declaration_order_kahn(self):
        graph = diamond()
        assert [s.name for s in graph.topological_order()] == [
            "src",
            "left",
            "right",
            "sink",
        ]

    def test_sources_sink_children(self):
        graph = diamond()
        assert [s.name for s in graph.sources()] == ["src"]
        assert graph.sink().name == "sink"
        assert graph.children("src") == ("left", "right")
        assert graph.children("sink") == ()
        assert graph.stage("right").model_name == "WND"
        assert len(graph) == 4

    def test_deadline_abs(self):
        graph = TaskGraph(
            1, (TaskStage("s0", "RM2", 8),), deadline_ms=100.0, release_ms=40.0
        )
        assert graph.deadline_abs_ms() == pytest.approx(140.0)


class TestCriticalPath:
    def test_constant_predictor_diamond(self):
        graph = diamond()
        cpr = graph.critical_path_remaining(lambda model, batch: 100.0)
        assert cpr == {"sink": 100.0, "left": 200.0, "right": 200.0, "src": 300.0}
        assert graph.critical_path_ms(lambda model, batch: 100.0) == pytest.approx(
            300.0
        )

    def test_predictor_sees_model_and_batch(self):
        graph = diamond()
        # left (batch 32) is slower than right (batch 8): the critical path runs
        # through left and the source entry reflects it.
        cpr = graph.critical_path_remaining(lambda model, batch: float(batch))
        assert cpr["left"] == pytest.approx(32.0 + 4.0)
        assert cpr["right"] == pytest.approx(8.0 + 4.0)
        assert cpr["src"] == pytest.approx(16.0 + 36.0)
        assert graph.critical_path_ms(lambda m, b: float(b)) == pytest.approx(52.0)

    def test_chain_critical_path_is_the_sum(self):
        graph = chain_graph(2, [("RM2", 8)] * 5, deadline_ms=1000.0)
        assert graph.critical_path_ms(lambda m, b: 10.0) == pytest.approx(50.0)


class TestWorkloadBuilders:
    def test_chain_graph_shape(self):
        graph = chain_graph(3, [("RM2", 8), ("WND", 4), ("RM2", 2)], deadline_ms=100.0)
        assert [s.name for s in graph.stages] == ["s0", "s1", "s2"]
        assert graph.stage("s1").parents == ("s0",)
        assert graph.stage("s2").parents == ("s1",)
        assert graph.sink().name == "s2"

    def test_chain_graph_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one stage"):
            chain_graph(1, [], deadline_ms=100.0)

    def test_fan_out_in_shape(self):
        graph = fan_out_in_graph(
            4,
            ("RM2", 8),
            [("WND", 4), ("WND", 2), ("RM2", 1)],
            ("RM2", 16),
            deadline_ms=100.0,
        )
        assert [s.name for s in graph.stages] == ["src", "b0", "b1", "b2", "sink"]
        assert graph.stage("sink").parents == ("b0", "b1", "b2")
        for branch in ("b0", "b1", "b2"):
            assert graph.stage(branch).parents == ("src",)

    def test_fan_out_in_rejects_no_branches(self):
        with pytest.raises(ValueError, match="at least one branch"):
            fan_out_in_graph(1, ("RM2", 8), [], ("RM2", 8), deadline_ms=100.0)

    def test_diamond_is_two_branch_fan_out(self):
        graph = diamond_graph(
            5, ("RM2", 8), ("WND", 4), ("RM2", 2), ("WND", 1), deadline_ms=100.0
        )
        assert [s.name for s in graph.stages] == ["src", "b0", "b1", "sink"]
        assert graph.stage("sink").parents == ("b0", "b1")
