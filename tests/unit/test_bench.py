"""The perf harness: calibration, result records, regression gate, smoke execution."""

import numpy as np
import pytest

from repro.bench import BENCHMARKS, PRESETS, BenchResult, machine_score, run_benchmarks
from repro.bench.runner import Regression, compare_results, time_throughput


class TestMachineScore:
    def test_positive_and_repeatable_order_of_magnitude(self):
        a = machine_score(repeats=1)
        b = machine_score(repeats=1)
        assert a > 0 and b > 0
        assert 0.2 < a / b < 5.0  # same host: same ballpark

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            machine_score(repeats=0)


class TestBenchResult:
    def test_key_and_normalization(self):
        result = BenchResult("x", "quick", value=100.0, unit="ops/s", wall_seconds=0.5)
        assert result.key == "x@quick"
        assert result.normalized(50.0) == pytest.approx(2.0)
        payload = result.as_dict(50.0)
        assert payload["value"] == 100.0 and payload["normalized"] == pytest.approx(2.0)

    def test_normalization_rejects_bad_score(self):
        result = BenchResult("x", "quick", value=1.0, unit="u", wall_seconds=0.1)
        with pytest.raises(ValueError):
            result.normalized(0.0)


class TestTimeThroughput:
    def test_counts_units_over_wall_time(self):
        calls = []

        def work():
            calls.append(1)
            return 10.0

        rate, wall = time_throughput(work, min_seconds=0.01)
        assert rate > 0 and wall > 0
        # either the wall-time floor was reached or the round cap kicked in
        assert wall >= 0.01 or len(calls) == 50


class TestCompareResults:
    def test_detects_regression_beyond_tolerance(self):
        regressions = compare_results({"a@q": 0.5}, {"a@q": 1.0}, tolerance=0.30)
        assert len(regressions) == 1
        assert isinstance(regressions[0], Regression)
        assert regressions[0].ratio == pytest.approx(0.5)

    def test_within_tolerance_passes(self):
        assert compare_results({"a@q": 0.75}, {"a@q": 1.0}, tolerance=0.30) == []

    def test_improvement_passes(self):
        assert compare_results({"a@q": 5.0}, {"a@q": 1.0}) == []

    def test_only_shared_keys_compared(self):
        regressions = compare_results(
            {"new@q": 0.01}, {"old@q": 1.0}, tolerance=0.30
        )
        assert regressions == []  # disjoint keys cannot regress

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            compare_results({}, {}, tolerance=0.0)
        with pytest.raises(ValueError):
            compare_results({}, {}, tolerance=1.0)


class TestRunBenchmarks:
    def test_smoke_preset_runs_every_benchmark(self):
        results = run_benchmarks("smoke")
        assert [r.name for r in results] == list(BENCHMARKS)
        for result in results:
            assert result.preset == "smoke"
            assert result.value > 0
            assert result.wall_seconds > 0

    def test_subset_selection(self):
        results = run_benchmarks("smoke", names=["cost_matrix"])
        assert [r.name for r in results] == ["cost_matrix"]

    def test_unknown_preset_and_name_rejected(self):
        with pytest.raises(KeyError):
            run_benchmarks("galactic")
        with pytest.raises(KeyError):
            run_benchmarks("smoke", names=["nope"])

    def test_presets_cover_ci_and_reference_scales(self):
        assert {"smoke", "quick", "full"} <= set(PRESETS)
