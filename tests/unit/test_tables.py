"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_mapping, format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2.5], [3, 4.0]])
        assert "a" in text and "b" in text
        assert "2.500" in text
        assert "3" in text

    def test_title_line(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_bool_rendering(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_float_format_override(self):
        text = format_table(["v"], [[1.23456]], float_fmt=".1f")
        assert "1.2" in text and "1.23" not in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_alignment_columns_consistent(self):
        text = format_table(["col", "value"], [["x", 1], ["longer", 2]])
        lines = [line for line in text.splitlines() if "|" in line]
        assert len(lines) == 3  # header + 2 rows
        assert len({line.index("|") for line in lines}) == 1


class TestFormatSeries:
    def test_basic(self):
        text = format_series({"y": [1.0, 2.0]}, index=[10, 20], index_name="t")
        assert "t" in text and "y" in text and "10" in text

    def test_default_index(self):
        text = format_series({"y": [5.0]})
        assert "0" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_series({})

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_series({"a": [1], "b": [1, 2]})

    def test_index_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series({"a": [1, 2]}, index=[1])


def test_format_mapping():
    text = format_mapping({"alpha": 1, "beta": 2.5})
    assert "alpha" in text and "2.500" in text
