"""Tests for repro.sim.metrics."""

import numpy as np
import pytest

from repro.sim.metrics import QueryRecord, ServingMetrics
from repro.workload.query import Query


def make_record(query_id, batch, arrival, start, completion, server_type="g4dn.xlarge"):
    return QueryRecord(
        query=Query(query_id, batch, arrival),
        server_id=0,
        server_type=server_type,
        start_ms=start,
        completion_ms=completion,
        service_ms=completion - start,
    )


class TestQueryRecord:
    def test_latency_and_waiting(self):
        r = make_record(0, 10, arrival=5.0, start=8.0, completion=20.0)
        assert r.latency_ms == pytest.approx(15.0)
        assert r.waiting_ms == pytest.approx(3.0)
        assert r.meets_qos(15.0)
        assert not r.meets_qos(14.0)

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            make_record(0, 10, arrival=5.0, start=10.0, completion=9.0)
        with pytest.raises(ValueError):
            make_record(0, 10, arrival=5.0, start=4.0, completion=9.0)


class TestServingMetrics:
    def make_metrics(self, latencies, qos=100.0):
        metrics = ServingMetrics(qos_ms=qos)
        for i, lat in enumerate(latencies):
            metrics.record(make_record(i, 10, arrival=float(i), start=float(i), completion=float(i) + lat))
        return metrics

    def test_tail_latency(self):
        latencies = list(np.linspace(1, 100, 100))
        metrics = self.make_metrics(latencies)
        assert metrics.tail_latency_ms(50) == pytest.approx(np.percentile(latencies, 50))
        assert metrics.tail_latency_ms() == pytest.approx(np.percentile(latencies, 99))

    def test_meets_qos_boundary(self):
        metrics = self.make_metrics([50.0] * 100, qos=50.0)
        assert metrics.meets_qos()
        metrics2 = self.make_metrics([50.0] * 99 + [200.0], qos=50.0)
        assert not metrics2.meets_qos()

    def test_violation_rate(self):
        metrics = self.make_metrics([10.0] * 90 + [200.0] * 10, qos=100.0)
        assert metrics.qos_violation_rate() == pytest.approx(0.1)

    def test_empty_metrics(self):
        metrics = ServingMetrics(100.0)
        assert metrics.qos_violation_rate() == 0.0
        assert len(metrics) == 0
        with pytest.raises(ValueError):
            metrics.tail_latency_ms()
        with pytest.raises(ValueError):
            metrics.mean_latency_ms()

    def test_makespan_and_qps(self):
        metrics = ServingMetrics(100.0)
        metrics.record(make_record(0, 10, arrival=0.0, start=0.0, completion=50.0))
        metrics.record(make_record(1, 10, arrival=100.0, start=100.0, completion=1000.0))
        assert metrics.makespan_ms() == pytest.approx(1000.0)
        assert metrics.achieved_qps() == pytest.approx(2.0)

    def test_goodput_excludes_violations(self):
        metrics = ServingMetrics(100.0)
        metrics.record(make_record(0, 10, arrival=0.0, start=0.0, completion=50.0))
        metrics.record(make_record(1, 10, arrival=0.0, start=0.0, completion=1000.0))
        assert metrics.goodput_qps() == pytest.approx(0.5 * metrics.achieved_qps())

    def test_queries_by_type_and_mean_batch(self):
        metrics = ServingMetrics(100.0)
        metrics.record(make_record(0, 10, 0.0, 0.0, 1.0, server_type="a"))
        metrics.record(make_record(1, 30, 0.0, 0.0, 1.0, server_type="a"))
        metrics.record(make_record(2, 100, 0.0, 0.0, 1.0, server_type="b"))
        assert metrics.queries_by_type() == {"a": 2, "b": 1}
        assert metrics.mean_batch_by_type()["a"] == pytest.approx(20.0)

    def test_summary_keys(self):
        metrics = self.make_metrics([10.0, 20.0])
        summary = metrics.summary()
        assert {"num_queries", "tail_latency_ms", "achieved_qps", "goodput_qps"} <= set(summary)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ServingMetrics(0.0)
        with pytest.raises(ValueError):
            ServingMetrics(10.0, qos_percentile=0.0)

    def test_extend_and_records(self):
        metrics = ServingMetrics(100.0)
        records = [make_record(i, 10, 0.0, 0.0, 10.0) for i in range(3)]
        metrics.extend(records)
        assert len(metrics) == 3
        assert len(metrics.records) == 3

    def test_window_filters_by_arrival_time(self):
        metrics = ServingMetrics(100.0)
        # arrivals at 0, 500, 1000; completions 80 ms later (all within QoS)
        for i, arrival in enumerate((0.0, 500.0, 1000.0)):
            metrics.record(make_record(i, 10, arrival, arrival, arrival + 80.0))
        sub = metrics.window(0.0, 1000.0)  # half-open: excludes the 1000 ms arrival
        assert len(sub) == 2
        assert sub.qos_ms == metrics.qos_ms
        assert [r.query.query_id for r in sub.records] == [0, 1]
        with pytest.raises(ValueError):
            metrics.window(1000.0, 0.0)

    def test_qos_met_qps_in_window_normalizes_by_window_length(self):
        metrics = ServingMetrics(100.0)
        # two QoS-met queries and one violation arriving inside [0, 2000)
        metrics.record(make_record(0, 10, 100.0, 100.0, 150.0))
        metrics.record(make_record(1, 10, 600.0, 600.0, 680.0))
        metrics.record(make_record(2, 10, 900.0, 900.0, 1200.0))  # 300 ms > QoS
        assert metrics.qos_met_qps_in_window(0.0, 2000.0) == pytest.approx(1.0)
        # unserved load shows up as a lower rate, not a higher one: shrinking the
        # window to the served span raises the figure
        assert metrics.qos_met_qps_in_window(0.0, 1000.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            metrics.qos_met_qps_in_window(5.0, 5.0)
