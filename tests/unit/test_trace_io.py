"""Unit tests for the trace-ingestion layer (``repro.workload.trace_io``)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workload.query import Query
from repro.workload.trace import save_trace
from repro.workload.trace_io import (
    Trace,
    load_any_trace,
    load_trace_csv,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
)

DATA = Path(__file__).parent.parent / "data"


@pytest.fixture
def queries():
    return [
        Query(0, 32, 10.000000000000002, model_name="RM2"),
        Query(1, 80, 55.12345678901234, model_name="WND"),
        Query(2, 8, 120.5),
        Query(3, 64, 250.125, model_name="RM2"),
        Query(4, 64, 250.125, model_name="WND"),
    ]


class TestTrace:
    def test_canonical_order_and_length(self, queries):
        trace = Trace.from_queries(reversed(queries))
        assert list(trace) == queries
        assert len(trace) == 5
        assert trace.start_ms == 10.000000000000002
        assert trace.end_ms == 250.125
        assert trace.duration_ms == 250.125 - 10.000000000000002

    def test_model_names_in_first_appearance_order(self, queries):
        trace = Trace.from_queries(queries)
        assert trace.model_names == ("RM2", "WND")

    def test_for_model_subsets_without_renumbering(self, queries):
        sub = Trace.from_queries(queries).for_model("WND")
        assert [q.query_id for q in sub] == [1, 4]
        assert all(q.model_name == "WND" for q in sub)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate query_id"):
            Trace((Query(0, 1, 0.0), Query(0, 1, 1.0)))

    def test_out_of_order_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Trace((Query(0, 1, 5.0), Query(1, 1, 1.0)))


class TestTraceSpan:
    """Regression: ``duration_ms`` is the arrival *span*, not an end time.

    Pre-fix it returned ``queries[-1].arrival_time_ms``, which inflates the
    duration (and deflates any offered rate computed from it) for every trace
    that does not start at t=0 — exactly the committed-slice real traces.
    """

    def test_offset_trace_duration_is_the_span(self):
        t0 = 3_600_000.0  # a slice starting one hour in
        trace = Trace.from_queries(
            Query(i, 8, t0 + i * 100.0) for i in range(11)
        )
        assert trace.start_ms == t0
        assert trace.end_ms == t0 + 1000.0
        assert trace.duration_ms == 1000.0

    def test_offset_invariance(self):
        base = [Query(i, 8, i * 100.0) for i in range(11)]
        shifted = [Query(i, 8, 500_000.0 + i * 100.0) for i in range(11)]
        assert (
            Trace.from_queries(base).duration_ms
            == Trace.from_queries(shifted).duration_ms
            == 1000.0
        )

    def test_offered_rate_from_span(self):
        # 11 arrivals over a 1 s span at t0=500 s: 10 inter-arrival gaps -> the
        # natural offered-rate estimate count/span stays ~10 qps, not ~0.02 qps
        # as dividing by end_ms would give.
        trace = Trace.from_queries(
            Query(i, 8, 500_000.0 + i * 100.0) for i in range(11)
        )
        assert len(trace) / (trace.duration_ms / 1000.0) == pytest.approx(11.0)

    def test_empty_and_singleton_traces(self):
        assert Trace(()).duration_ms == 0.0
        assert Trace(()).start_ms == 0.0 and Trace(()).end_ms == 0.0
        single = Trace((Query(0, 1, 42.5),))
        assert single.start_ms == single.end_ms == 42.5
        assert single.duration_ms == 0.0


class TestRoundTrip:
    def test_csv_round_trip_is_exact(self, queries, tmp_path):
        path = save_trace_csv(Trace.from_queries(queries), tmp_path / "t.csv")
        assert list(load_trace_csv(path).queries) == queries

    def test_jsonl_round_trip_is_exact(self, queries, tmp_path):
        trace = Trace.from_queries(queries, {"rate_qps": 40.0})
        path = save_trace_jsonl(trace, tmp_path / "t.jsonl")
        loaded = load_trace_jsonl(path)
        assert list(loaded.queries) == queries
        assert loaded.meta["rate_qps"] == 40.0

    def test_full_precision_floats_survive(self, tmp_path):
        # Values that %.6f (the legacy writer's format) would corrupt.
        q = [Query(0, 1, 10.000000000000002), Query(1, 1, 333.3333333333333)]
        for save, load, name in (
            (save_trace_csv, load_trace_csv, "t.csv"),
            (save_trace_jsonl, load_trace_jsonl, "t.jsonl"),
        ):
            path = save(Trace.from_queries(q), tmp_path / name)
            loaded = load(path)
            assert [r.arrival_time_ms for r in loaded.queries] == [
                10.000000000000002,
                333.3333333333333,
            ]

    def test_legacy_three_column_csv_loads_untagged(self, tmp_path):
        legacy = [Query(0, 4, 1.5), Query(1, 8, 2.5)]
        path = save_trace(legacy, tmp_path / "legacy.csv")
        loaded = load_trace_csv(path)
        assert [q.model_name for q in loaded.queries] == [None, None]
        assert [q.batch_size for q in loaded.queries] == [4, 8]

    def test_missing_columns_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("query_id,batch_size\n0,4\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_trace_csv(bad)

    def test_jsonl_missing_field_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"query_id": 0, "batch_size": 4}\n')
        with pytest.raises(ValueError, match="missing field"):
            load_trace_jsonl(bad)


class TestCommittedFixture:
    """The committed fixture trace is the contract for the on-disk formats."""

    def test_csv_fixture_loads(self):
        trace = load_trace_csv(DATA / "fixture_trace.csv")
        assert len(trace) == 10
        assert trace.model_names == ("RM2", "WND")
        # the equal-instant burst at t=250.125 survives with exact timestamps
        burst = [q for q in trace if q.arrival_time_ms == 250.125]
        assert [q.query_id for q in burst] == [3, 4, 5]

    def test_jsonl_fixture_matches_csv_fixture(self):
        csv_trace = load_trace_csv(DATA / "fixture_trace.csv")
        jsonl_trace = load_trace_jsonl(DATA / "fixture_trace.jsonl")
        assert list(jsonl_trace.queries) == list(csv_trace.queries)
        assert jsonl_trace.meta["description"] == "committed test trace"

    def test_load_any_trace_dispatches_on_extension(self):
        assert list(load_any_trace(DATA / "fixture_trace.csv").queries) == list(
            load_any_trace(DATA / "fixture_trace.jsonl").queries
        )


class TestTraceReplay:
    """Ingested traces replay through a serving loop (the workload-zoo path)."""

    def test_fixture_replays_through_multi_model_loop(self):
        from repro.fuzz.runner import run_scenario
        from repro.fuzz.spec import ScenarioSpec, StreamSpec

        trace = load_trace_csv(DATA / "fixture_trace.csv")
        spec = ScenarioSpec(
            loop="multi_model",
            streams=(StreamSpec(model_name="RM2"), StreamSpec(model_name="WND")),
            config_counts=((1, 0, 1, 0), (1, 0, 1, 0)),
            seed=0,
        )
        result = run_scenario(spec, queries=trace.queries)
        assert not result.violations, "; ".join(str(v) for v in result.violations)
        assert len(result.completions) == len(trace)
