"""Tests for repro.core.selection (similarity-based configuration selection)."""

import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.core.selection import select_configuration


def ranked_from_counts(counts_and_bounds):
    return [(HeterogeneousConfig(c), b) for c, b in counts_and_bounds]


class TestSelectConfiguration:
    def test_top1_rule_when_top3_share_base_count(self):
        ranked = ranked_from_counts(
            [
                ((2, 0, 9, 0), 100.0),
                ((2, 0, 8, 1), 99.0),
                ((2, 1, 7, 0), 98.0),
                ((1, 0, 13, 0), 97.0),
            ]
        )
        result = select_configuration(ranked)
        assert result.rule == "top1-same-base"
        assert result.selected == ranked[0][0]
        assert result.selected_rank == 0

    def test_centroid_rule_when_base_counts_differ(self):
        # top-3 have different base counts -> min-SSE centroid over the top-10
        ranked = ranked_from_counts(
            [
                ((1, 0, 13, 0), 100.0),
                ((2, 0, 9, 0), 99.0),
                ((3, 0, 5, 0), 98.0),
                ((2, 0, 8, 0), 97.0),
                ((2, 0, 10, 0), 96.0),
            ]
        )
        result = select_configuration(ranked)
        assert result.rule == "min-sse-centroid"
        # (2, 0, 9, 0) is the centroid-most configuration of this cluster
        assert result.selected.counts == (2, 0, 9, 0)
        assert len(result.distance_sums) == len(result.candidates)

    def test_centroid_distances_are_sums_of_squared_distances(self):
        ranked = ranked_from_counts(
            [
                ((1, 0, 0, 0), 10.0),
                ((2, 0, 0, 0), 9.0),
                ((5, 0, 0, 0), 8.0),
            ]
        )
        result = select_configuration(ranked, top_k_base_check=5)
        # distances for (2,0,0,0): (1)^2 + (3)^2 = 10 -> the minimum
        assert result.selected.counts == (2, 0, 0, 0)
        assert min(result.distance_sums) == pytest.approx(10.0)

    def test_fewer_than_topk_candidates_still_works(self):
        ranked = ranked_from_counts([((1, 0, 1, 0), 5.0), ((2, 0, 0, 0), 4.0)])
        result = select_configuration(ranked)
        assert result.selected in {c for c, _ in ranked}

    def test_single_candidate(self):
        ranked = ranked_from_counts([((1, 0, 0, 0), 5.0)])
        result = select_configuration(ranked)
        assert result.selected.counts == (1, 0, 0, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_configuration([])

    def test_invalid_topk(self):
        ranked = ranked_from_counts([((1, 0, 0, 0), 5.0)])
        with pytest.raises(ValueError):
            select_configuration(ranked, top_k_base_check=0)

    def test_custom_topk_similarity(self):
        ranked = ranked_from_counts(
            [((i, 0, 0, 0), 10.0 - i) for i in range(1, 8)]
        )
        result = select_configuration(ranked, top_k_similarity=3)
        assert len(result.candidates) == 3
