"""Tests for repro.solvers: Jonker-Volgenant, Hungarian, greedy, and the facade."""

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.solvers.assignment import AssignmentResult, available_methods, solve_assignment
from repro.solvers.greedy import greedy_assignment
from repro.solvers.hungarian import hungarian_assignment
from repro.solvers.jonker_volgenant import jonker_volgenant_assignment


def scipy_cost(cost):
    rows, cols = linear_sum_assignment(cost)
    return cost[rows, cols].sum()


def random_costs(rng, m, n, scale=100.0):
    return rng.random((m, n)) * scale


class TestJonkerVolgenant:
    @pytest.mark.parametrize("shape", [(1, 1), (3, 3), (5, 5), (8, 8)])
    def test_square_matches_scipy(self, rng, shape):
        for _ in range(5):
            cost = random_costs(rng, *shape)
            rows, cols = jonker_volgenant_assignment(cost)
            assert len(rows) == shape[0]
            assert cost[rows, cols].sum() == pytest.approx(scipy_cost(cost))

    @pytest.mark.parametrize("shape", [(2, 6), (5, 9), (7, 3), (10, 4)])
    def test_rectangular_matches_scipy(self, rng, shape):
        for _ in range(5):
            cost = random_costs(rng, *shape)
            rows, cols = jonker_volgenant_assignment(cost)
            assert len(rows) == min(shape)
            assert cost[rows, cols].sum() == pytest.approx(scipy_cost(cost))

    def test_unique_rows_and_columns(self, rng):
        cost = random_costs(rng, 6, 9)
        rows, cols = jonker_volgenant_assignment(cost)
        assert len(set(rows.tolist())) == len(rows)
        assert len(set(cols.tolist())) == len(cols)

    def test_known_small_instance(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        rows, cols = jonker_volgenant_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(5.0)

    def test_handles_ties(self):
        cost = np.ones((4, 4))
        rows, cols = jonker_volgenant_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(4.0)

    @pytest.mark.parametrize("shape", [(1, 1), (1, 7), (1, 24), (7, 1), (24, 1)])
    def test_single_row_or_column_fast_path(self, rng, shape):
        for _ in range(5):
            cost = random_costs(rng, *shape)
            rows, cols = jonker_volgenant_assignment(cost)
            assert len(rows) == 1
            assert cost[rows, cols].sum() == pytest.approx(scipy_cost(cost))

    def test_single_row_tie_break_is_first_minimum(self):
        # the fast path must keep the Dijkstra loop's first-open-column tie-break
        cost = np.array([[3.0, 1.0, 1.0, 2.0, 1.0]])
        rows, cols = jonker_volgenant_assignment(cost)
        assert rows.tolist() == [0] and cols.tolist() == [1]
        cost_col = np.array([[5.0], [2.0], [2.0], [4.0]])
        rows, cols = jonker_volgenant_assignment(cost_col)
        assert rows.tolist() == [1] and cols.tolist() == [0]

    def test_empty_matrix(self):
        rows, cols = jonker_volgenant_assignment(np.zeros((0, 3)))
        assert rows.size == 0 and cols.size == 0

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            jonker_volgenant_assignment(np.array([[1.0, np.inf]]))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            jonker_volgenant_assignment(np.ones(3))


class TestHungarian:
    @pytest.mark.parametrize("shape", [(3, 3), (4, 7), (7, 4), (9, 9)])
    def test_matches_scipy(self, rng, shape):
        for _ in range(5):
            cost = random_costs(rng, *shape)
            rows, cols = hungarian_assignment(cost)
            assert len(rows) == min(shape)
            assert cost[rows, cols].sum() == pytest.approx(scipy_cost(cost))

    def test_negative_costs(self, rng):
        cost = random_costs(rng, 5, 5) - 50.0
        rows, cols = hungarian_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(scipy_cost(cost))

    def test_empty(self):
        rows, cols = hungarian_assignment(np.zeros((3, 0)))
        assert rows.size == 0

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            hungarian_assignment(np.array([[np.nan, 1.0]]))


class TestGreedy:
    def test_complete_matching(self, rng):
        cost = random_costs(rng, 4, 6)
        rows, cols = greedy_assignment(cost)
        assert len(rows) == 4
        assert len(set(cols.tolist())) == 4

    def test_never_better_than_optimal(self, rng):
        for _ in range(10):
            cost = random_costs(rng, 6, 6)
            rows, cols = greedy_assignment(cost)
            assert cost[rows, cols].sum() >= scipy_cost(cost) - 1e-9

    def test_greedy_is_optimal_on_diagonal_structure(self):
        cost = np.array([[0.0, 10.0], [10.0, 0.0]])
        rows, cols = greedy_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(0.0)

    def test_empty(self):
        rows, cols = greedy_assignment(np.zeros((0, 0)))
        assert rows.size == 0


class TestFacade:
    def test_available_methods(self):
        methods = available_methods()
        assert {"jv", "hungarian", "greedy", "scipy"} <= set(methods)

    @pytest.mark.parametrize("method", ["jv", "hungarian", "scipy"])
    def test_exact_methods_agree(self, rng, method):
        cost = random_costs(rng, 5, 8)
        result = solve_assignment(cost, method=method)
        assert isinstance(result, AssignmentResult)
        assert result.total_cost == pytest.approx(scipy_cost(cost))
        assert result.method in (method, "jv")

    def test_result_helpers(self, rng):
        cost = random_costs(rng, 3, 3)
        result = solve_assignment(cost)
        assert len(result) == 3
        pairs = result.as_pairs()
        assert len(pairs) == 3
        row0_col = result.column_of_row(0)
        assert (0, row0_col) in pairs
        with pytest.raises(KeyError):
            result.column_of_row(99)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve_assignment(np.ones((2, 2)), method="magic")

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            solve_assignment(np.ones(4))

    def test_empty_total_cost(self):
        result = solve_assignment(np.zeros((0, 2)))
        assert result.total_cost == 0.0
        assert len(result) == 0
