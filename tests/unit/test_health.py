"""Units for the gray-failure detection layer: monitor, breaker, hedge manager.

The serving-loop integration (quarantine side effects, probe dispatch, hedge
races) is exercised by the gray regression scenarios and the fuzz campaign;
these tests pin the deterministic arithmetic each piece contributes.
"""

import pytest

from repro.sim.health import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    HealthConfig,
    HedgeManager,
    HedgePolicy,
    ServerHealthMonitor,
)

pytestmark = pytest.mark.gray


# -- config validation -------------------------------------------------------------------


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"degrade_ratio": 1.0},
            {"min_samples": 0},
            {"suspicion_threshold": 0.0},
            {"overdue_grace_factor": 1.0},
            {"probation_ms": 0.0},
            {"probation_backoff": 0.5},
            {"probe_successes": 0},
        ],
    )
    def test_health_config_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            HealthConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [{"quantile": 0.0}, {"quantile": 1.0}, {"delay_factor": 1.0}, {"min_samples": 0}],
    )
    def test_hedge_policy_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            HedgePolicy(**kwargs)


# -- health monitor ----------------------------------------------------------------------


def _feed(monitor, server_id, per_item_ms, n, type_name="t", batch=1):
    for _ in range(n):
        monitor.observe_completion(server_id, type_name, per_item_ms * batch, batch)


class TestServerHealthMonitor:
    def test_ratio_is_none_before_min_samples(self):
        monitor = ServerHealthMonitor(HealthConfig(min_samples=4))
        _feed(monitor, 0, 10.0, 3)
        assert monitor.latency_ratio(0, "t") is None
        _feed(monitor, 0, 10.0, 1)
        assert monitor.latency_ratio(0, "t") == pytest.approx(1.0)

    def test_latency_is_normalised_per_item(self):
        """A big batch at proportional latency is the same per-item signal."""
        monitor = ServerHealthMonitor(HealthConfig(min_samples=1))
        _feed(monitor, 0, 10.0, 4, batch=1)
        _feed(monitor, 1, 10.0, 4, batch=32)
        assert monitor.latency_ratio(1, "t") == pytest.approx(
            monitor.latency_ratio(0, "t")
        )

    def test_slow_server_trips_degraded_against_fleet_baseline(self):
        config = HealthConfig(ewma_alpha=0.2, degrade_ratio=2.0, min_samples=4)
        monitor = ServerHealthMonitor(config)
        for _ in range(16):  # healthy majority anchors the fleet EWMA
            for sid in range(9):
                monitor.observe_completion(sid, "t", 10.0, 1)
            monitor.observe_completion(9, "t", 60.0, 1)
        assert not monitor.is_degraded(0, "t")
        assert monitor.is_degraded(9, "t")
        assert monitor.latency_ratio(9, "t") > 2.0

    def test_suspicion_accrues_by_normalised_overdue_and_resets_on_completion(self):
        monitor = ServerHealthMonitor(HealthConfig(suspicion_threshold=1.0))
        assert monitor.record_overdue(0, overdue_ms=50.0, expected_ms=100.0) == (
            pytest.approx(0.5)
        )
        assert not monitor.is_suspect(0)
        assert monitor.record_overdue(0, overdue_ms=60.0, expected_ms=100.0) == (
            pytest.approx(1.1)
        )
        assert monitor.is_suspect(0)
        monitor.observe_completion(0, "t", 10.0, 1)
        assert monitor.suspicion(0) == 0.0
        assert not monitor.is_suspect(0)

    def test_reset_server_forgets_samples_but_not_the_fleet_baseline(self):
        monitor = ServerHealthMonitor(HealthConfig(min_samples=1))
        _feed(monitor, 0, 10.0, 8)
        _feed(monitor, 1, 40.0, 8)
        monitor.reset_server(1)
        assert monitor.latency_ratio(1, "t") is None
        # the fleet EWMA still remembers both servers' traffic
        assert monitor.sample_ratio("t", 10.0, 1) < 1.0

    def test_sample_ratio_defaults_to_one_on_a_cold_fleet(self):
        monitor = ServerHealthMonitor()
        assert monitor.sample_ratio("t", 123.0, 1) == 1.0


# -- circuit breaker ---------------------------------------------------------------------


class TestCircuitBreaker:
    def test_full_lifecycle(self):
        breaker = CircuitBreaker()
        assert breaker.state == BREAKER_CLOSED
        breaker.trip(100.0)
        assert breaker.state == BREAKER_OPEN and breaker.opened_at_ms == 100.0
        breaker.half_open()
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.close()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_can_reopen(self):
        breaker = CircuitBreaker()
        breaker.trip(0.0)
        breaker.half_open()
        breaker.trip(50.0)  # failed probe
        assert breaker.state == BREAKER_OPEN
        assert breaker.open_count == 2

    def test_illegal_transitions_raise(self):
        breaker = CircuitBreaker()
        with pytest.raises(RuntimeError):
            breaker.half_open()
        with pytest.raises(RuntimeError):
            breaker.close()
        breaker.trip(0.0)
        with pytest.raises(RuntimeError):
            breaker.trip(1.0)
        with pytest.raises(RuntimeError):
            breaker.close()

    def test_probation_delay_backs_off_exponentially_per_reopen(self):
        config = HealthConfig(probation_ms=100.0, probation_backoff=2.0)
        breaker = CircuitBreaker()
        breaker.trip(0.0)
        assert breaker.probation_delay_ms(config) == pytest.approx(100.0)
        breaker.half_open()
        breaker.trip(10.0)
        assert breaker.probation_delay_ms(config) == pytest.approx(200.0)
        breaker.half_open()
        breaker.trip(20.0)
        assert breaker.probation_delay_ms(config) == pytest.approx(400.0)


# -- hedge manager -----------------------------------------------------------------------


class TestHedgeManager:
    def test_cold_type_never_hedges(self):
        hedges = HedgeManager(HedgePolicy(min_samples=4))
        for _ in range(3):
            hedges.observe("t", 100.0)
        assert hedges.hedge_delay_ms("t") is None
        hedges.observe("t", 100.0)
        assert hedges.hedge_delay_ms("t") is not None

    def test_delay_is_factor_times_the_quantile(self):
        hedges = HedgeManager(HedgePolicy(quantile=0.9, delay_factor=1.5, min_samples=1))
        for v in range(1, 12):  # 1..11 ms; q90 index = int(0.9 * 10) = 9 -> 10 ms
            hedges.observe("t", float(v))
        assert hedges.hedge_delay_ms("t") == pytest.approx(1.5 * 10.0)

    def test_window_evicts_oldest_samples(self):
        hedges = HedgeManager(HedgePolicy(quantile=0.5, delay_factor=2.0, min_samples=1))
        hedges.observe("t", 1_000.0)  # an early outlier...
        for _ in range(HedgeManager.WINDOW):
            hedges.observe("t", 10.0)
        assert hedges.samples("t") == HedgeManager.WINDOW
        # ...is evicted, so the quantile reflects only the steady stream
        assert hedges.hedge_delay_ms("t") == pytest.approx(20.0)

    def test_types_are_independent(self):
        hedges = HedgeManager(HedgePolicy(quantile=0.5, delay_factor=2.0, min_samples=1))
        hedges.observe("a", 10.0)
        hedges.observe("b", 100.0)
        assert hedges.hedge_delay_ms("a") == pytest.approx(20.0)
        assert hedges.hedge_delay_ms("b") == pytest.approx(200.0)
