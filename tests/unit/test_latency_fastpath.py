"""Vectorized latency-prediction fast paths: scalar equivalence, caching, noise draws."""

import numpy as np
import pytest

from repro.core.latency_model import (
    NoisyLatencyEstimator,
    OnlineLatencyEstimator,
    PerfectLatencyEstimator,
)


def trained_estimator():
    est = OnlineLatencyEstimator()
    for batch, latency in ((1, 10.2), (64, 45.0), (256, 160.0), (700, 420.0)):
        est.observe("gpu", batch, latency)
    est.observe("cpu", 50, 33.0)  # single distinct batch: proportional-scaling branch
    return est


class TestOnlineVectorized:
    @pytest.mark.parametrize("type_name", ["gpu", "cpu", "never-seen"])
    def test_matches_scalar_rules_elementwise(self, type_name):
        est = trained_estimator()
        batches = np.asarray([1, 2, 50, 64, 100, 256, 500, 700, 999, 1, 50, 3])
        vectorized = est.predict_many_ms(type_name, batches)
        scalar = np.asarray(
            [est.predict_ms(type_name, int(b)) for b in batches], dtype=float
        )
        assert np.array_equal(vectorized, scalar)  # exact

    def test_tiny_vector_path_matches_large_vector_path(self):
        est = trained_estimator()
        small = est.predict_many_ms("gpu", [64, 999])  # scalar fast path (<= 8)
        large = est.predict_many_ms("gpu", [64, 999] * 10)  # vectorized path
        assert np.array_equal(small, large[:2])

    def test_cache_returns_same_vector_until_observe(self):
        est = trained_estimator()
        batches = [1, 64, 300]
        first = est.predict_many_ms("gpu", batches)
        assert est.predict_many_ms("gpu", batches) is first  # memoized
        assert not first.flags.writeable  # shared vectors are frozen
        est.observe("gpu", 64, 45.0)
        second = est.predict_many_ms("gpu", batches)
        assert second is not first  # observe invalidated the type's cache

    def test_cache_is_per_type(self):
        est = trained_estimator()
        gpu = est.predict_many_ms("gpu", [1, 64])
        est.observe("cpu", 10, 7.0)  # other type: gpu cache untouched
        assert est.predict_many_ms("gpu", [1, 64]) is gpu

    def test_scalar_input_still_works(self):
        est = trained_estimator()
        out = est.predict_many_ms("gpu", 64)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(45.0)


class TestNoisyVectorized:
    def test_single_vector_draw_matches_manual_replication(self, profiles, rm2):
        inner = PerfectLatencyEstimator(profiles, rm2)
        batches = np.asarray([10, 100, 400, 900])
        noisy = NoisyLatencyEstimator(inner, relative_std=0.05, rng=123)
        out = noisy.predict_many_ms("g4dn.xlarge", batches)

        reference_rng = np.random.default_rng(123)
        base = inner.predict_many_ms("g4dn.xlarge", batches)
        factors = 1.0 + 0.05 * reference_rng.standard_normal(base.shape)
        assert np.array_equal(out, np.maximum(1e-6, base * factors))

    def test_noise_is_elementwise_iid(self, profiles, rm2):
        inner = PerfectLatencyEstimator(profiles, rm2)
        noisy = NoisyLatencyEstimator(inner, relative_std=0.05, rng=0)
        out = noisy.predict_many_ms("g4dn.xlarge", [500] * 64)
        assert len(set(out.tolist())) > 1  # one draw per element, not one per call

    def test_zero_std_is_identity(self, profiles, rm2):
        inner = PerfectLatencyEstimator(profiles, rm2)
        noisy = NoisyLatencyEstimator(inner, relative_std=0.0, rng=0)
        batches = [1, 50, 200]
        assert np.array_equal(
            noisy.predict_many_ms("g4dn.xlarge", batches),
            np.asarray(inner.predict_many_ms("g4dn.xlarge", batches), dtype=float),
        )

    def test_predictions_stay_positive(self):
        inner = OnlineLatencyEstimator(cold_start_prior_ms=0.001)
        noisy = NoisyLatencyEstimator(inner, relative_std=5.0, rng=1)
        out = noisy.predict_many_ms("x", [1] * 200)
        assert np.all(out > 0)
