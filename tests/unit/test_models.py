"""Tests for repro.cloud.models (paper Table 3)."""

import pytest

from repro.cloud.models import (
    DEFAULT_MODEL_REGISTRY,
    MAX_BATCH_SIZE,
    MLModel,
    ModelRegistry,
    get_model,
)


class TestTable3:
    @pytest.mark.parametrize(
        "name,qos",
        [("NCF", 5.0), ("RM2", 350.0), ("WND", 25.0), ("MT-WND", 25.0), ("DIEN", 35.0)],
    )
    def test_qos_targets(self, name, qos):
        assert get_model(name).qos_ms == pytest.approx(qos)

    def test_registry_has_five_models(self):
        assert len(DEFAULT_MODEL_REGISTRY) == 5
        assert DEFAULT_MODEL_REGISTRY.names == ["NCF", "RM2", "WND", "MT-WND", "DIEN"]

    def test_max_batch_size(self):
        assert MAX_BATCH_SIZE == 1000
        assert all(m.max_batch_size == 1000 for m in DEFAULT_MODEL_REGISTRY)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model("BERT")

    def test_describe(self):
        rows = DEFAULT_MODEL_REGISTRY.describe()
        assert len(rows) == 5
        assert {"model", "qos_ms", "application", "description"} <= set(rows[0].keys())


class TestMLModel:
    def test_with_qos(self):
        rm2 = get_model("RM2")
        relaxed = rm2.with_qos(400.0)
        assert relaxed.qos_ms == 400.0
        assert relaxed.name == "RM2"
        assert rm2.qos_ms == 350.0  # original untouched

    def test_scaled_qos(self):
        assert get_model("WND").scaled_qos(1.2).qos_ms == pytest.approx(30.0)

    def test_scaled_qos_invalid_factor(self):
        with pytest.raises(ValueError):
            get_model("WND").scaled_qos(0.0)

    def test_invalid_qos_rejected(self):
        with pytest.raises(ValueError):
            MLModel("X", qos_ms=0.0)

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            MLModel("X", qos_ms=10.0, max_batch_size=0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MLModel("", qos_ms=10.0)


class TestModelRegistry:
    def test_duplicate_rejected(self):
        m = get_model("NCF")
        with pytest.raises(ValueError):
            ModelRegistry([m, m])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ModelRegistry([])

    def test_get_default(self):
        assert DEFAULT_MODEL_REGISTRY.get("nope") is None
        assert DEFAULT_MODEL_REGISTRY.get("NCF").name == "NCF"

    def test_contains(self):
        assert "DIEN" in DEFAULT_MODEL_REGISTRY
        assert "GPT" not in DEFAULT_MODEL_REGISTRY
