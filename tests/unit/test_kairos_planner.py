"""Tests for repro.core.kairos (the one-shot planner)."""

import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.core.kairos import KairosPlanner
from repro.workload.batch_sizes import GaussianBatchSizes, production_batch_distribution


@pytest.fixture
def planner(profiles):
    return KairosPlanner(
        "RM2", 2.5, profiles=profiles,
        batch_distribution=production_batch_distribution(),
        num_monitor_samples=3000,
        rng=3,
    )


class TestKairosPlanner:
    def test_plan_structure(self, planner):
        plan = planner.plan()
        assert plan.model_name == "RM2"
        assert plan.budget_per_hour == 2.5
        assert plan.search_space_size == len(plan.ranked)
        assert plan.search_space_size > 100
        assert plan.planning_seconds >= 0.0

    def test_selected_config_fits_budget(self, planner):
        plan = planner.plan()
        assert plan.selected_config.fits_budget(2.5)
        assert plan.selected_config.total_instances >= 1

    def test_ranked_sorted_by_upper_bound(self, planner):
        plan = planner.plan()
        bounds = [b for _, b in plan.ranked]
        assert bounds == sorted(bounds, reverse=True)

    def test_selected_upper_bound_accessor(self, planner):
        plan = planner.plan()
        assert plan.selected_upper_bound > 0
        assert plan.selected_upper_bound <= plan.ranked[0][1] + 1e-9

    def test_selected_is_in_top10(self, planner):
        plan = planner.plan()
        top10 = {config for config, _ in plan.top(10)}
        assert plan.selected_config in top10

    def test_top_helper(self, planner):
        plan = planner.plan()
        assert len(plan.top(5)) == 5
        assert plan.top(5)[0] == plan.ranked[0]

    def test_planning_is_fast(self, planner):
        # The paper reports ~2 seconds for an order-of-1000 search space; the
        # reproduction must stay in the same ballpark (well under a second here).
        plan = planner.plan()
        assert plan.planning_seconds < 2.0

    def test_explicit_batch_samples(self, profiles):
        planner = KairosPlanner(
            "WND", 2.5, profiles=profiles, batch_samples=[10, 50, 200, 900] * 100
        )
        plan = planner.plan()
        assert plan.selected_config.fits_budget(2.5)

    def test_update_batch_samples_changes_ranking(self, profiles):
        planner = KairosPlanner(
            "RM2", 2.5, profiles=profiles,
            batch_distribution=production_batch_distribution(), rng=0,
        )
        before = planner.plan()
        planner.update_batch_samples(GaussianBatchSizes(mean=700, std=100).sample(3000, 1))
        after = planner.plan()
        assert before.ranked[0][1] != pytest.approx(after.ranked[0][1])

    def test_update_with_empty_samples_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.update_batch_samples([])

    def test_plan_with_explicit_config_subset(self, planner):
        subset = [HeterogeneousConfig(c) for c in [(4, 0, 0, 0), (2, 0, 9, 0), (1, 0, 13, 0)]]
        plan = planner.plan(configs=subset)
        assert plan.search_space_size == 3
        assert plan.selected_config in set(subset)

    def test_empty_config_list_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.plan(configs=[])

    def test_invalid_budget_rejected(self, profiles):
        with pytest.raises(ValueError):
            KairosPlanner("RM2", 0.0, profiles=profiles, batch_samples=[10, 20])

    def test_enumerate_matches_plan_space(self, planner):
        assert len(planner.enumerate()) == planner.plan().search_space_size
