"""Tests for repro.workload.query / generator / phases / trace."""

import numpy as np
import pytest

from repro.workload.batch_sizes import FixedBatchSizes, GaussianBatchSizes, production_batch_distribution
from repro.workload.generator import WorkloadGenerator, WorkloadSpec, queries_from_batches
from repro.workload.phases import PhasedWorkloadGenerator, WorkloadPhase
from repro.workload.query import Query
from repro.workload.trace import load_trace, save_trace, synthesize_trace


class TestQuery:
    def test_deadline_and_waiting(self):
        q = Query(query_id=3, batch_size=100, arrival_time_ms=50.0)
        assert q.deadline_ms(25.0) == pytest.approx(75.0)
        assert q.waiting_time_ms(60.0) == pytest.approx(10.0)
        assert q.waiting_time_ms(40.0) == 0.0

    def test_with_arrival_time(self):
        q = Query(0, 10, 5.0).with_arrival_time(9.0)
        assert q.arrival_time_ms == 9.0
        assert q.batch_size == 10

    def test_invalid_fields(self):
        with pytest.raises(ValueError):
            Query(-1, 10, 0.0)
        with pytest.raises(ValueError):
            Query(0, 0, 0.0)
        with pytest.raises(ValueError):
            Query(0, 10, -1.0)


class TestWorkloadGenerator:
    def test_generates_requested_count(self, rng):
        spec = WorkloadSpec(num_queries=250)
        queries = WorkloadGenerator(spec).generate(100.0, rng)
        assert len(queries) == 250

    def test_ids_sequential_and_times_sorted(self, rng):
        queries = WorkloadGenerator(WorkloadSpec(num_queries=100)).generate(50.0, rng)
        assert [q.query_id for q in queries] == list(range(100))
        times = [q.arrival_time_ms for q in queries]
        assert times == sorted(times)

    def test_first_query_id_offset(self, rng):
        queries = WorkloadGenerator(WorkloadSpec(num_queries=5)).generate(
            10.0, rng, first_query_id=42
        )
        assert queries[0].query_id == 42

    def test_batch_sequence_independent_of_rate(self):
        spec = WorkloadSpec(num_queries=200)
        gen = WorkloadGenerator(spec)
        low = gen.generate(10.0, rng=7)
        high = gen.generate(500.0, rng=7)
        assert [q.batch_size for q in low] == [q.batch_size for q in high]

    def test_num_queries_override(self, rng):
        queries = WorkloadGenerator(WorkloadSpec(num_queries=10)).generate(
            10.0, rng, num_queries=33
        )
        assert len(queries) == 33

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            WorkloadGenerator().generate(0.0, rng)

    def test_spec_with_helpers(self):
        spec = WorkloadSpec(num_queries=10)
        assert spec.with_num_queries(99).num_queries == 99
        new = spec.with_batch_sizes(FixedBatchSizes(7))
        assert new.batch_sizes.mean_batch() == 7

    def test_queries_from_batches(self):
        queries = queries_from_batches([10, 20], [1.0, 2.0], first_query_id=5)
        assert queries[0].query_id == 5
        assert queries[1].batch_size == 20

    def test_queries_from_batches_mismatch(self):
        with pytest.raises(ValueError):
            queries_from_batches([10], [1.0, 2.0])


class TestPhasedWorkload:
    def test_boundaries_and_continuity(self, rng):
        phases = [
            WorkloadPhase(FixedBatchSizes(10), 50, label="small"),
            WorkloadPhase(FixedBatchSizes(500), 30, label="large"),
        ]
        queries, boundaries = PhasedWorkloadGenerator(phases).generate(100.0, rng)
        assert len(queries) == 80
        assert boundaries == [50]
        assert [q.query_id for q in queries] == list(range(80))
        # arrival times keep increasing across the phase boundary
        times = [q.arrival_time_ms for q in queries]
        assert times == sorted(times)
        # batch sizes switch at the boundary
        assert all(q.batch_size == 10 for q in queries[:50])
        assert all(q.batch_size == 500 for q in queries[50:])

    def test_phase_of_query(self):
        gen = PhasedWorkloadGenerator([WorkloadPhase(FixedBatchSizes(1), 10)])
        assert gen.phase_of_query(3, []) == 0
        assert gen.phase_of_query(12, [10]) == 1

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            PhasedWorkloadGenerator([])


class TestTrace:
    def test_roundtrip(self, tmp_path, rng):
        queries = synthesize_trace(100, 50.0, rng=rng)
        path = save_trace(queries, tmp_path / "trace.csv")
        loaded = load_trace(path)
        assert len(loaded) == 100
        for original, restored in zip(queries, loaded):
            assert restored.query_id == original.query_id
            assert restored.batch_size == original.batch_size
            # arrival times are persisted with microsecond precision
            assert restored.arrival_time_ms == pytest.approx(original.arrival_time_ms, abs=1e-5)

    def test_synthesize_with_custom_distribution(self, rng):
        queries = synthesize_trace(50, 10.0, batch_sizes=GaussianBatchSizes(), rng=rng)
        assert len(queries) == 50

    def test_load_missing_columns(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("query_id,batch_size\n1,2\n")
        with pytest.raises(ValueError):
            load_trace(bad)

    def test_synthesize_invalid_args(self):
        with pytest.raises(ValueError):
            synthesize_trace(0, 10.0)
        with pytest.raises(ValueError):
            synthesize_trace(10, 0.0)
