"""Tests for repro.core.latency_model."""

import numpy as np
import pytest

from repro.core.latency_model import (
    NoisyLatencyEstimator,
    OnlineLatencyEstimator,
    PerfectLatencyEstimator,
)


class TestPerfectLatencyEstimator:
    def test_matches_profiles(self, profiles, rm2):
        est = PerfectLatencyEstimator(profiles, rm2)
        assert est.predict_ms("g4dn.xlarge", 500) == pytest.approx(
            profiles.latency_ms(rm2, "g4dn.xlarge", 500)
        )

    def test_vectorized_prediction(self, profiles, rm2):
        est = PerfectLatencyEstimator(profiles, rm2)
        out = est.predict_many_ms("r5n.large", [1, 10, 100])
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_accepts_model_name(self, profiles):
        est = PerfectLatencyEstimator(profiles, "WND")
        assert est.predict_ms("g4dn.xlarge", 10) > 0

    def test_observe_is_noop(self, profiles, rm2):
        est = PerfectLatencyEstimator(profiles, rm2)
        before = est.predict_ms("g4dn.xlarge", 10)
        est.observe("g4dn.xlarge", 10, 99999.0)
        assert est.predict_ms("g4dn.xlarge", 10) == before


class TestOnlineLatencyEstimator:
    def test_cold_start_prior(self):
        est = OnlineLatencyEstimator(cold_start_prior_ms=2.0)
        assert est.predict_ms("g4dn.xlarge", 100) == 2.0
        assert est.observations("g4dn.xlarge") == 0

    def test_lookup_table_exact_batch(self):
        est = OnlineLatencyEstimator()
        est.observe("gpu", 100, 30.0)
        est.observe("gpu", 100, 32.0)
        assert est.predict_ms("gpu", 100) == pytest.approx(31.0)
        assert est.observations("gpu") == 2

    def test_single_point_proportional_scaling(self):
        est = OnlineLatencyEstimator()
        est.observe("gpu", 100, 50.0)
        assert est.predict_ms("gpu", 200) == pytest.approx(100.0)

    def test_linear_fit_recovers_true_profile(self):
        est = OnlineLatencyEstimator()
        intercept, slope = 5.0, 0.25
        for batch in (10, 50, 100, 400, 800):
            est.observe("cpu", batch, intercept + slope * batch)
        coeffs = est.linear_coefficients("cpu")
        assert coeffs is not None
        assert coeffs[0] == pytest.approx(intercept, abs=1e-6)
        assert coeffs[1] == pytest.approx(slope, abs=1e-9)
        # prediction for an unseen batch uses the fit
        assert est.predict_ms("cpu", 333) == pytest.approx(intercept + slope * 333, rel=1e-6)

    def test_linear_coefficients_need_two_batches(self):
        est = OnlineLatencyEstimator()
        est.observe("cpu", 10, 5.0)
        assert est.linear_coefficients("cpu") is None

    def test_slope_never_negative(self):
        est = OnlineLatencyEstimator()
        est.observe("cpu", 10, 100.0)
        est.observe("cpu", 1000, 10.0)  # decreasing data
        intercept, slope = est.linear_coefficients("cpu")
        assert slope == 0.0
        assert est.predict_ms("cpu", 500) > 0

    def test_types_are_independent(self):
        est = OnlineLatencyEstimator()
        est.observe("a", 10, 5.0)
        assert est.predict_ms("b", 10) == est.cold_start_prior_ms

    def test_invalid_observations(self):
        est = OnlineLatencyEstimator()
        with pytest.raises(ValueError):
            est.observe("a", 10, 0.0)
        with pytest.raises(ValueError):
            est.observe("a", 0, 1.0)
        with pytest.raises(ValueError):
            OnlineLatencyEstimator(cold_start_prior_ms=0.0)

    def test_predict_many(self):
        est = OnlineLatencyEstimator()
        for batch in (10, 100):
            est.observe("cpu", batch, float(batch))
        out = est.predict_many_ms("cpu", [10, 100])
        assert out[0] == pytest.approx(10.0)
        assert out[1] == pytest.approx(100.0)


class TestNoisyLatencyEstimator:
    def test_noise_perturbs_predictions(self, profiles, rm2):
        inner = PerfectLatencyEstimator(profiles, rm2)
        noisy = NoisyLatencyEstimator(inner, relative_std=0.05, rng=0)
        true = inner.predict_ms("g4dn.xlarge", 500)
        draws = [noisy.predict_ms("g4dn.xlarge", 500) for _ in range(20)]
        assert len(set(draws)) > 1
        assert np.mean(draws) == pytest.approx(true, rel=0.1)

    def test_zero_noise_identity(self, profiles, rm2):
        inner = PerfectLatencyEstimator(profiles, rm2)
        noisy = NoisyLatencyEstimator(inner, relative_std=0.0, rng=0)
        assert noisy.predict_ms("g4dn.xlarge", 100) == pytest.approx(
            inner.predict_ms("g4dn.xlarge", 100)
        )

    def test_observe_forwards_to_inner(self):
        inner = OnlineLatencyEstimator()
        noisy = NoisyLatencyEstimator(inner, 0.05, rng=0)
        noisy.observe("cpu", 10, 5.0)
        assert inner.observations("cpu") == 1

    def test_invalid_std(self, profiles, rm2):
        with pytest.raises(ValueError):
            NoisyLatencyEstimator(PerfectLatencyEstimator(profiles, rm2), -0.1)

    def test_predictions_stay_positive(self):
        inner = OnlineLatencyEstimator(cold_start_prior_ms=0.001)
        noisy = NoisyLatencyEstimator(inner, relative_std=5.0, rng=1)
        assert all(noisy.predict_ms("x", 1) > 0 for _ in range(50))
