"""Tests for repro.sweep: grid construction, determinism, and the fan-out proof.

The load-bearing property is that the ``ProcessPoolExecutor`` fan-out is
byte-identical to the serial pass: points are self-contained and aggregation is
by grid order, never completion order.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.fuzz.spec import ScenarioSpec
from repro.sweep import (
    SweepRow,
    build_grid,
    format_table,
    run_sweep,
    save_table,
    sweep_digest,
)

SCENARIO_DIR = Path(__file__).parent.parent / "regression" / "scenarios"


@pytest.fixture(scope="module")
def fast_spec():
    return ScenarioSpec.load(SCENARIO_DIR / "static-overload-bursty.json")


class TestGrid:
    def test_specs_outer_seeds_inner(self, fast_spec):
        other = dataclasses.replace(fast_spec, label="twin")
        grid = build_grid([fast_spec, other], [7, 11])
        assert [(p.scenario, p.seed) for p in grid] == [
            (fast_spec.label, 7),
            (fast_spec.label, 11),
            ("twin", 7),
            ("twin", 11),
        ]

    def test_seed_is_substituted_into_the_spec(self, fast_spec):
        grid = build_grid([fast_spec], [7])
        assert grid[0].spec.seed == 7
        assert grid[0].spec.label == fast_spec.label


class TestDeterministicFanOut:
    def test_parallel_is_byte_identical_to_serial(self, fast_spec):
        grid = build_grid([fast_spec], [1, 2, 3, 4])
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=2)
        assert serial == parallel
        assert sweep_digest(serial) == sweep_digest(parallel)

    def test_rows_follow_grid_order(self, fast_spec):
        grid = build_grid([fast_spec], [3, 1, 2])
        rows = run_sweep(grid, workers=1)
        assert [r.seed for r in rows] == [3, 1, 2]

    def test_repeat_runs_reproduce_the_digest(self, fast_spec):
        grid = build_grid([fast_spec], [5])
        assert sweep_digest(run_sweep(grid)) == sweep_digest(run_sweep(grid))


class TestDigestAndTable:
    def _row(self, **overrides):
        base = dict(
            scenario="s",
            seed=1,
            loop="static",
            completions=10,
            violations=0,
            tail_latency_ms=1.25,
            goodput_qps=4.5,
            cost_usd=0.001,
            digest="abc123",
        )
        base.update(overrides)
        return SweepRow(**base)

    def test_digest_is_sensitive_to_every_outcome_field(self):
        base = [self._row()]
        d = sweep_digest(base)
        assert sweep_digest([self._row(seed=2)]) != d
        assert sweep_digest([self._row(completions=11)]) != d
        assert sweep_digest([self._row(tail_latency_ms=1.25 + 1e-12)]) != d
        assert sweep_digest([self._row(digest="abc124")]) != d

    def test_digest_is_sensitive_to_row_order(self):
        a, b = self._row(seed=1), self._row(seed=2)
        assert sweep_digest([a, b]) != sweep_digest([b, a])

    def test_table_lists_rows_and_footer_digest(self):
        rows = [self._row()]
        table = format_table(rows)
        assert "s" in table and "abc123"[:12][:6] in table
        assert sweep_digest(rows) in table

    def test_save_table_writes_title_and_body(self, tmp_path):
        rows = [self._row()]
        out = tmp_path / "sub" / "table.txt"
        save_table(rows, out, title="sweep test")
        text = out.read_text()
        assert text.startswith("sweep test")
        assert sweep_digest(rows) in text
