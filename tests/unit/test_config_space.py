"""Tests for repro.core.config_space."""

import itertools

import pytest

from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG
from repro.core.config_space import enumerate_configs, homogeneous_configs, search_space_size


class TestEnumerateConfigs:
    def test_all_within_budget(self):
        configs = enumerate_configs(2.5)
        assert configs
        assert all(c.fits_budget(2.5) for c in configs)

    def test_no_empty_config(self):
        configs = enumerate_configs(2.5)
        assert all(c.total_instances >= 1 for c in configs)

    def test_no_duplicates(self):
        configs = enumerate_configs(2.5)
        keys = {c.counts for c in configs}
        assert len(keys) == len(configs)

    def test_complete_against_brute_force_small_budget(self):
        budget = 1.2
        configs = {c.counts for c in enumerate_configs(budget)}
        prices = DEFAULT_INSTANCE_CATALOG.price_vector()
        maxes = [int(budget // p) + 1 for p in prices]
        brute = set()
        for counts in itertools.product(*[range(m + 1) for m in maxes]):
            cost = sum(c * p for c, p in zip(counts, prices))
            if cost <= budget + 1e-9 and sum(counts) >= 1:
                brute.add(counts)
        assert configs == brute

    def test_default_budget_search_space_order_of_hundreds(self):
        # The paper quotes an order-of-1000 search space at the 2.5 $/hr budget.
        size = search_space_size(2.5)
        assert 300 <= size <= 3000

    def test_min_base_count(self):
        configs = enumerate_configs(2.5, min_base_count=2)
        assert all(c.base_count >= 2 for c in configs)

    def test_min_total_instances(self):
        configs = enumerate_configs(2.5, min_total_instances=5)
        assert all(c.total_instances >= 5 for c in configs)

    def test_max_per_type(self):
        configs = enumerate_configs(2.5, max_per_type=2)
        assert all(max(c.counts) <= 2 for c in configs)

    def test_budget_scaling_grows_space(self):
        assert search_space_size(10.0, max_per_type=6) > search_space_size(2.5, max_per_type=6)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            enumerate_configs(0.0)

    def test_invalid_min_base(self):
        with pytest.raises(ValueError):
            enumerate_configs(2.5, min_base_count=-1)


class TestHomogeneousConfigs:
    def test_one_per_affordable_type(self):
        configs = homogeneous_configs(2.5)
        assert len(configs) == 4
        by_type = {c.catalog.names[i]: c for c in configs for i, n in enumerate(c.counts) if n}
        assert by_type["g4dn.xlarge"].counts == (4, 0, 0, 0)
        assert by_type["r5n.large"].counts == (0, 0, 16, 0)

    def test_small_budget_excludes_unaffordable_types(self):
        configs = homogeneous_configs(0.2)
        names = {c.catalog.names[i] for c in configs for i, n in enumerate(c.counts) if n}
        assert names == {"r5n.large", "t3.xlarge"}
