"""Tests for repro.cloud.profiles and the calibrated profile table."""

import numpy as np
import pytest

from repro.cloud.models import get_model
from repro.cloud.profile_data import coefficient_table
from repro.cloud.profiles import (
    LinearLatencyProfile,
    ProfileRegistry,
    TabulatedLatencyProfile,
    default_profile_registry,
)


class TestLinearLatencyProfile:
    def test_scalar_latency(self):
        p = LinearLatencyProfile(intercept_ms=2.0, per_item_ms=0.1)
        assert p.latency_ms(10) == pytest.approx(3.0)

    def test_vectorized_latency(self):
        p = LinearLatencyProfile(2.0, 0.1)
        out = p.latency_ms(np.array([1, 10, 100]))
        assert out.shape == (3,)
        assert out[2] == pytest.approx(12.0)

    def test_negative_batch_rejected(self):
        with pytest.raises(ValueError):
            LinearLatencyProfile(1.0, 0.1).latency_ms(-1)

    def test_invalid_coefficients_rejected(self):
        with pytest.raises(ValueError):
            LinearLatencyProfile(-1.0, 0.1)
        with pytest.raises(ValueError):
            LinearLatencyProfile(1.0, 0.0)

    def test_max_feasible_batch_closed_form(self):
        p = LinearLatencyProfile(10.0, 1.0)
        # qos 100 -> 10 + b <= 100 -> b <= 90
        assert p.max_feasible_batch(100.0, 1000) == 90

    def test_max_feasible_batch_capped(self):
        p = LinearLatencyProfile(1.0, 0.001)
        assert p.max_feasible_batch(100.0, 500) == 500

    def test_max_feasible_batch_zero_when_infeasible(self):
        p = LinearLatencyProfile(200.0, 1.0)
        assert p.max_feasible_batch(100.0, 1000) == 0

    def test_closed_form_matches_generic_scan(self):
        p = LinearLatencyProfile(3.0, 0.37)
        generic = super(LinearLatencyProfile, p).max_feasible_batch
        assert p.max_feasible_batch(50.0, 300) == generic(50.0, 300)


class TestTabulatedLatencyProfile:
    def test_interpolation(self):
        p = TabulatedLatencyProfile((1, 100), (2.0, 20.0))
        assert p.latency_ms(50) == pytest.approx(2.0 + (20.0 - 2.0) * 49 / 99)

    def test_extrapolation_beyond_last_point(self):
        p = TabulatedLatencyProfile((1, 100), (2.0, 20.0))
        slope = (20.0 - 2.0) / 99
        assert p.latency_ms(200) == pytest.approx(20.0 + slope * 100)

    def test_from_linear_matches(self):
        lin = LinearLatencyProfile(5.0, 0.2)
        tab = TabulatedLatencyProfile.from_linear(lin, [1, 10, 100, 1000])
        assert tab.latency_ms(10) == pytest.approx(lin.latency_ms(10))
        assert tab.latency_ms(500) == pytest.approx(lin.latency_ms(500))

    def test_invalid_points_rejected(self):
        with pytest.raises(ValueError):
            TabulatedLatencyProfile((1,), (2.0,))
        with pytest.raises(ValueError):
            TabulatedLatencyProfile((5, 1), (2.0, 3.0))
        with pytest.raises(ValueError):
            TabulatedLatencyProfile((1, 2), (2.0, -1.0))


class TestProfileRegistry:
    def test_has_profile_for_all_pairs(self, profiles):
        for model in profiles.models:
            for itype in profiles.catalog.types:
                assert profiles.has_profile(model, itype)

    def test_unknown_pair_raises(self, profiles):
        with pytest.raises(KeyError):
            profiles.profile("RM2", "p3.2xlarge")

    def test_base_is_the_only_fully_feasible_type(self, profiles):
        for model in profiles.models:
            feasible = [t.name for t in profiles.feasible_base_types(model)]
            assert feasible == ["g4dn.xlarge"], f"{model.name}: {feasible}"

    def test_aux_cutoffs_are_positive_and_below_max(self, profiles):
        for model in profiles.models:
            for itype in profiles.catalog.auxiliary_types:
                cutoff = profiles.qos_cutoff_batch(model, itype)
                assert 1 <= cutoff < model.max_batch_size

    def test_pearson_above_0_99(self, profiles):
        batches = np.unique(np.geomspace(1, 1000, 40).astype(int))
        for model in profiles.models:
            for itype in profiles.catalog.types:
                assert profiles.pearson_batch_latency(model, itype, batches) > 0.99

    def test_standalone_qps_respects_qos(self, profiles, rm2):
        qps_all = profiles.standalone_qps(rm2, "r5n.large", [10, 500, 999], respect_qos=False)
        qps_qos = profiles.standalone_qps(rm2, "r5n.large", [10, 500, 999], respect_qos=True)
        assert qps_qos >= qps_all

    def test_standalone_qps_zero_when_nothing_feasible(self, profiles, rm2):
        cutoff = profiles.qos_cutoff_batch(rm2, "t3.xlarge")
        qps = profiles.standalone_qps(rm2, "t3.xlarge", [cutoff + 1, cutoff + 10])
        assert qps == 0.0

    def test_standalone_qps_empty_mix(self, profiles, rm2):
        assert profiles.standalone_qps(rm2, "g4dn.xlarge", []) == 0.0

    def test_with_profile_replaces_one_entry(self, profiles, rm2):
        new = LinearLatencyProfile(1.0, 0.001)
        updated = profiles.with_profile(rm2, "g4dn.xlarge", new)
        assert updated.latency_ms(rm2, "g4dn.xlarge", 100) == pytest.approx(1.1)
        # original untouched
        assert profiles.latency_ms(rm2, "g4dn.xlarge", 100) != pytest.approx(1.1)

    def test_restrict_to_model(self, profiles):
        only_rm2 = profiles.restrict_to_model("RM2")
        assert only_rm2.has_profile("RM2", "g4dn.xlarge")
        assert not only_rm2.has_profile("NCF", "g4dn.xlarge")

    def test_restrict_to_unknown_model(self, profiles):
        with pytest.raises(KeyError):
            profiles.restrict_to_model("GPT")

    def test_registry_rejects_unknown_references(self, catalog):
        with pytest.raises(KeyError):
            ProfileRegistry({("GPT", "g4dn.xlarge"): LinearLatencyProfile(1, 1)})
        with pytest.raises(KeyError):
            ProfileRegistry({("RM2", "weird.type"): LinearLatencyProfile(1, 1)})


class TestCoefficientTable:
    def test_covers_all_model_type_pairs(self, profiles):
        table = coefficient_table()
        assert len(table) == len(profiles.models) * len(profiles.catalog)

    def test_all_coefficients_positive(self):
        for (intercept, slope) in coefficient_table().values():
            assert intercept >= 0
            assert slope > 0

    def test_gpu_meets_qos_at_max_batch_with_margin(self, profiles):
        for model in profiles.models:
            latency = profiles.latency_ms(model, "g4dn.xlarge", model.max_batch_size)
            assert latency < model.qos_ms
