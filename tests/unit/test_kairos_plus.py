"""Tests for repro.core.kairos_plus (Algorithm 1)."""

import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.core.kairos_plus import KairosPlusSearch


def make_ranked(counts_bounds):
    return [(HeterogeneousConfig(c), b) for c, b in counts_bounds]


class SpyEvaluator:
    """Evaluation function that records which configurations were evaluated."""

    def __init__(self, truth):
        self.truth = {tuple(k): v for k, v in truth.items()}
        self.calls = []

    def __call__(self, config):
        self.calls.append(tuple(config.counts))
        return self.truth[tuple(config.counts)]


class TestKairosPlusSearch:
    def test_finds_best_config(self):
        truth = {
            (1, 0, 13, 0): 100.0,
            (2, 0, 9, 0): 120.0,
            (3, 0, 5, 0): 90.0,
            (4, 0, 0, 0): 60.0,
        }
        ranked = make_ranked(
            [((1, 0, 13, 0), 150.0), ((2, 0, 9, 0), 140.0), ((3, 0, 5, 0), 130.0), ((4, 0, 0, 0), 70.0)]
        )
        evaluator = SpyEvaluator(truth)
        result = KairosPlusSearch(ranked, evaluator).run()
        assert result.best_config.counts == (2, 0, 9, 0)
        assert result.best_throughput == pytest.approx(120.0)

    def test_upper_bound_pruning_skips_dominated_configs(self):
        # After evaluating the first config (throughput 100), every candidate whose
        # upper bound is <= 100 must be pruned without evaluation.
        truth = {(2, 0, 9, 0): 100.0, (1, 0, 13, 0): 95.0, (4, 0, 0, 0): 60.0}
        ranked = make_ranked(
            [((2, 0, 9, 0), 150.0), ((1, 0, 13, 0), 90.0), ((4, 0, 0, 0), 80.0)]
        )
        evaluator = SpyEvaluator(truth)
        result = KairosPlusSearch(ranked, evaluator).run()
        assert evaluator.calls == [(2, 0, 9, 0)]
        assert result.num_evaluations == 1
        assert result.pruned_by_bound == 2

    def test_sub_configuration_pruning(self):
        # (1, 0, 5, 0) is a sub-configuration of (2, 0, 9, 0): once the latter is
        # evaluated the former must never be evaluated, even with a higher bound than
        # the current best throughput.
        truth = {(2, 0, 9, 0): 50.0, (1, 0, 5, 0): 45.0, (3, 0, 1, 0): 55.0}
        ranked = make_ranked(
            [((2, 0, 9, 0), 150.0), ((1, 0, 5, 0), 140.0), ((3, 0, 1, 0), 130.0)]
        )
        evaluator = SpyEvaluator(truth)
        result = KairosPlusSearch(ranked, evaluator).run()
        assert (1, 0, 5, 0) not in evaluator.calls
        assert result.pruned_by_subconfig >= 1
        assert result.best_config.counts == (3, 0, 1, 0)

    def test_evaluates_fewer_than_search_space(self):
        # A fairly tight bound set should prune most of a larger space.
        configs = [((1, 0, i, 0), 100.0 + i) for i in range(20)]
        truth = {c: 90.0 + 0.5 * c[2] for c, _ in configs}
        ranked = make_ranked(sorted(configs, key=lambda x: -x[1]))
        evaluator = SpyEvaluator(truth)
        result = KairosPlusSearch(ranked, evaluator).run()
        assert result.num_evaluations < 20
        assert result.search_space_size == 20
        assert 0 < result.evaluated_fraction < 1

    def test_max_evaluations_cap(self):
        configs = [((1, 0, i, 0), 200.0 - i) for i in range(10)]
        truth = {c: 1.0 for c, _ in configs}
        ranked = make_ranked(configs)
        result = KairosPlusSearch(ranked, SpyEvaluator(truth), max_evaluations=3).run()
        assert result.num_evaluations == 3

    def test_requires_sorted_bounds(self):
        ranked = make_ranked([((1, 0, 0, 0), 10.0), ((2, 0, 0, 0), 20.0)])
        with pytest.raises(ValueError):
            KairosPlusSearch(ranked, lambda c: 1.0)

    def test_empty_ranked_rejected(self):
        with pytest.raises(ValueError):
            KairosPlusSearch([], lambda c: 1.0)

    def test_evaluation_trace_recorded(self):
        truth = {(1, 0, 1, 0): 10.0, (2, 0, 0, 0): 30.0}
        ranked = make_ranked([((2, 0, 0, 0), 50.0), ((1, 0, 1, 0), 40.0)])
        result = KairosPlusSearch(ranked, SpyEvaluator(truth)).run()
        assert [tuple(c.counts) for c, _ in result.evaluations][0] == (2, 0, 0, 0)
        assert result.evaluations[0][1] == pytest.approx(30.0)
