"""Tests for repro.core.heterogeneity (Definition 1)."""

import pytest

from repro.core.heterogeneity import coefficients_from_profiles, heterogeneity_coefficients
from repro.core.latency_model import OnlineLatencyEstimator, PerfectLatencyEstimator


class _TableEstimator:
    """Estimator returning fixed largest-query latencies for the paper's example."""

    def __init__(self, table):
        self.table = table

    def predict_ms(self, instance_type, batch_size):
        return self.table[instance_type]


class TestHeterogeneityCoefficients:
    def test_paper_example(self):
        # Largest-query latencies 100 / 200 / 500 ms -> coefficients 1 / 0.5 / 0.2.
        est = _TableEstimator({"I1": 100.0, "I2": 200.0, "I3": 500.0})
        coeffs = heterogeneity_coefficients(est, ["I1", "I2", "I3"], "I1")
        assert coeffs["I1"] == 1.0
        assert coeffs["I2"] == pytest.approx(0.5)
        assert coeffs["I3"] == pytest.approx(0.2)

    def test_clipped_at_one(self):
        est = _TableEstimator({"base": 100.0, "faster": 50.0})
        coeffs = heterogeneity_coefficients(est, ["base", "faster"], "base")
        assert coeffs["faster"] == 1.0

    def test_in_unit_interval(self, profiles, rm2):
        coeffs = coefficients_from_profiles(profiles, rm2)
        assert coeffs["g4dn.xlarge"] == 1.0
        for name, value in coeffs.items():
            assert 0.0 < value <= 1.0

    def test_base_is_most_important(self, profiles):
        for model in profiles.models:
            coeffs = coefficients_from_profiles(profiles, model)
            assert max(coeffs.values()) == coeffs["g4dn.xlarge"]

    def test_unknown_base_rejected(self):
        est = _TableEstimator({"a": 1.0})
        with pytest.raises(ValueError):
            heterogeneity_coefficients(est, ["a"], "b")

    def test_non_positive_latency_rejected(self):
        est = _TableEstimator({"a": 0.0, "b": 1.0})
        with pytest.raises(ValueError):
            heterogeneity_coefficients(est, ["a", "b"], "a")
        est2 = _TableEstimator({"a": 1.0, "b": 0.0})
        with pytest.raises(ValueError):
            heterogeneity_coefficients(est2, ["a", "b"], "a")

    def test_invalid_reference_batch(self):
        est = _TableEstimator({"a": 1.0})
        with pytest.raises(ValueError):
            heterogeneity_coefficients(est, ["a"], "a", reference_batch_size=0)

    def test_online_estimator_cold_start_gives_uniform_weights(self):
        est = OnlineLatencyEstimator()
        coeffs = heterogeneity_coefficients(est, ["x", "y"], "x")
        assert coeffs == {"x": 1.0, "y": 1.0}

    def test_subset_of_types(self, profiles, rm2):
        coeffs = coefficients_from_profiles(
            profiles, rm2, type_names=["g4dn.xlarge", "r5n.large"]
        )
        assert set(coeffs) == {"g4dn.xlarge", "r5n.large"}
