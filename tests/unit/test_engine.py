"""Tests for repro.sim.events and repro.sim.engine."""

import pytest

from repro.sim.engine import EventQueue, SimulationClock
from repro.sim.events import Event, EventKind


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-1.0, EventKind.QUERY_ARRIVAL)

    def test_sort_key_orders_completions_before_arrivals(self):
        completion = Event(10.0, EventKind.SERVICE_COMPLETION)
        arrival = Event(10.0, EventKind.QUERY_ARRIVAL)
        assert completion.sort_key(1) < arrival.sort_key(0)


class TestSimulationClock:
    def test_advance(self):
        clock = SimulationClock()
        assert clock.advance_to(5.0) == 5.0
        assert clock.now_ms == 5.0

    def test_cannot_go_backwards(self):
        clock = SimulationClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_same_time_is_fine(self):
        clock = SimulationClock(10.0)
        assert clock.advance_to(10.0) == 10.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(-1.0)


class TestEventQueue:
    def test_ordering_by_time(self):
        q = EventQueue()
        q.push(Event(5.0, EventKind.QUERY_ARRIVAL, "late"))
        q.push(Event(1.0, EventKind.QUERY_ARRIVAL, "early"))
        assert q.pop().payload == "early"
        assert q.pop().payload == "late"

    def test_completion_before_arrival_at_same_time(self):
        q = EventQueue()
        q.push(Event(3.0, EventKind.QUERY_ARRIVAL, "arrival"))
        q.push(Event(3.0, EventKind.SERVICE_COMPLETION, "completion"))
        assert q.pop().payload == "completion"

    def test_insertion_order_breaks_ties(self):
        q = EventQueue()
        q.push(Event(3.0, EventKind.QUERY_ARRIVAL, "first"))
        q.push(Event(3.0, EventKind.QUERY_ARRIVAL, "second"))
        assert q.pop().payload == "first"

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(Event(1.0, EventKind.CONTROL))
        assert q and len(q) == 1

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(Event(2.0, EventKind.CONTROL, "x"))
        assert q.peek().payload == "x"
        assert len(q) == 1
        assert q.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_pop_until(self):
        q = EventQueue()
        q.push_all([Event(t, EventKind.CONTROL, t) for t in (1.0, 2.0, 3.0, 4.0)])
        popped = [e.payload for e in q.pop_until(2.5)]
        assert popped == [1.0, 2.0]
        assert len(q) == 2

    def test_clear(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.CONTROL))
        q.clear()
        assert len(q) == 0
