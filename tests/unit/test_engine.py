"""Tests for repro.sim.events and repro.sim.engine.

Includes the property-style determinism suite that pins the engine's ordering
contract: events at equal timestamps always pop in kind-then-insertion order
(completions before arrivals before provisioning events), the clock never moves
backwards, and ``pop_until`` honours its epsilon boundary.  The online-elasticity
subsystem relies on this contract for seed-stable replays.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import TIME_EPSILON_MS, EventQueue, SimulationClock
from repro.sim.events import Event, EventKind, ScaleRequest


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-1.0, EventKind.QUERY_ARRIVAL)

    def test_sort_key_orders_completions_before_arrivals(self):
        completion = Event(10.0, EventKind.SERVICE_COMPLETION)
        arrival = Event(10.0, EventKind.QUERY_ARRIVAL)
        assert completion.sort_key(1) < arrival.sort_key(0)


class TestSimulationClock:
    def test_advance(self):
        clock = SimulationClock()
        assert clock.advance_to(5.0) == 5.0
        assert clock.now_ms == 5.0

    def test_cannot_go_backwards(self):
        clock = SimulationClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_same_time_is_fine(self):
        clock = SimulationClock(10.0)
        assert clock.advance_to(10.0) == 10.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(-1.0)


class TestEventQueue:
    def test_ordering_by_time(self):
        q = EventQueue()
        q.push(Event(5.0, EventKind.QUERY_ARRIVAL, "late"))
        q.push(Event(1.0, EventKind.QUERY_ARRIVAL, "early"))
        assert q.pop().payload == "early"
        assert q.pop().payload == "late"

    def test_completion_before_arrival_at_same_time(self):
        q = EventQueue()
        q.push(Event(3.0, EventKind.QUERY_ARRIVAL, "arrival"))
        q.push(Event(3.0, EventKind.SERVICE_COMPLETION, "completion"))
        assert q.pop().payload == "completion"

    def test_insertion_order_breaks_ties(self):
        q = EventQueue()
        q.push(Event(3.0, EventKind.QUERY_ARRIVAL, "first"))
        q.push(Event(3.0, EventKind.QUERY_ARRIVAL, "second"))
        assert q.pop().payload == "first"

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(Event(1.0, EventKind.CONTROL))
        assert q and len(q) == 1

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(Event(2.0, EventKind.CONTROL, "x"))
        assert q.peek().payload == "x"
        assert len(q) == 1
        assert q.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_pop_until(self):
        q = EventQueue()
        q.push_all([Event(t, EventKind.CONTROL, t) for t in (1.0, 2.0, 3.0, 4.0)])
        popped = [e.payload for e in q.pop_until(2.5)]
        assert popped == [1.0, 2.0]
        assert len(q) == 2

    def test_clear(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.CONTROL))
        q.clear()
        assert len(q) == 0


class TestScaleEventKinds:
    """The new provisioning events slot in behind the pre-elasticity kinds."""

    def test_priority_order(self):
        assert (
            EventKind.SERVICE_COMPLETION
            < EventKind.QUERY_ARRIVAL
            < EventKind.CONTROL
            < EventKind.SCALE_UP
            < EventKind.SCALE_DOWN
            < EventKind.INSTANCE_READY
        )

    def test_completion_still_first_at_equal_time(self):
        q = EventQueue()
        q.push(Event(5.0, EventKind.INSTANCE_READY, "ready"))
        q.push(Event(5.0, EventKind.SCALE_UP, ScaleRequest("g4dn.xlarge", 1)))
        q.push(Event(5.0, EventKind.QUERY_ARRIVAL, "arrival"))
        q.push(Event(5.0, EventKind.SERVICE_COMPLETION, "completion"))
        kinds = [q.pop().kind for _ in range(4)]
        assert kinds == sorted(kinds)
        assert kinds[0] == EventKind.SERVICE_COMPLETION

    def test_scale_request_validation(self):
        with pytest.raises(ValueError):
            ScaleRequest("g4dn.xlarge", 0)
        with pytest.raises(ValueError):
            ScaleRequest("g4dn.xlarge", -2)


# -- property-style determinism suite -----------------------------------------------------

#: All event kinds, including the elasticity ones, as plain ints for strategy reuse.
ALL_KINDS = list(EventKind)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from([0.0, 1.0, 2.5, 7.0]), st.sampled_from(ALL_KINDS)),
        min_size=1,
        max_size=40,
    )
)
def test_same_timestamp_interleavings_pop_in_kind_then_sequence_order(items):
    """Any insertion interleaving pops time-sorted, then kind-sorted, then FIFO."""
    q = EventQueue()
    for seq, (t, kind) in enumerate(items):
        q.push(Event(t, kind, payload=seq))
    popped = []
    while q:
        popped.append(q.pop())
    keys = [(e.time_ms, int(e.kind), e.payload) for e in popped]
    assert keys == sorted(keys), "pop order must be (time, kind, insertion) sorted"
    # FIFO among exact duplicates: payload (the insertion sequence) must rise within
    # each (time, kind) group.
    groups = {}
    for e in popped:
        groups.setdefault((e.time_ms, int(e.kind)), []).append(e.payload)
    for seqs in groups.values():
        assert seqs == sorted(seqs)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False), min_size=1, max_size=30
    )
)
def test_clock_never_moves_backwards(times):
    clock = SimulationClock(0.0)
    high_water = 0.0
    for t in times:
        if t + 1e-9 < high_water:
            with pytest.raises(ValueError):
                clock.advance_to(t)
        else:
            clock.advance_to(t)
            high_water = max(high_water, t)
        assert clock.now_ms == high_water


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_pop_until_respects_epsilon_boundary(times, cutoff):
    q = EventQueue()
    for t in times:
        q.push(Event(t, EventKind.CONTROL, t))
    popped = [e.payload for e in q.pop_until(cutoff)]
    remaining = []
    while q:
        remaining.append(q.pop().payload)
    assert all(t <= cutoff + TIME_EPSILON_MS for t in popped)
    assert all(t > cutoff + TIME_EPSILON_MS for t in remaining)
    assert sorted(popped + remaining) == sorted(times)


class TestSharedTimeEpsilon:
    """Pins the module-level epsilon shared by the queue and the clock.

    ``pop_until`` historically used an ad-hoc ``1e-12`` while
    ``SimulationClock.advance_to`` tolerated ``1e-9`` of backward motion; both now
    read :data:`TIME_EPSILON_MS`, so "same instant" means the same thing in event
    batching and in clock monotonicity."""

    def test_value_is_the_clock_tolerance(self):
        assert TIME_EPSILON_MS == 1e-9

    def test_pop_until_boundary(self):
        q = EventQueue()
        q.push(Event(10.0, EventKind.CONTROL, "at"))
        q.push(Event(10.0 + 1e-13, EventKind.CONTROL, "within-eps"))
        q.push(Event(10.0 + TIME_EPSILON_MS, EventKind.CONTROL, "on-boundary"))
        q.push(Event(10.0 + 3e-9, EventKind.CONTROL, "beyond-eps"))
        assert [e.payload for e in q.pop_until(10.0)] == [
            "at",
            "within-eps",
            "on-boundary",  # inclusive: time <= cutoff + epsilon
        ]
        assert [e.payload for e in q.pop_until(10.0 + 3e-9)] == ["beyond-eps"]

    def test_clock_boundary(self):
        clock = SimulationClock(10.0)
        clock.advance_to(10.0 - TIME_EPSILON_MS)  # inside the tolerance: allowed, no-op
        assert clock.now_ms == 10.0
        with pytest.raises(ValueError):
            clock.advance_to(10.0 - 3e-9)  # beyond it: backward motion rejected

    def test_pop_batch_matches_pop_until(self):
        make = lambda: [  # noqa: E731 - tiny local fixture
            Event(10.0, EventKind.QUERY_ARRIVAL, "arrival"),
            Event(10.0, EventKind.SERVICE_COMPLETION, "completion"),
            Event(10.0 + 3e-9, EventKind.CONTROL, "later"),
        ]
        q1, q2 = EventQueue(), EventQueue()
        for e in make():
            q1.push(e)
        for e in make():
            q2.push(e)
        batch = q1.pop_batch(10.0)
        assert [e.payload for e in batch] == [e.payload for e in q2.pop_until(10.0)]
        # completions sort before arrivals inside the batch, as in the lazy form
        assert [e.payload for e in batch] == ["completion", "arrival"]
        assert len(q1) == 1


def test_pop_batch_without_time_takes_earliest_instant():
    q = EventQueue()
    q.push(Event(5.0, EventKind.CONTROL, "b"))
    q.push(Event(3.0, EventKind.CONTROL, "a1"))
    q.push(Event(3.0, EventKind.CONTROL, "a2"))
    assert [e.payload for e in q.pop_batch()] == ["a1", "a2"]
    assert [e.payload for e in q.pop_batch()] == ["b"]
    assert q.pop_batch() == []


class TestPopBatchAnchorRule:
    """Pins the anchor-based (non-transitive) coalescing rule of ``pop_batch``.

    A chain of events whose *consecutive* gaps are each below ``TIME_EPSILON_MS``
    still partitions greedily from the earliest event: the batch limit is
    ``anchor + epsilon`` where the anchor is one single timestamp, never the
    last event admitted so far.  Sharded queues must reuse exactly this rule
    with one global anchor — per-shard anchors would split the same chain
    differently per shard and diverge from the unsharded loop.
    """

    CHAIN = [5.0 + i * 0.6e-9 for i in range(5)]  # gaps 0.6 eps, span 2.4 eps

    def fill(self, times=None):
        q = EventQueue()
        for i, t in enumerate(times if times is not None else self.CHAIN):
            q.push(Event(t, EventKind.CONTROL, i))
        return q

    def test_sub_epsilon_chain_partitions_greedily(self):
        # anchor=5.0 admits offsets {0, 0.6eps}; 1.2eps anchors the next batch
        # (admitting 1.8eps); 2.4eps anchors the last.  Transitive coalescing
        # would drain all five as one batch — that must not happen.
        q = self.fill()
        batches = []
        while q:
            batches.append([e.payload for e in q.pop_batch()])
        assert batches == [[0, 1], [2, 3], [4]]

    def test_explicit_anchor_reproduces_the_implicit_split(self):
        q = self.fill()
        assert [e.payload for e in q.pop_batch(5.0)] == [0, 1]

    def test_anchor_choice_decides_the_split(self):
        # Anchoring at the third chain event widens the limit to 2.2 eps past the
        # base: four events coalesce.  The split is a function of the anchor —
        # which is exactly why a sharded merge must use ONE global anchor.
        q = self.fill()
        assert [e.payload for e in q.pop_batch(self.CHAIN[2])] == [0, 1, 2, 3]

    def test_insertion_order_never_changes_the_partition(self):
        q = self.fill(reversed(self.CHAIN))
        batches = []
        while q:
            batches.append([e.time_ms for e in q.pop_batch()])
        assert batches == [
            [self.CHAIN[0], self.CHAIN[1]],
            [self.CHAIN[2], self.CHAIN[3]],
            [self.CHAIN[4]],
        ]

    def test_event_exactly_on_the_limit_is_admitted(self):
        q = self.fill([5.0, 5.0 + TIME_EPSILON_MS, 5.0 + 2.0 * TIME_EPSILON_MS])
        assert [e.payload for e in q.pop_batch()] == [0, 1]  # limit is inclusive
        assert [e.payload for e in q.pop_batch()] == [2]


class TestEpsilonClusterFuzz:
    """Fuzzed equal-instant event clusters against the pop_batch/TIME_EPSILON_MS
    boundary: timestamps packed below the epsilon must drain as one batch, gaps
    above it must split batches, and nothing is ever lost or reordered."""

    @given(
        base=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        offsets=st.lists(
            st.floats(min_value=0.0, max_value=TIME_EPSILON_MS * 0.9, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        gap=st.floats(min_value=2.5, max_value=10.0, allow_nan=False),
    )
    def test_sub_epsilon_cluster_drains_as_one_batch(self, base, offsets, gap):
        q = EventQueue()
        times = [base + o for o in offsets]
        for t in times:
            q.push(Event(t, EventKind.CONTROL, t))
        straggler = base + gap * TIME_EPSILON_MS
        q.push(Event(straggler, EventKind.CONTROL, straggler))
        batch = q.pop_batch()
        # Large bases absorb sub-epsilon offsets entirely (float granularity), but
        # whatever distinct times exist within the window must drain together.
        assert len(batch) == len(times)
        assert all(e.time_ms <= base + TIME_EPSILON_MS for e in batch)
        remaining = q.pop_batch()
        assert [e.payload for e in remaining] == [straggler] or straggler <= base + TIME_EPSILON_MS

    @given(
        cluster_times=st.lists(
            st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_repeated_pop_batch_conserves_and_orders_events(self, cluster_times):
        q = EventQueue()
        for i, t in enumerate(cluster_times):
            q.push(Event(t, EventKind.CONTROL, i))
        drained = []
        batch_starts = []
        while len(q):
            batch = q.pop_batch()
            assert batch, "pop_batch on a non-empty queue must yield events"
            batch_starts.append(batch[0].time_ms)
            spread = batch[-1].time_ms - batch[0].time_ms
            assert spread <= TIME_EPSILON_MS
            drained.extend(batch)
        assert len(drained) == len(cluster_times)  # conservation
        assert sorted(e.payload for e in drained) == list(range(len(cluster_times)))
        times = [e.time_ms for e in drained]
        assert times == sorted(times)  # global order across batches
        for a, b in zip(batch_starts, batch_starts[1:]):
            assert b - a > TIME_EPSILON_MS  # distinct batches are distinct instants

    @given(
        base=st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False),
        n_arrivals=st.integers(min_value=1, max_value=8),
        n_completions=st.integers(min_value=1, max_value=8),
    )
    def test_completions_sort_before_arrivals_at_an_exact_instant(
        self, base, n_arrivals, n_completions
    ):
        # The kind order (completions first) breaks ties only between events with
        # *exactly* equal timestamps; inside a wider sub-epsilon batch, raw time
        # still orders the events.  Push interleaved to rule out insertion-order luck.
        q = EventQueue()
        for i in range(max(n_arrivals, n_completions)):
            if i < n_arrivals:
                q.push(Event(base, EventKind.QUERY_ARRIVAL, f"a{i}"))
            if i < n_completions:
                q.push(Event(base, EventKind.SERVICE_COMPLETION, f"c{i}"))
        kinds = [e.kind for e in q.pop_batch()]
        assert kinds == (
            [EventKind.SERVICE_COMPLETION] * n_completions
            + [EventKind.QUERY_ARRIVAL] * n_arrivals
        )
