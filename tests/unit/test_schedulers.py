"""Tests for the query-distribution policies in repro.schedulers."""

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.clockwork import ClockworkPolicy
from repro.schedulers.fcfs import RibbonFCFSPolicy
from repro.schedulers.kairos_policy import KairosPolicy
from repro.schedulers.oracle import OracleScheduler, oracle_throughput
from repro.schedulers.threshold import DRSThresholdPolicy, hill_climb_threshold
from repro.sim.cluster import Cluster
from repro.sim.simulation import simulate_serving
from repro.workload.generator import queries_from_batches
from repro.workload.query import Query


@pytest.fixture
def mixed_cluster(rm2, profiles, catalog):
    config = HeterogeneousConfig((1, 0, 2, 0), catalog)
    return Cluster(config, rm2, profiles)


class TestSchedulingPolicyBase:
    def test_bind_required(self, mixed_cluster):
        policy = RibbonFCFSPolicy()
        with pytest.raises(RuntimeError):
            policy._require_bound()
        policy.bind(mixed_cluster, 350.0)
        assert policy._require_bound() is mixed_cluster

    def test_invalid_qos(self, mixed_cluster):
        with pytest.raises(ValueError):
            RibbonFCFSPolicy().bind(mixed_cluster, 0.0)

    def test_schedule_not_implemented(self, mixed_cluster):
        policy = SchedulingPolicy()
        policy.bind(mixed_cluster, 10.0)
        with pytest.raises(NotImplementedError):
            policy.schedule(0.0, [], mixed_cluster)


class TestRibbonFCFS:
    def test_prefers_base_when_idle(self, mixed_cluster):
        policy = RibbonFCFSPolicy()
        policy.bind(mixed_cluster, 350.0)
        decisions = policy.schedule(0.0, [Query(0, 100, 0.0)], mixed_cluster)
        assert len(decisions) == 1
        assert mixed_cluster[decisions[0][1]].type_name == "g4dn.xlarge"

    def test_fills_aux_when_base_busy(self, mixed_cluster):
        policy = RibbonFCFSPolicy()
        policy.bind(mixed_cluster, 350.0)
        mixed_cluster[0].dispatch(Query(99, 100, 0.0), 0.0)
        decisions = policy.schedule(0.0, [Query(0, 100, 0.0)], mixed_cluster)
        assert mixed_cluster[decisions[0][1]].type_name == "r5n.large"

    def test_respects_per_type_qos_limit(self, mixed_cluster, profiles, rm2):
        policy = RibbonFCFSPolicy()
        policy.bind(mixed_cluster, rm2.qos_ms)
        mixed_cluster[0].dispatch(Query(99, 100, 0.0), 0.0)  # base busy
        big = profiles.qos_cutoff_batch(rm2, "r5n.large") + 50
        decisions = policy.schedule(0.0, [Query(0, big, 0.0)], mixed_cluster)
        assert decisions == []  # waits rather than violating on the aux instance

    def test_no_idle_servers_returns_empty(self, mixed_cluster):
        policy = RibbonFCFSPolicy()
        policy.bind(mixed_cluster, 350.0)
        for server in mixed_cluster:
            server.dispatch(Query(server.server_id, 10, 0.0), 0.0)
        assert policy.schedule(0.0, [Query(5, 10, 0.0)], mixed_cluster) == []


class TestDRSThreshold:
    def test_default_threshold_from_cluster(self, mixed_cluster, profiles, rm2):
        policy = DRSThresholdPolicy()
        policy.bind(mixed_cluster, rm2.qos_ms)
        assert policy.threshold == profiles.qos_cutoff_batch(rm2, "r5n.large")

    def test_large_query_routed_to_base(self, mixed_cluster, rm2):
        policy = DRSThresholdPolicy(threshold=200)
        policy.bind(mixed_cluster, rm2.qos_ms)
        decisions = policy.schedule(0.0, [Query(0, 500, 0.0)], mixed_cluster)
        assert mixed_cluster[decisions[0][1]].type_name == "g4dn.xlarge"

    def test_small_query_routed_to_aux(self, mixed_cluster, rm2):
        policy = DRSThresholdPolicy(threshold=200)
        policy.bind(mixed_cluster, rm2.qos_ms)
        decisions = policy.schedule(0.0, [Query(0, 50, 0.0)], mixed_cluster)
        assert mixed_cluster[decisions[0][1]].type_name == "r5n.large"

    def test_waits_when_designated_class_busy(self, mixed_cluster, rm2):
        policy = DRSThresholdPolicy(threshold=200)
        policy.bind(mixed_cluster, rm2.qos_ms)
        for idx in (1, 2):  # occupy both aux servers
            mixed_cluster[idx].dispatch(Query(90 + idx, 50, 0.0), 0.0)
        decisions = policy.schedule(0.0, [Query(0, 50, 0.0)], mixed_cluster)
        assert decisions == []

    def test_fallback_when_class_missing(self, rm2, profiles, catalog):
        config = HeterogeneousConfig((2, 0, 0, 0), catalog)  # no aux at all
        cluster = Cluster(config, rm2, profiles)
        policy = DRSThresholdPolicy(threshold=200)
        policy.bind(cluster, rm2.qos_ms)
        decisions = policy.schedule(0.0, [Query(0, 50, 0.0)], cluster)
        assert len(decisions) == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DRSThresholdPolicy(threshold=0)

    def test_hill_climb_finds_peak(self):
        def throughput(threshold):
            return -((threshold - 430) ** 2)  # peak at 430

        result = hill_climb_threshold(throughput, low=1, high=1000, min_step=4)
        assert abs(result.best_threshold - 430) <= 40
        assert result.num_evaluations <= 40
        assert result.evaluations

    def test_hill_climb_respects_budget(self):
        calls = []

        def throughput(threshold):
            calls.append(threshold)
            return float(threshold)

        hill_climb_threshold(throughput, max_evaluations=5)
        assert len(calls) <= 5

    def test_hill_climb_invalid_range(self):
        with pytest.raises(ValueError):
            hill_climb_threshold(lambda t: 0.0, low=10, high=5)


class TestClockwork:
    def test_assigns_every_pending_query(self, mixed_cluster, rm2):
        policy = ClockworkPolicy()
        policy.bind(mixed_cluster, rm2.qos_ms)
        pending = [Query(i, 50, 0.0) for i in range(5)]
        decisions = policy.schedule(0.0, pending, mixed_cluster)
        assert len(decisions) == 5

    def test_prefers_feasible_instance(self, mixed_cluster, rm2, profiles):
        policy = ClockworkPolicy()
        policy.bind(mixed_cluster, rm2.qos_ms)
        big = profiles.qos_cutoff_batch(rm2, "r5n.large") + 100
        decisions = policy.schedule(0.0, [Query(0, big, 0.0)], mixed_cluster)
        assert mixed_cluster[decisions[0][1]].type_name == "g4dn.xlarge"

    def test_tracks_queue_build_up(self, mixed_cluster, rm2):
        policy = ClockworkPolicy()
        policy.bind(mixed_cluster, rm2.qos_ms)
        first = policy.schedule(0.0, [Query(0, 800, 0.0)], mixed_cluster)
        # the controller's mirror now shows the chosen server busy; an identical query
        # scheduled immediately after must go elsewhere or later
        second = policy.schedule(0.0, [Query(1, 800, 0.0)], mixed_cluster)
        assert first[0][1] == second[0][1] or first[0][1] != second[0][1]
        assert policy._queue_free_ms[first[0][1]] > 0.0


class TestOracle:
    def test_oracle_serves_all_queries(self, profiles, rm2):
        config = HeterogeneousConfig((2, 0, 4, 0))
        batches = [10, 50, 900, 400, 30, 700] * 20
        result = OracleScheduler(profiles, rm2).pack(config, batches)
        assert result.queries_served == len(batches)
        assert result.throughput_qps > 0
        assert result.makespan_ms > 0

    def test_large_queries_served_by_base(self, profiles, rm2):
        config = HeterogeneousConfig((1, 0, 2, 0))
        cutoff = profiles.qos_cutoff_batch(rm2, "r5n.large")
        batches = [cutoff + 100] * 10 + [10] * 10
        result = OracleScheduler(profiles, rm2).pack(config, batches)
        assert result.served_by_type["g4dn.xlarge"] >= 10

    def test_zero_throughput_without_base_for_large_queries(self, profiles, rm2):
        config = HeterogeneousConfig((0, 0, 3, 0))
        batches = [999] * 5
        assert oracle_throughput(config, rm2, profiles, batches) == 0.0

    def test_aux_only_config_with_small_queries(self, profiles, rm2):
        config = HeterogeneousConfig((0, 0, 3, 0))
        assert oracle_throughput(config, rm2, profiles, [10, 20, 30]) > 0

    def test_more_instances_more_throughput(self, profiles, rm2, rng):
        batches = rng.integers(1, 900, size=400)
        small = oracle_throughput(HeterogeneousConfig((1, 0, 2, 0)), rm2, profiles, batches)
        large = oracle_throughput(HeterogeneousConfig((2, 0, 4, 0)), rm2, profiles, batches)
        assert large > small

    def test_best_configuration(self, profiles, rm2, rng):
        batches = rng.integers(1, 900, size=200)
        configs = [HeterogeneousConfig(c) for c in [(1, 0, 1, 0), (2, 0, 4, 0), (1, 0, 6, 0)]]
        best_config, best_qps = OracleScheduler(profiles, rm2).best_configuration(configs, batches)
        assert best_config in configs
        assert best_qps == max(
            oracle_throughput(c, rm2, profiles, batches) for c in configs
        )

    def test_empty_inputs_rejected(self, profiles, rm2):
        oracle = OracleScheduler(profiles, rm2)
        with pytest.raises(ValueError):
            oracle.pack(HeterogeneousConfig((1, 0, 0, 0)), [])
        with pytest.raises(ValueError):
            oracle.best_configuration([], [10])


class TestKairosPolicy:
    def test_learns_latencies_online(self, mixed_cluster, rm2, small_workload):
        policy = KairosPolicy()
        report = simulate_serving(
            mixed_cluster.config, rm2, mixed_cluster.profiles, policy, small_workload
        )
        assert report.completed_all
        assert policy.estimator.observations("g4dn.xlarge") > 0 or policy.estimator.observations(
            "r5n.large"
        ) > 0

    def test_coefficients_available_after_bind(self, mixed_cluster, rm2):
        policy = KairosPolicy(use_perfect_estimator=True)
        policy.bind(mixed_cluster, rm2.qos_ms)
        coeffs = policy.coefficients
        assert coeffs["g4dn.xlarge"] == 1.0
        assert 0 < coeffs["r5n.large"] < 1.0

    def test_schedule_before_bind_raises(self, mixed_cluster):
        with pytest.raises(RuntimeError):
            KairosPolicy().schedule(0.0, [Query(0, 10, 0.0)], mixed_cluster)

    def test_skips_fully_queued_servers(self, mixed_cluster, rm2):
        policy = KairosPolicy(use_perfect_estimator=True)
        policy.bind(mixed_cluster, rm2.qos_ms)
        # fill every server with two dispatched queries -> nothing is eligible
        for server in mixed_cluster:
            server.dispatch(Query(100 + server.server_id, 50, 0.0), 0.0)
            server.dispatch(Query(200 + server.server_id, 50, 0.0), 0.0)
        assert policy.schedule(0.0, [Query(0, 50, 0.0)], mixed_cluster) == []

    def test_prefers_busy_base_over_violating_aux(self, rm2, profiles, catalog):
        # One GPU busy for a short while; a large query that would violate on the idle
        # CPU must wait for the GPU instead of being committed to the CPU.
        config = HeterogeneousConfig((1, 0, 1, 0), catalog)
        cluster = Cluster(config, rm2, profiles)
        policy = KairosPolicy(use_perfect_estimator=True)
        policy.bind(cluster, rm2.qos_ms)
        cluster[0].dispatch(Query(50, 300, 0.0), 0.0)  # GPU busy for ~92 ms
        big = profiles.qos_cutoff_batch(rm2, "r5n.large") + 100
        decisions = policy.schedule(1.0, [Query(0, big, 1.0)], cluster)
        # GPU is eligible (depth 1) and still meets QoS including its remaining time;
        # the idle CPU cannot serve this batch within QoS at all.
        assert len(decisions) == 1
        assert cluster[decisions[0][1]].type_name == "g4dn.xlarge"

    def test_defers_when_no_feasible_slot_yet(self, rm2, profiles, catalog):
        # Both instances are currently infeasible for the query (the GPU because of its
        # backlog, the CPU intrinsically), but the GPU could serve it once free: the
        # policy must defer rather than lock in a violation.
        config = HeterogeneousConfig((1, 0, 1, 0), catalog)
        cluster = Cluster(config, rm2, profiles)
        policy = KairosPolicy(use_perfect_estimator=True)
        policy.bind(cluster, rm2.qos_ms)
        cluster[0].dispatch(Query(50, 1000, 0.0), 0.0)  # GPU busy for ~210 ms
        big = profiles.qos_cutoff_batch(rm2, "r5n.large") + 100
        decisions = policy.schedule(1.0, [Query(0, big, 1.0)], cluster)
        assert decisions == []

    def test_hopeless_queries_are_flushed(self, rm2, profiles, catalog):
        config = HeterogeneousConfig((1, 0, 1, 0), catalog)
        cluster = Cluster(config, rm2, profiles)
        policy = KairosPolicy(use_perfect_estimator=True)
        policy.bind(cluster, rm2.qos_ms)
        # a query that has already waited longer than the QoS target can never meet it
        stale = Query(0, 100, 0.0)
        decisions = policy.schedule(400.0, [stale], cluster)
        assert len(decisions) == 1

    def test_simulation_end_to_end_meets_qos_at_low_load(self, rm2, profiles, catalog):
        config = HeterogeneousConfig((1, 0, 2, 0), catalog)
        queries = queries_from_batches(
            [100, 400, 50, 800, 20, 300] * 10,
            list(np.arange(60) * 200.0),
        )
        report = simulate_serving(config, rm2, profiles, KairosPolicy(), queries)
        assert report.metrics.qos_violation_rate() <= 0.05


class TestEmptyContainerRounds:
    """Scheduling against an empty server container returns [] (no argmin crash)."""

    def test_kairos_single_query_empty_view(self, rm2_cluster):
        from repro.sim.cluster import ClusterView
        from repro.workload.query import Query

        policy = KairosPolicy(use_perfect_estimator=True)
        policy.bind(rm2_cluster, rm2_cluster.model.qos_ms)
        empty = ClusterView(rm2_cluster, [])
        assert policy.schedule(0.0, [Query(0, 8, 0.0)], empty) == []
        # multi-query rounds through the same empty container also decline
        assert policy.schedule(0.0, [Query(1, 8, 0.0), Query(2, 4, 0.0)], empty) == []
