"""Tests for repro.core.upper_bound (Eqs. 9-15)."""

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.core.upper_bound import (
    ThroughputUpperBoundEstimator,
    upper_bound_from_rates,
)
from repro.schedulers.oracle import OracleScheduler
from repro.workload.batch_sizes import production_batch_distribution


class TestUpperBoundFromRates:
    def test_paper_scenario_1_base_bottleneck(self):
        # Fig. 7 scenario 1: Qb=100, Qb_s+=90, Qa=150, f=0.6 -> 225.
        assert upper_bound_from_rates(1, 100, 90, [(1, 150)], 0.6) == pytest.approx(225.0)

    def test_paper_scenario_2_aux_bottleneck(self):
        # Fig. 7 scenario 2: Qa=140, f=0.7 -> 233.33.
        assert upper_bound_from_rates(1, 100, 90, [(1, 140)], 0.7) == pytest.approx(233.333, rel=1e-3)

    def test_multi_node_scaling(self):
        # Eq. 12: doubling the base count doubles the base-bottleneck bound.
        single = upper_bound_from_rates(1, 100, 90, [(1, 150)], 0.6)
        double = upper_bound_from_rates(2, 100, 90, [(2, 150)], 0.6)
        assert double == pytest.approx(2 * single)

    def test_no_aux_reduces_to_homogeneous(self):
        assert upper_bound_from_rates(3, 100, 90, [], 0.5) == pytest.approx(300.0)
        assert upper_bound_from_rates(3, 100, 90, [(2, 0.0)], 0.5) == pytest.approx(300.0)

    def test_no_base_and_tail_queries_gives_zero(self):
        assert upper_bound_from_rates(0, 100, 90, [(5, 100)], 0.9) == 0.0

    def test_no_base_but_full_coverage(self):
        assert upper_bound_from_rates(0, 100, 90, [(5, 100)], 1.0) == pytest.approx(500.0)

    def test_f_one_adds_full_base_rate(self):
        assert upper_bound_from_rates(2, 100, 90, [(1, 50)], 1.0) == pytest.approx(250.0)

    def test_f_zero_ignores_aux(self):
        assert upper_bound_from_rates(2, 100, 90, [(4, 50)], 0.0) == pytest.approx(200.0)

    def test_monotone_in_aux_count(self):
        bounds = [
            upper_bound_from_rates(1, 100, 90, [(v, 50)], 0.8) for v in range(0, 8)
        ]
        assert all(b2 >= b1 - 1e-9 for b1, b2 in zip(bounds, bounds[1:]))

    def test_monotone_in_base_count(self):
        bounds = [
            upper_bound_from_rates(u, 100, 90, [(4, 50)], 0.8) for u in range(0, 6)
        ]
        assert all(b2 >= b1 - 1e-9 for b1, b2 in zip(bounds, bounds[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            upper_bound_from_rates(-1, 100, 90, [], 0.5)
        with pytest.raises(ValueError):
            upper_bound_from_rates(1, 100, 90, [], 1.5)
        with pytest.raises(ValueError):
            upper_bound_from_rates(1, 100, 90, [(-1, 10)], 0.5)
        with pytest.raises(ValueError):
            upper_bound_from_rates(1, -5, 90, [], 0.5)


@pytest.fixture
def estimator(profiles, rm2, rng):
    samples = production_batch_distribution().sample(6000, rng)
    return ThroughputUpperBoundEstimator(profiles, rm2, samples)


class TestThroughputUpperBoundEstimator:
    def test_inputs_for_config(self, estimator):
        config = HeterogeneousConfig((2, 0, 9, 0))
        inputs = estimator.inputs_for(config)
        assert inputs.base_count == 2
        assert len(inputs.aux) == 1
        assert inputs.aux[0][0] == 9
        assert 0.0 < inputs.f < 1.0
        assert inputs.s == estimator.cutoff_of("r5n.large")
        assert inputs.q_b > inputs.q_b_splus > 0

    def test_homogeneous_config_inputs(self, estimator):
        config = HeterogeneousConfig((4, 0, 0, 0))
        inputs = estimator.inputs_for(config)
        assert inputs.aux == ()
        assert inputs.f == 0.0
        assert estimator.upper_bound(config) == pytest.approx(4 * inputs.q_b)

    def test_s_is_max_cutoff_of_present_aux_types(self, estimator):
        only_t3 = HeterogeneousConfig((1, 0, 0, 5))
        both = HeterogeneousConfig((1, 0, 5, 5))
        assert estimator.inputs_for(only_t3).s == estimator.cutoff_of("t3.xlarge")
        assert estimator.inputs_for(both).s == max(
            estimator.cutoff_of("r5n.large"), estimator.cutoff_of("t3.xlarge")
        )

    def test_upper_bound_positive_for_mixed_configs(self, estimator):
        for counts in [(1, 0, 13, 0), (2, 1, 4, 1), (3, 1, 3, 0)]:
            assert estimator.upper_bound(HeterogeneousConfig(counts)) > 0

    def test_upper_bound_monotone_when_adding_instances(self, estimator):
        base = HeterogeneousConfig((1, 0, 3, 0))
        bigger = HeterogeneousConfig((2, 0, 3, 0))
        more_aux = HeterogeneousConfig((1, 0, 6, 0))
        assert estimator.upper_bound(bigger) >= estimator.upper_bound(base) - 1e-9
        assert estimator.upper_bound(more_aux) >= estimator.upper_bound(base) - 1e-9

    def test_upper_bound_tracks_oracle_packing(self, estimator, profiles, rm2, rng):
        """The bound approximately dominates the clairvoyant packing's throughput.

        The paper's formula assumes the base instances spend their slack on the *full*
        query mix while the auxiliary types serve every query below the largest cutoff;
        the clairvoyant packing instead splits the mix at a better threshold, so on some
        configurations it can exceed the closed-form value by a few percent.  The test
        asserts the bound stays within 10% of (and mostly above) the packing, which is
        what the ranking use-case needs.
        """
        oracle = OracleScheduler(profiles, rm2)
        samples = estimator._samples
        ubs, oracles = [], []
        for counts in [(1, 0, 13, 0), (2, 0, 9, 0), (3, 1, 3, 0), (4, 0, 0, 0), (2, 2, 2, 2)]:
            config = HeterogeneousConfig(counts)
            ub = estimator.upper_bound(config)
            oracle_qps = oracle.throughput_qps(config, samples)
            ubs.append(ub)
            oracles.append(oracle_qps)
            assert ub >= oracle_qps * 0.85, f"{config}: UB {ub} << oracle {oracle_qps}"
        # the bound's *ordering* must agree with the packing's ordering (that is what
        # the configuration ranking relies on)
        ub_rank = np.argsort(np.argsort(ubs))
        oracle_rank = np.argsort(np.argsort(oracles))
        assert np.corrcoef(ub_rank, oracle_rank)[0, 1] > 0.85

    def test_rank_configs_sorted(self, estimator):
        configs = [
            HeterogeneousConfig(c)
            for c in [(1, 0, 13, 0), (4, 0, 0, 0), (2, 0, 9, 0), (1, 1, 1, 1)]
        ]
        ranked = estimator.rank_configs(configs)
        bounds = [b for _, b in ranked]
        assert bounds == sorted(bounds, reverse=True)
        assert len(ranked) == len(configs)

    def test_upper_bounds_vectorized(self, estimator):
        configs = [HeterogeneousConfig((1, 0, i, 0)) for i in range(5)]
        bounds = estimator.upper_bounds(configs)
        assert bounds.shape == (5,)

    def test_from_distribution_constructor(self, profiles, rm2):
        est = ThroughputUpperBoundEstimator.from_distribution(
            profiles, rm2, production_batch_distribution(), num_samples=2000, rng=0
        )
        assert est.upper_bound(HeterogeneousConfig((2, 0, 9, 0))) > 0

    def test_empty_samples_rejected(self, profiles, rm2):
        with pytest.raises(ValueError):
            ThroughputUpperBoundEstimator(profiles, rm2, [])

    def test_invalid_samples_rejected(self, profiles, rm2):
        with pytest.raises(ValueError):
            ThroughputUpperBoundEstimator(profiles, rm2, [0, 10])

    def test_base_type_name(self, estimator):
        assert estimator.base_type_name == "g4dn.xlarge"
