"""Tests for repro.sim.capacity (allowable-throughput measurement)."""

import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.schedulers.fcfs import RibbonFCFSPolicy
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.capacity import measure_allowable_throughput
from repro.workload.batch_sizes import FixedBatchSizes
from repro.workload.generator import WorkloadSpec


@pytest.fixture
def fixed_spec():
    return WorkloadSpec(batch_sizes=FixedBatchSizes(100), num_queries=300)


class TestMeasureAllowableThroughput:
    def test_single_server_close_to_service_rate(self, rm2, profiles, fixed_spec, catalog):
        config = HeterogeneousConfig((1, 0, 0, 0), catalog)
        result = measure_allowable_throughput(
            config, rm2, profiles, RibbonFCFSPolicy,
            workload_spec=fixed_spec, rng=0, max_iterations=8,
        )
        service_rate = 1000.0 / profiles.latency_ms(rm2, "g4dn.xlarge", 100)
        # the measured allowable throughput cannot exceed the service rate and should be
        # a sizable fraction of it (waiting is bounded by the loose RM2 QoS)
        assert 0.4 * service_rate < result.qps <= service_rate * 1.05
        assert result.num_simulations == len(result.probes)
        assert result.feasible_rates and result.infeasible_rates

    def test_more_servers_give_more_throughput(self, rm2, profiles, fixed_spec, catalog):
        one = measure_allowable_throughput(
            HeterogeneousConfig((1, 0, 0, 0), catalog), rm2, profiles, RibbonFCFSPolicy,
            workload_spec=fixed_spec, rng=1, max_iterations=6,
        )
        three = measure_allowable_throughput(
            HeterogeneousConfig((3, 0, 0, 0), catalog), rm2, profiles, RibbonFCFSPolicy,
            workload_spec=fixed_spec, rng=1, max_iterations=6,
        )
        assert three.qps > 1.8 * one.qps

    def test_infeasible_config_returns_zero(self, rm2, profiles, catalog):
        # t3-only pool cannot serve batch-1000 queries within RM2's QoS at any rate.
        config = HeterogeneousConfig((0, 0, 0, 2), catalog)
        spec = WorkloadSpec(batch_sizes=FixedBatchSizes(1000), num_queries=100)
        result = measure_allowable_throughput(
            config, rm2, profiles, RibbonFCFSPolicy,
            workload_spec=spec, rng=2, max_iterations=4,
        )
        assert result.qps == 0.0

    def test_result_metadata(self, rm2, profiles, fixed_spec, catalog):
        config = HeterogeneousConfig((1, 0, 1, 0), catalog)
        result = measure_allowable_throughput(
            config, rm2, profiles, KairosPolicy,
            workload_spec=fixed_spec, rng=3, max_iterations=4,
        )
        assert result.config == config
        assert result.model_name == "RM2"
        assert result.num_queries == fixed_spec.num_queries

    def test_deterministic_given_seed(self, rm2, profiles, fixed_spec, catalog):
        config = HeterogeneousConfig((1, 0, 2, 0), catalog)

        def run():
            return measure_allowable_throughput(
                config, rm2, profiles, KairosPolicy,
                workload_spec=fixed_spec, rng=7, max_iterations=5,
            ).qps

        assert run() == pytest.approx(run())

    def test_invalid_arguments(self, rm2, profiles, catalog, fixed_spec):
        config = HeterogeneousConfig((1, 0, 0, 0), catalog)
        with pytest.raises(ValueError):
            measure_allowable_throughput(
                config, rm2, profiles, RibbonFCFSPolicy,
                workload_spec=fixed_spec, rel_tolerance=0.0,
            )
        with pytest.raises(ValueError):
            measure_allowable_throughput(
                config, rm2, profiles, RibbonFCFSPolicy,
                workload_spec=fixed_spec, max_iterations=0,
            )

    def test_num_queries_override(self, rm2, profiles, catalog, fixed_spec):
        config = HeterogeneousConfig((1, 0, 0, 0), catalog)
        result = measure_allowable_throughput(
            config, rm2, profiles, RibbonFCFSPolicy,
            workload_spec=fixed_spec, num_queries=120, rng=0, max_iterations=3,
        )
        assert result.num_queries == 120
