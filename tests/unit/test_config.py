"""Tests for repro.cloud.config."""

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig, parse_config
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG


class TestConstruction:
    def test_counts_and_str(self):
        config = HeterogeneousConfig((3, 1, 3, 0))
        assert str(config) == "(3, 1, 3, 0)"
        assert config.total_instances == 7

    def test_from_mapping(self):
        config = HeterogeneousConfig.from_mapping({"g4dn.xlarge": 2, "r5n.large": 5})
        assert config.counts == (2, 0, 5, 0)

    def test_from_mapping_unknown_type(self):
        with pytest.raises(KeyError):
            HeterogeneousConfig.from_mapping({"weird": 1})

    def test_homogeneous_and_empty(self):
        homog = HeterogeneousConfig.homogeneous("g4dn.xlarge", 4)
        assert homog.counts == (4, 0, 0, 0)
        assert homog.is_homogeneous()
        assert HeterogeneousConfig.empty().is_empty()

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousConfig((1, 2))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousConfig((1, -1, 0, 0))

    def test_non_integer_count_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousConfig((1.5, 0, 0, 0))


class TestAccessors:
    def test_count_of_and_base(self):
        config = HeterogeneousConfig((2, 1, 0, 3))
        assert config.count_of("g4dn.xlarge") == 2
        assert config.base_count == 2
        assert config.auxiliary_counts == {"c5n.2xlarge": 1, "r5n.large": 0, "t3.xlarge": 3}

    def test_as_vector_and_mapping(self):
        config = HeterogeneousConfig((1, 2, 3, 4))
        assert np.array_equal(config.as_vector(), [1, 2, 3, 4])
        assert config.as_mapping()["t3.xlarge"] == 4

    def test_is_homogeneous_false_for_mixture(self):
        assert not HeterogeneousConfig((1, 1, 0, 0)).is_homogeneous()

    def test_expand_instance_types_order(self):
        config = HeterogeneousConfig((2, 0, 1, 0))
        names = [t.name for t in config.expand_instance_types()]
        assert names == ["g4dn.xlarge", "g4dn.xlarge", "r5n.large"]

    def test_iteration(self):
        pairs = dict(HeterogeneousConfig((1, 0, 0, 2)))
        assert pairs["g4dn.xlarge"] == 1
        assert pairs["t3.xlarge"] == 2


class TestCost:
    def test_cost_per_hour_paper_example(self):
        # (3, 1, 3) over g4dn/c5n/r5n is the paper's winning Fig. 1 configuration.
        config = HeterogeneousConfig((3, 1, 3, 0))
        expected = 3 * 0.526 + 0.432 + 3 * 0.149
        assert config.cost_per_hour() == pytest.approx(expected)

    def test_fits_budget(self):
        config = HeterogeneousConfig((4, 0, 0, 0))
        assert config.fits_budget(2.5)
        assert not config.fits_budget(2.0)

    def test_empty_config_costs_nothing(self):
        assert HeterogeneousConfig.empty().cost_per_hour() == 0.0


class TestStructure:
    def test_sub_config_relation(self):
        small = HeterogeneousConfig((1, 0, 2, 0))
        big = HeterogeneousConfig((2, 0, 2, 0))
        assert small.is_sub_config_of(big)
        assert big.is_super_config_of(small)
        assert not big.is_sub_config_of(small)

    def test_config_is_not_sub_config_of_itself(self):
        config = HeterogeneousConfig((1, 1, 1, 1))
        assert not config.is_sub_config_of(config)

    def test_incomparable_configs(self):
        a = HeterogeneousConfig((2, 0, 0, 0))
        b = HeterogeneousConfig((0, 0, 3, 0))
        assert not a.is_sub_config_of(b)
        assert not b.is_sub_config_of(a)

    def test_add(self):
        config = HeterogeneousConfig((1, 0, 0, 0)).add("r5n.large", 3)
        assert config.counts == (1, 0, 3, 0)

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousConfig((1, 0, 0, 0)).add("r5n.large", -1)

    def test_distance_squared(self):
        a = HeterogeneousConfig((1, 0, 0, 0))
        b = HeterogeneousConfig((3, 0, 2, 0))
        assert a.distance_squared(b) == pytest.approx(4 + 4)
        assert a.distance_squared(a) == 0.0

    def test_different_catalog_rejected(self):
        sub_catalog = DEFAULT_INSTANCE_CATALOG.subset(["g4dn.xlarge", "r5n.large"])
        a = HeterogeneousConfig((1, 0, 0, 0))
        b = HeterogeneousConfig((1, 0), sub_catalog)
        with pytest.raises(ValueError):
            a.distance_squared(b)


class TestParseConfig:
    def test_parse_string(self):
        assert parse_config("(3, 1, 3)").counts == (3, 1, 3, 0)

    def test_parse_list_padding(self):
        assert parse_config([2]).counts == (2, 0, 0, 0)

    def test_parse_mapping(self):
        assert parse_config({"r5n.large": 9}).counts == (0, 0, 9, 0)

    def test_parse_existing_config_passthrough(self):
        config = HeterogeneousConfig((1, 1, 1, 1))
        assert parse_config(config) is config

    def test_parse_empty_string(self):
        assert parse_config("()").is_empty()

    def test_too_many_entries_rejected(self):
        with pytest.raises(ValueError):
            parse_config([1, 2, 3, 4, 5])
