"""Tests for repro.sim.simulation."""

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.schedulers.fcfs import RibbonFCFSPolicy
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.simulation import ServingSimulation, simulate_serving
from repro.sim.cluster import Cluster
from repro.workload.generator import queries_from_batches
from repro.workload.query import Query


@pytest.fixture
def single_gpu_config(catalog):
    return HeterogeneousConfig((1, 0, 0, 0), catalog)


class TestSimulateServing:
    def test_all_queries_served(self, single_gpu_config, rm2, profiles, small_workload):
        report = simulate_serving(
            single_gpu_config, rm2, profiles, RibbonFCFSPolicy(), small_workload
        )
        assert report.completed_all
        assert len(report.metrics) == len(small_workload)
        assert report.dispatched_queries == len(small_workload)

    def test_latency_matches_profile_when_uncontended(self, single_gpu_config, rm2, profiles):
        # Widely spaced arrivals: no queueing, so latency == service latency == profile.
        queries = queries_from_batches([100, 200, 300], [0.0, 10_000.0, 20_000.0])
        report = simulate_serving(
            single_gpu_config, rm2, profiles, RibbonFCFSPolicy(), queries
        )
        for record in report.metrics.records:
            expected = profiles.latency_ms(rm2, "g4dn.xlarge", record.query.batch_size)
            assert record.latency_ms == pytest.approx(expected)
            assert record.waiting_ms == pytest.approx(0.0)

    def test_fcfs_queueing_on_single_server(self, single_gpu_config, rm2, profiles):
        # Two queries arriving together: the second waits for the first.
        queries = queries_from_batches([100, 100], [0.0, 0.0])
        report = simulate_serving(
            single_gpu_config, rm2, profiles, RibbonFCFSPolicy(), queries
        )
        records = sorted(report.metrics.records, key=lambda r: r.query.query_id)
        service = profiles.latency_ms(rm2, "g4dn.xlarge", 100)
        assert records[0].latency_ms == pytest.approx(service)
        assert records[1].latency_ms == pytest.approx(2 * service)

    def test_dispatch_overhead_adds_latency(self, single_gpu_config, rm2, profiles):
        queries = queries_from_batches([100], [0.0])
        base = simulate_serving(
            single_gpu_config, rm2, profiles, RibbonFCFSPolicy(), queries
        ).metrics.records[0]
        with_overhead = simulate_serving(
            single_gpu_config, rm2, profiles, RibbonFCFSPolicy(), queries,
            dispatch_overhead_ms=3.0,
        ).metrics.records[0]
        assert with_overhead.latency_ms == pytest.approx(base.latency_ms + 3.0)

    def test_warmup_excludes_first_queries(self, single_gpu_config, rm2, profiles, small_workload):
        full = simulate_serving(
            single_gpu_config, rm2, profiles, KairosPolicy(), small_workload
        )
        warm = simulate_serving(
            single_gpu_config, rm2, profiles, KairosPolicy(), small_workload,
            warmup_queries=30,
        )
        assert len(full.metrics) == len(small_workload)
        assert len(warm.metrics) == len(small_workload) - 30

    def test_early_stop_on_violation_budget(self, single_gpu_config, rm2, profiles):
        # An absurd arrival rate forces violations; the run must stop early.
        queries = queries_from_batches([900] * 200, list(np.linspace(0, 10, 200)))
        report = simulate_serving(
            single_gpu_config, rm2, profiles, RibbonFCFSPolicy(), queries,
            max_violations=3,
        )
        assert report.early_stopped
        assert not report.completed_all
        assert len(report.metrics) < 200

    def test_empty_workload_is_a_valid_noop(self, single_gpu_config, rm2, profiles):
        report = simulate_serving(single_gpu_config, rm2, profiles, RibbonFCFSPolicy(), [])
        assert report.total_queries == 0
        assert report.dispatched_queries == 0
        assert report.completed_all
        assert len(report.metrics) == 0
        assert report.unserved_queries == 0

    def test_report_summary_and_utilization(self, small_config, rm2, profiles, small_workload):
        report = simulate_serving(small_config, rm2, profiles, KairosPolicy(), small_workload)
        summary = report.summary()
        assert summary["num_queries"] == len(small_workload)
        util = report.utilization_by_type()
        assert set(util) <= {"g4dn.xlarge", "c5n.2xlarge", "r5n.large", "t3.xlarge"}
        assert all(0.0 <= u <= 1.0 for u in util.values())

    def test_deterministic_given_seed(self, small_config, rm2, profiles, small_workload):
        def run():
            return simulate_serving(
                small_config, rm2, profiles, KairosPolicy(), small_workload, rng=5
            ).metrics.tail_latency_ms()

        assert run() == pytest.approx(run())


class _BadPolicy(RibbonFCFSPolicy):
    """Policy that assigns a query that is not pending (must be rejected)."""

    def schedule(self, now_ms, pending, cluster):
        rogue = Query(99999, 10, 0.0)
        return [(rogue, 0)]


class _BadServerPolicy(RibbonFCFSPolicy):
    """Policy that assigns to a non-existent server index."""

    def schedule(self, now_ms, pending, cluster):
        return [(pending[0], 999)]


class _LazyPolicy(RibbonFCFSPolicy):
    """Policy that never schedules anything (must trip the progress guard)."""

    def schedule(self, now_ms, pending, cluster):
        return []


class TestPolicyContractEnforcement:
    def test_unknown_query_rejected(self, single_gpu_config, rm2, profiles):
        queries = queries_from_batches([10], [0.0])
        with pytest.raises(ValueError):
            simulate_serving(single_gpu_config, rm2, profiles, _BadPolicy(), queries)

    def test_unknown_server_rejected(self, single_gpu_config, rm2, profiles):
        queries = queries_from_batches([10], [0.0])
        with pytest.raises(ValueError):
            simulate_serving(single_gpu_config, rm2, profiles, _BadServerPolicy(), queries)

    def test_no_progress_terminates(self, single_gpu_config, rm2, profiles):
        queries = queries_from_batches([10, 20], [0.0, 1.0])
        report = simulate_serving(single_gpu_config, rm2, profiles, _LazyPolicy(), queries)
        # the simulation ends without serving anything rather than hanging
        assert len(report.metrics) == 0
        assert not report.completed_all

    def test_invalid_warmup(self, single_gpu_config, rm2, profiles, rm2_cluster):
        with pytest.raises(ValueError):
            ServingSimulation(rm2_cluster, RibbonFCFSPolicy(), warmup_queries=-1)
