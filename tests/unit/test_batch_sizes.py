"""Tests for repro.workload.batch_sizes."""

import numpy as np
import pytest

from repro.workload.batch_sizes import (
    EmpiricalBatchSizes,
    FixedBatchSizes,
    GaussianBatchSizes,
    TruncatedLogNormalBatchSizes,
    production_batch_distribution,
)


class TestTruncatedLogNormal:
    def test_samples_within_bounds(self, rng):
        dist = TruncatedLogNormalBatchSizes(median=80, sigma=1.25, max_batch=1000)
        samples = dist.sample(5000, rng)
        assert samples.dtype.kind == "i"
        assert samples.min() >= 1
        assert samples.max() <= 1000

    def test_skewed_toward_small_batches(self, rng):
        dist = production_batch_distribution()
        samples = dist.sample(20000, rng)
        assert np.median(samples) < np.mean(samples)  # right-skewed
        assert np.median(samples) < 200

    def test_fraction_at_or_below_monotone(self):
        dist = production_batch_distribution()
        values = [dist.fraction_at_or_below(s) for s in (1, 10, 100, 500, 999, 1000)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] == 1.0

    def test_fraction_bounds(self):
        dist = production_batch_distribution()
        assert dist.fraction_at_or_below(0) == 0.0
        assert dist.fraction_at_or_below(10_000) == 1.0

    def test_fraction_matches_empirical(self, rng):
        dist = production_batch_distribution()
        samples = dist.sample(40000, rng)
        for s in (50, 200, 600):
            empirical = np.mean(samples <= s)
            assert dist.fraction_at_or_below(s) == pytest.approx(empirical, abs=0.02)

    def test_mean_batch_close_to_empirical(self, rng):
        dist = production_batch_distribution()
        samples = dist.sample(60000, rng)
        assert dist.mean_batch() == pytest.approx(np.mean(samples), rel=0.05)

    def test_deterministic_with_seed(self):
        dist = production_batch_distribution()
        assert np.array_equal(dist.sample(100, 5), dist.sample(100, 5))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TruncatedLogNormalBatchSizes(median=0)
        with pytest.raises(ValueError):
            TruncatedLogNormalBatchSizes(sigma=0)
        with pytest.raises(ValueError):
            TruncatedLogNormalBatchSizes(min_batch=10, max_batch=5)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            production_batch_distribution().sample(-1)


class TestGaussian:
    def test_samples_within_bounds(self, rng):
        dist = GaussianBatchSizes(mean=250, std=120)
        samples = dist.sample(5000, rng)
        assert samples.min() >= 1
        assert samples.max() <= 1000

    def test_mean_roughly_centered(self, rng):
        dist = GaussianBatchSizes(mean=250, std=50)
        samples = dist.sample(20000, rng)
        assert np.mean(samples) == pytest.approx(250, rel=0.05)
        assert dist.mean_batch() == pytest.approx(np.mean(samples), rel=0.05)

    def test_fraction_at_or_below(self):
        dist = GaussianBatchSizes(mean=500, std=100)
        assert dist.fraction_at_or_below(500) == pytest.approx(0.5, abs=0.01)
        assert dist.fraction_at_or_below(0) == 0.0
        assert dist.fraction_at_or_below(1000) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianBatchSizes(mean=0)
        with pytest.raises(ValueError):
            GaussianBatchSizes(std=0)


class TestEmpirical:
    def test_samples_come_from_observations(self, rng):
        dist = EmpiricalBatchSizes((10, 20, 30))
        samples = dist.sample(500, rng)
        assert set(np.unique(samples)) <= {10, 20, 30}

    def test_support_bounds(self):
        dist = EmpiricalBatchSizes((5, 100, 42))
        assert dist.support() == (5, 100)

    def test_fraction_and_mean(self):
        dist = EmpiricalBatchSizes((10, 20, 30, 40))
        assert dist.fraction_at_or_below(25) == pytest.approx(0.5)
        assert dist.mean_batch() == pytest.approx(25.0)

    def test_from_samples(self):
        dist = EmpiricalBatchSizes.from_samples([3, 3, 9])
        assert dist.mean_batch() == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalBatchSizes(())

    def test_invalid_batches_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalBatchSizes((0, 5))


class TestFixed:
    def test_constant_samples(self):
        dist = FixedBatchSizes(64)
        assert np.all(dist.sample(10) == 64)
        assert dist.mean_batch() == 64
        assert dist.fraction_at_or_below(63) == 0.0
        assert dist.fraction_at_or_below(64) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            FixedBatchSizes(0)
