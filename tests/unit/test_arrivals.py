"""Tests for repro.workload.arrivals."""

import numpy as np
import pytest

from repro.workload.arrivals import (
    BurstyArrivalProcess,
    DeterministicArrivalProcess,
    PoissonArrivalProcess,
)


class TestPoisson:
    def test_length_and_monotone(self, rng):
        times = PoissonArrivalProcess().arrival_times_ms(1000, rate_qps=100, rng=rng)
        assert times.shape == (1000,)
        assert np.all(np.diff(times) >= 0)

    def test_mean_rate_matches(self, rng):
        rate = 200.0
        times = PoissonArrivalProcess().arrival_times_ms(20000, rate, rng=rng)
        measured = 1000.0 * len(times) / (times[-1] - 0.0)
        assert measured == pytest.approx(rate, rel=0.05)

    def test_start_offset(self, rng):
        times = PoissonArrivalProcess().arrival_times_ms(10, 10, rng=rng, start_time_ms=500.0)
        assert times[0] >= 500.0

    def test_zero_queries(self):
        assert PoissonArrivalProcess().arrival_times_ms(0, 10).size == 0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivalProcess().arrival_times_ms(10, 0.0)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            PoissonArrivalProcess().arrival_times_ms(-1, 10.0)

    def test_deterministic_with_seed(self):
        a = PoissonArrivalProcess().arrival_times_ms(50, 100, rng=3)
        b = PoissonArrivalProcess().arrival_times_ms(50, 100, rng=3)
        assert np.array_equal(a, b)


class TestDeterministic:
    def test_exact_spacing(self):
        times = DeterministicArrivalProcess().arrival_times_ms(5, rate_qps=100)
        assert np.allclose(np.diff(times), 10.0)
        assert times[0] == pytest.approx(10.0)

    def test_rate_exact(self):
        times = DeterministicArrivalProcess().arrival_times_ms(1000, 250)
        measured = 1000.0 * 1000 / times[-1]
        assert measured == pytest.approx(250, rel=1e-6)

    def test_zero_queries(self):
        assert DeterministicArrivalProcess().arrival_times_ms(0, 10).size == 0


class TestBursty:
    def test_burst_structure(self, rng):
        proc = BurstyArrivalProcess(burst_size=4)
        times = proc.arrival_times_ms(16, rate_qps=100, rng=rng)
        assert times.shape == (16,)
        # queries within one burst share the same arrival time
        assert np.unique(times).size <= 4

    def test_mean_rate_preserved(self, rng):
        proc = BurstyArrivalProcess(burst_size=5)
        times = proc.arrival_times_ms(20000, 100.0, rng=rng)
        measured = 1000.0 * len(times) / times[-1]
        assert measured == pytest.approx(100.0, rel=0.1)

    def test_invalid_burst_size(self):
        with pytest.raises(ValueError):
            BurstyArrivalProcess(burst_size=0)
