"""Phase-dependent spot pricing: the market schedule and the ledger's exact integral.

``SpotMarketPhase`` historically modulated only the preemption hazard; it now
modulates the spot price too.  These tests pin the billing math by hand: the
piecewise ``cost_in_window`` integral, window additivity across phase boundaries,
the ``cost_by_market`` attribution tracking phase-dependent prices exactly, the
phased ``discount_savings`` identity, and the static fast path staying
byte-identical (``price_schedule() is None`` whenever prices are constant).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cloud.billing import (
    MS_PER_HOUR,
    InstanceUsageLedger,
    UsageInterval,
    schedule_integral_ms,
    schedule_multiplier_at,
)
from repro.cloud.config import HeterogeneousConfig
from repro.cloud.spot import (
    MARKET_ON_DEMAND,
    MARKET_SPOT,
    SpotMarket,
    SpotMarketPhase,
    SpotTypeMarket,
)
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.cluster import Cluster
from repro.sim.preemption import PreemptibleElasticSimulation
from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

MINUTE_MS = 60_000.0


class TestSpotMarketPhasePricing:
    def test_price_multiplier_must_be_positive(self):
        with pytest.raises(ValueError):
            SpotMarketPhase(duration_ms=1000.0, price_multiplier=0.0)

    def test_price_multiplier_at_cycles(self):
        market = SpotTypeMarket(
            type_name="r5n.large",
            discount=0.7,
            phases=(
                SpotMarketPhase(MINUTE_MS, price_multiplier=1.0),
                SpotMarketPhase(MINUTE_MS, price_multiplier=2.0),
            ),
        )
        # base multiplier 0.3, doubled in the second minute of every 2-minute cycle
        assert market.price_multiplier_at(0.0) == pytest.approx(0.3)
        assert market.price_multiplier_at(59_999.0) == pytest.approx(0.3)
        assert market.price_multiplier_at(60_000.0) == pytest.approx(0.6)
        assert market.price_multiplier_at(125_000.0) == pytest.approx(0.3)

    def test_price_schedule_none_when_constant(self):
        no_phases = SpotTypeMarket(type_name="r5n.large", discount=0.7)
        assert no_phases.price_schedule() is None
        hazard_only = SpotTypeMarket(
            type_name="r5n.large",
            discount=0.7,
            phases=(
                SpotMarketPhase(MINUTE_MS, hazard_multiplier=3.0),
                SpotMarketPhase(MINUTE_MS, hazard_multiplier=0.5),
            ),
        )
        assert hazard_only.price_schedule() is None  # prices constant: scalar path

    def test_price_schedule_carries_effective_multipliers(self):
        market = SpotTypeMarket(
            type_name="r5n.large",
            discount=0.7,
            phases=(
                SpotMarketPhase(MINUTE_MS, price_multiplier=1.0),
                SpotMarketPhase(2 * MINUTE_MS, price_multiplier=2.0),
            ),
        )
        assert market.price_schedule() == (
            (MINUTE_MS, pytest.approx(0.3)),
            (2 * MINUTE_MS, pytest.approx(0.6)),
        )

    def test_hazard_modulation_unchanged(self):
        market = SpotTypeMarket(
            type_name="r5n.large",
            discount=0.7,
            preemptions_per_hour=2.0,
            phases=(
                SpotMarketPhase(MINUTE_MS, hazard_multiplier=3.0, price_multiplier=2.0),
                SpotMarketPhase(MINUTE_MS, hazard_multiplier=0.5),
            ),
        )
        assert market.hazard_at(0.0) == pytest.approx(6.0)
        assert market.hazard_at(60_000.0) == pytest.approx(1.0)


class TestScheduleIntegral:
    SCHEDULE = ((MINUTE_MS, 0.3), (MINUTE_MS, 0.6))

    def test_multiplier_at(self):
        assert schedule_multiplier_at(self.SCHEDULE, 30_000.0) == pytest.approx(0.3)
        assert schedule_multiplier_at(self.SCHEDULE, 90_000.0) == pytest.approx(0.6)
        assert schedule_multiplier_at(self.SCHEDULE, 150_000.0) == pytest.approx(0.3)

    def test_hand_computed_integral(self):
        # [30s, 150s): 30s at 0.3, 60s at 0.6, 30s at 0.3 -> 9000 + 36000 + 9000
        assert schedule_integral_ms(self.SCHEDULE, 30_000.0, 150_000.0) == pytest.approx(
            54_000.0
        )

    def test_window_additivity_across_phase_boundaries(self):
        whole = schedule_integral_ms(self.SCHEDULE, 10_000.0, 290_000.0)
        for cut in (30_000.0, 60_000.0, 120_000.0, 123_456.789, 240_000.0):
            split = schedule_integral_ms(
                self.SCHEDULE, 10_000.0, cut
            ) + schedule_integral_ms(self.SCHEDULE, cut, 290_000.0)
            assert math.isclose(whole, split, rel_tol=1e-12)


class TestPhasedInterval:
    def make(self, start_ms=30_000.0, end_ms=150_000.0):
        return UsageInterval(
            server_id=0,
            type_name="r5n.large",
            price_per_hour=3.6,
            start_ms=start_ms,
            end_ms=end_ms,
            market=MARKET_SPOT,
            price_multiplier=0.3,
            price_schedule=((MINUTE_MS, 0.3), (MINUTE_MS, 0.6)),
        )

    def test_hand_computed_cost(self):
        iv = self.make()
        # 3.6 $/hr * 54000 multiplier-weighted ms / 3.6e6 ms/hr = 0.054 $
        assert iv.cost_in_window(0.0, 200_000.0) == pytest.approx(0.054)

    def test_rate_per_hour_at_follows_phases(self):
        iv = self.make()
        assert iv.rate_per_hour_at(45_000.0) == pytest.approx(3.6 * 0.3)
        assert iv.rate_per_hour_at(90_000.0) == pytest.approx(3.6 * 0.6)

    def test_static_interval_math_unchanged(self):
        phased = self.make()
        static = UsageInterval(
            server_id=0,
            type_name="r5n.large",
            price_per_hour=3.6,
            start_ms=30_000.0,
            end_ms=150_000.0,
            market=MARKET_SPOT,
            price_multiplier=0.3,
        )
        expected = static.effective_price_per_hour * 120_000.0 / MS_PER_HOUR
        assert static.cost_in_window(0.0, 200_000.0) == expected  # byte-identical
        # the phased interval bills more: the second phase doubles the price
        assert phased.cost_in_window(0.0, 200_000.0) > expected


class TestLedgerPhasedAttribution:
    def build_ledger(self, catalog):
        ledger = InstanceUsageLedger(catalog)
        # server 0: on-demand r5n for [0, 120s)
        ledger.start(0, "r5n.large", 0.0)
        ledger.stop(0, 120_000.0)
        # server 1: phased spot r5n for [30s, 150s)
        ledger.start(
            1,
            "r5n.large",
            30_000.0,
            price_multiplier=0.3,
            market=MARKET_SPOT,
            price_schedule=((MINUTE_MS, 0.3), (MINUTE_MS, 0.6)),
        )
        ledger.stop(1, 150_000.0)
        return ledger

    def test_cost_by_market_tracks_phases_exactly(self, catalog):
        ledger = self.build_ledger(catalog)
        price = catalog["r5n.large"].price_per_hour
        by_market = ledger.cost_by_market(200_000.0)
        assert by_market[MARKET_ON_DEMAND] == pytest.approx(
            price * 120_000.0 / MS_PER_HOUR
        )
        # spot: 30s@0.3 + 60s@0.6 + 30s@0.3 of the on-demand rate
        assert by_market[MARKET_SPOT] == pytest.approx(price * 54_000.0 / MS_PER_HOUR)
        assert math.isclose(
            sum(by_market.values()), ledger.total_cost(200_000.0), rel_tol=1e-12
        )

    def test_window_additivity_across_phase_boundary(self, catalog):
        ledger = self.build_ledger(catalog)
        whole = ledger.cost_in_window(0.0, 200_000.0)
        for cut in (60_000.0, 90_000.0, 150_000.0):
            split = ledger.cost_in_window(0.0, cut) + ledger.cost_in_window(
                cut, 200_000.0
            )
            assert math.isclose(whole, split, rel_tol=1e-12)

    def test_discount_savings_is_full_price_minus_total(self, catalog):
        ledger = self.build_ledger(catalog)
        horizon = 200_000.0
        full_price = math.fsum(
            iv.price_per_hour * iv.overlap_ms(0.0, horizon) / MS_PER_HOUR
            for iv in ledger.intervals
        )
        assert ledger.discount_savings(horizon) == pytest.approx(
            full_price - ledger.total_cost(horizon)
        )

    def test_concurrent_rate_follows_phases(self, catalog):
        ledger = self.build_ledger(catalog)
        price = catalog["r5n.large"].price_per_hour
        assert ledger.concurrent_cost_per_hour(45_000.0) == pytest.approx(
            price + price * 0.3
        )
        assert ledger.concurrent_cost_per_hour(90_000.0) == pytest.approx(
            price + price * 0.6
        )
        assert ledger.concurrent_cost_per_hour(130_000.0) == pytest.approx(price * 0.3)

    def test_schedule_validation(self, catalog):
        ledger = InstanceUsageLedger(catalog)
        with pytest.raises(ValueError):
            ledger.start(0, "r5n.large", 0.0, price_schedule=())
        with pytest.raises(ValueError):
            ledger.start(0, "r5n.large", 0.0, price_schedule=((1000.0, 0.0),))


class TestSimulationIntegration:
    def run_sim(self, profiles, rm2, catalog, phases):
        cluster = Cluster(HeterogeneousConfig((1, 1, 2, 0), catalog), rm2, profiles)
        market = SpotMarket.uniform(
            catalog, discount=0.7, preemptions_per_hour=0.0, phases=phases
        )
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=60, sigma=0.8),
            num_queries=60,
        )
        queries = WorkloadGenerator(spec).generate(rate_qps=60.0, rng=11)
        sim = PreemptibleElasticSimulation(
            cluster,
            KairosPolicy(),
            market=market,
            spot_server_ids=[3],  # the last r5n
            rng=np.random.default_rng(2),
        )
        return sim.run(queries)

    def test_phased_spot_bill_is_the_piecewise_integral(self, profiles, rm2, catalog):
        phases = (
            SpotMarketPhase(50.0, price_multiplier=1.0),
            SpotMarketPhase(50.0, price_multiplier=3.0),
        )
        report = self.run_sim(profiles, rm2, catalog, phases)
        horizon = report.billing_horizon_ms
        spot = [iv for iv in report.ledger.intervals if iv.market == MARKET_SPOT]
        assert spot and all(iv.price_schedule is not None for iv in spot)
        expected = math.fsum(
            iv.price_per_hour
            * schedule_integral_ms(
                iv.price_schedule,
                max(iv.start_ms, 0.0),
                min(iv.end_ms if iv.end_ms is not None else horizon, horizon),
            )
            / MS_PER_HOUR
            for iv in spot
        )
        assert report.ledger.cost_by_market(horizon)[MARKET_SPOT] == pytest.approx(
            expected
        )

    def test_hazard_only_phases_keep_scalar_billing(self, profiles, rm2, catalog):
        phases = (SpotMarketPhase(50.0, hazard_multiplier=2.0),)
        report = self.run_sim(profiles, rm2, catalog, phases)
        spot = [iv for iv in report.ledger.intervals if iv.market == MARKET_SPOT]
        assert spot and all(iv.price_schedule is None for iv in spot)
        no_phase = self.run_sim(profiles, rm2, catalog, ())
        # zero hazard: phases never fire, so the bills agree to the last bit
        assert report.ledger.total_cost(
            report.billing_horizon_ms
        ) == no_phase.ledger.total_cost(no_phase.billing_horizon_ms)
