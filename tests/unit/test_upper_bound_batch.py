"""Equivalence of the vectorized planner fast path with the scalar upper bound.

``upper_bounds_batch`` must be *bit-identical* to per-config ``upper_bound`` over the
whole configuration space — the planner's ranking (and therefore every selected
configuration) is exactly the seed behaviour, only cheaper.
"""

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.core.config_space import enumerate_configs
from repro.core.kairos import KairosPlanner
from repro.core.upper_bound import ThroughputUpperBoundEstimator
from repro.workload.batch_sizes import (
    GaussianBatchSizes,
    production_batch_distribution,
)


@pytest.fixture
def estimator(profiles, rm2):
    samples = production_batch_distribution().sample(3000, np.random.default_rng(42))
    return ThroughputUpperBoundEstimator(profiles, rm2, samples)


def random_configs(catalog, rng, count=300, max_count=6):
    """A randomized space including the degenerate corners the branches care about."""
    configs = [
        HeterogeneousConfig(tuple(int(c) for c in row), catalog)
        for row in rng.integers(0, max_count + 1, size=(count, len(catalog)))
    ]
    configs.append(HeterogeneousConfig.empty(catalog))  # all-zero
    configs.append(HeterogeneousConfig.homogeneous(catalog.base_type.name, 3, catalog))
    for aux in catalog.auxiliary_types:
        configs.append(HeterogeneousConfig.homogeneous(aux.name, 4, catalog))  # base-free
    return configs


class TestBatchEquivalence:
    def test_bit_identical_over_randomized_space(self, estimator, catalog, rng):
        configs = random_configs(catalog, rng)
        batch = estimator.upper_bounds_batch(configs)
        scalar = np.asarray([estimator.upper_bound(c) for c in configs], dtype=float)
        assert np.array_equal(batch, scalar)  # exact, not approx

    def test_bit_identical_over_budget_space(self, estimator, catalog):
        space = enumerate_configs(2.5, catalog)
        batch = estimator.upper_bounds_batch(space)
        scalar = np.asarray([estimator.upper_bound(c) for c in space], dtype=float)
        assert np.array_equal(batch, scalar)

    def test_upper_bounds_routes_through_batch(self, estimator, catalog, rng):
        configs = random_configs(catalog, rng, count=40)
        assert np.array_equal(
            estimator.upper_bounds(configs), estimator.upper_bounds_batch(configs)
        )

    def test_rank_configs_preserves_seed_ordering(self, estimator, catalog):
        space = enumerate_configs(1.5, catalog)
        ranked = estimator.rank_configs(space)
        bounds = np.asarray([estimator.upper_bound(c) for c in space], dtype=float)
        order = np.argsort(-bounds, kind="stable")
        expected = [(space[int(i)], float(bounds[int(i)])) for i in order]
        assert ranked == expected

    def test_empty_input(self, estimator):
        out = estimator.upper_bounds_batch([])
        assert out.shape == (0,)


class TestUpdateSamples:
    def test_matches_freshly_built_estimator(self, estimator, profiles, rm2, catalog, rng):
        new_samples = GaussianBatchSizes(mean=600, std=150).sample(2000, 7)
        estimator.update_samples(new_samples)
        fresh = ThroughputUpperBoundEstimator(profiles, rm2, new_samples)
        configs = random_configs(catalog, rng, count=120)
        assert np.array_equal(
            estimator.upper_bounds_batch(configs), fresh.upper_bounds_batch(configs)
        )

    def test_cutoff_table_is_kept(self, estimator, catalog):
        cutoffs_before = {t.name: estimator.cutoff_of(t.name) for t in catalog.types}
        estimator.update_samples([1, 2, 3] * 50)
        assert {t.name: estimator.cutoff_of(t.name) for t in catalog.types} == cutoffs_before

    def test_invalid_samples_rejected(self, estimator):
        with pytest.raises(ValueError):
            estimator.update_samples([])
        with pytest.raises(ValueError):
            estimator.update_samples([0, 5])

    def test_planner_updates_in_place(self, profiles):
        planner = KairosPlanner(
            "RM2", 2.5, profiles=profiles,
            batch_distribution=production_batch_distribution(), rng=0,
        )
        before = planner.estimator
        planner.update_batch_samples([10, 50, 200, 900] * 100)
        # the estimator (and its cutoff table) survives; only the window is swapped
        assert planner.estimator is before
        rebuilt = ThroughputUpperBoundEstimator(
            profiles, planner.model, planner.batch_samples, catalog=planner.catalog
        )
        space = enumerate_configs(2.5, planner.catalog)
        assert np.array_equal(
            planner.estimator.upper_bounds_batch(space), rebuilt.upper_bounds_batch(space)
        )
