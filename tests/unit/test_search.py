"""Tests for repro.search: the online configuration-search baselines."""

import numpy as np
import pytest

from repro.cloud.config import HeterogeneousConfig
from repro.core.config_space import enumerate_configs
from repro.search.annealing import SimulatedAnnealingSearch
from repro.search.base import CountingEvaluator, EvaluationBudgetExhausted
from repro.search.bayesian import BayesianOptimizationSearch
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.genetic import GeneticSearch
from repro.search.gp import GaussianProcessRegressor, RBFKernel, expected_improvement
from repro.search.pruning import candidate_pool, config_key, prune_sub_configs
from repro.search.random_search import RandomSearch


@pytest.fixture(scope="module")
def small_space():
    """A compact configuration space (budget 1.5 $/hr, max 3 per type)."""
    return enumerate_configs(1.5, max_per_type=3)


def synthetic_evaluator(config: HeterogeneousConfig) -> float:
    """A smooth synthetic throughput landscape peaking at a mixed configuration."""
    g, c, r, t = config.counts
    return 40.0 * g + 18.0 * r + 9.0 * c + 6.0 * t - 4.0 * (g - 1) ** 2 - 0.8 * (r - 3) ** 2


def true_best(space):
    return max(space, key=synthetic_evaluator)


class TestCountingEvaluator:
    def test_caches_repeated_evaluations(self, small_space):
        calls = []

        def evaluator(config):
            calls.append(config)
            return 1.0

        counting = CountingEvaluator(evaluator)
        counting(small_space[0])
        counting(small_space[0])
        assert len(calls) == 1
        assert counting.num_evaluations == 1
        assert counting.evaluated(small_space[0])

    def test_budget_enforced(self, small_space):
        counting = CountingEvaluator(lambda c: 1.0, max_evaluations=2)
        counting(small_space[0])
        counting(small_space[1])
        with pytest.raises(EvaluationBudgetExhausted):
            counting(small_space[2])

    def test_best_tracking(self, small_space):
        counting = CountingEvaluator(synthetic_evaluator)
        for config in small_space[:10]:
            counting(config)
        best_config, best_value = counting.best()
        assert best_value == max(v for _, v in counting.trace)
        assert counting.best()[0] is best_config

    def test_empty_best(self):
        assert CountingEvaluator(lambda c: 1.0).best() == (None, 0.0)


class TestPruning:
    def test_prune_sub_configs(self, small_space):
        pool = candidate_pool(small_space)
        big = HeterogeneousConfig((1, 1, 3, 0))
        removed = prune_sub_configs(pool, big)
        assert removed > 0
        assert all(not cfg.is_sub_config_of(big) for cfg in pool.values())
        assert config_key(big) in pool  # the evaluated config itself is not a sub-config

    def test_prune_nothing_for_minimal_config(self, small_space):
        pool = candidate_pool(small_space)
        smallest = HeterogeneousConfig((0, 0, 1, 0))
        assert prune_sub_configs(pool, smallest) == 0


class TestExhaustiveSearch:
    def test_covers_whole_space(self, small_space):
        result = ExhaustiveSearch().search(small_space, synthetic_evaluator)
        assert result.num_evaluations == len(small_space)
        assert result.best_config == true_best(small_space)
        assert result.evaluated_fraction == pytest.approx(1.0)

    def test_budget_cap(self, small_space):
        result = ExhaustiveSearch(max_evaluations=5).search(small_space, synthetic_evaluator)
        assert result.num_evaluations == 5

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            ExhaustiveSearch().search([], synthetic_evaluator)


class TestRandomSearch:
    def test_respects_budget_and_finds_good_config(self, small_space):
        result = RandomSearch(max_evaluations=30).search(small_space, synthetic_evaluator, rng=0)
        assert result.num_evaluations == 30
        assert result.best_value >= 0.5 * synthetic_evaluator(true_best(small_space))

    def test_without_budget_covers_space(self, small_space):
        result = RandomSearch().search(small_space, synthetic_evaluator, rng=0)
        assert result.num_evaluations == len(small_space)
        assert result.best_config == true_best(small_space)

    def test_pruning_reduces_evaluations(self, small_space):
        no_prune = RandomSearch().search(small_space, synthetic_evaluator, rng=1)
        pruned = RandomSearch(use_pruning=True).search(small_space, synthetic_evaluator, rng=1)
        assert pruned.num_evaluations < no_prune.num_evaluations

    def test_deterministic_given_seed(self, small_space):
        a = RandomSearch(max_evaluations=10).search(small_space, synthetic_evaluator, rng=5)
        b = RandomSearch(max_evaluations=10).search(small_space, synthetic_evaluator, rng=5)
        assert [c.counts for c, _ in a.evaluations] == [c.counts for c, _ in b.evaluations]

    def test_running_best_monotone(self, small_space):
        result = RandomSearch(max_evaluations=20).search(small_space, synthetic_evaluator, rng=2)
        running = result.running_best()
        assert np.all(np.diff(running) >= 0)
        assert result.evaluations_until_best >= 1


class TestSimulatedAnnealing:
    def test_finds_reasonable_config(self, small_space):
        result = SimulatedAnnealingSearch(max_evaluations=40).search(
            small_space, synthetic_evaluator, rng=0
        )
        assert result.num_evaluations <= 40
        assert result.best_value >= 0.6 * synthetic_evaluator(true_best(small_space))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSearch(initial_temperature=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealingSearch(cooling=1.5)

    def test_trace_recorded(self, small_space):
        result = SimulatedAnnealingSearch(max_evaluations=15).search(
            small_space, synthetic_evaluator, rng=3
        )
        assert len(result.evaluations) == result.num_evaluations > 0


class TestGeneticSearch:
    def test_finds_reasonable_config(self, small_space):
        result = GeneticSearch(max_evaluations=60).search(small_space, synthetic_evaluator, rng=0)
        assert result.best_value >= 0.7 * synthetic_evaluator(true_best(small_space))
        assert result.num_evaluations <= 60

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GeneticSearch(population_size=1)
        with pytest.raises(ValueError):
            GeneticSearch(mutation_rate=1.5)

    def test_population_smaller_than_space(self):
        space = enumerate_configs(0.4, max_per_type=2)
        result = GeneticSearch(population_size=50, generations=2).search(
            space, synthetic_evaluator, rng=0
        )
        assert result.num_evaluations <= len(space)


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 1.0, 4.0, 9.0])
        gp = GaussianProcessRegressor(RBFKernel(length_scale=1.0), noise_variance=1e-6)
        gp.fit(x, y)
        mean, var = gp.predict(x)
        assert np.allclose(mean, y, atol=0.05)
        assert np.all(var >= 0)

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        gp = GaussianProcessRegressor().fit(x, y)
        _, var_near = gp.predict(np.array([[0.5]]))
        _, var_far = gp.predict(np.array([[10.0]]))
        assert var_far > var_near

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.array([[0.0]]))

    def test_fit_shape_mismatch(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.zeros((3, 2)), np.zeros(2))

    def test_expected_improvement_positive_where_mean_exceeds_best(self):
        ei = expected_improvement(np.array([1.0, 5.0]), np.array([0.1, 0.1]), best_observed=2.0)
        assert ei[1] > ei[0]
        assert np.all(ei >= 0)

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            RBFKernel(length_scale=0.0)
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise_variance=0.0)


class TestBayesianOptimization:
    def test_finds_good_config_with_few_evaluations(self, small_space):
        result = BayesianOptimizationSearch(max_evaluations=35, ei_tolerance=1e-4).search(
            small_space, synthetic_evaluator, rng=0
        )
        assert result.num_evaluations <= 35
        assert result.best_value >= 0.75 * synthetic_evaluator(true_best(small_space))

    def test_more_efficient_than_exhaustive(self, small_space):
        result = BayesianOptimizationSearch(max_evaluations=30).search(
            small_space, synthetic_evaluator, rng=1
        )
        assert result.num_evaluations < len(small_space)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BayesianOptimizationSearch(num_initial=0)

    def test_pruning_supported(self, small_space):
        result = BayesianOptimizationSearch(max_evaluations=20, use_pruning=True).search(
            small_space, synthetic_evaluator, rng=2
        )
        assert result.num_evaluations <= 20
