"""Hypothesis properties over the scenario space: every invariant, every loop.

The per-loop properties draw whole scenarios and assert every per-run invariant via
``run_scenario(check=True)``; the derived properties exercise the multi-run
identities (QoS monotone in budget, spot-disabled byte-identity, fault determinism,
PYTHONHASHSEED independence) and the trace-replay equivalence that makes ingested
traces first-class scenario workloads.  Chaos properties re-run the per-loop
invariants with the fault/retry/admission dimensions enabled.

Empty-window draws are NOT assumed away: a spec whose arrival windows produce zero
queries must run as a valid no-op through every loop, so vacuous scenarios are
asserted like any other.

Example counts scale with the hypothesis profile (``ci`` / ``dev`` / ``fuzz``,
registered in ``tests/conftest.py``) unless pinned below because one example is
expensive (subprocesses, multiple full runs).
"""

from __future__ import annotations

import dataclasses
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.invariants import (
    check_fault_determinism,
    check_hashseed_independence,
    check_qos_monotone_in_budget,
    check_spot_disabled_identity,
)
from repro.fuzz.runner import result_digest, run_scenario
from repro.fuzz.spec import ScenarioSpec
from repro.fuzz.strategies import (
    FUZZ_MODELS,
    budget_ladders,
    elastic_scenarios,
    multi_model_scenarios,
    pipeline_scenarios,
    scenario_specs,
    spot_scenarios,
    static_scenarios,
)
from repro.workload.trace_io import Trace, load_trace_jsonl, save_trace_jsonl


def _assert_no_violations(result) -> None:
    assert not result.violations, "; ".join(str(v) for v in result.violations)


def _run_checked(spec: ScenarioSpec):
    """Run a drawn spec with invariants on (empty-window draws are valid no-ops)."""
    result = run_scenario(spec)
    _assert_no_violations(result)
    return result


class TestPerRunInvariants:
    """query_conservation + completion_causality + round_separation +
    budget_conservation + ledger_partition_exactness + outcome_conservation +
    failure_billing + retry_bounded, one loop per property."""

    @given(spec=static_scenarios())
    def test_static_loop_holds_all_invariants(self, spec):
        _run_checked(spec)

    @given(spec=elastic_scenarios())
    def test_elastic_loop_holds_all_invariants(self, spec):
        _run_checked(spec)

    @given(spec=multi_model_scenarios())
    def test_multi_model_loop_holds_all_invariants(self, spec):
        _run_checked(spec)

    @given(spec=spot_scenarios())
    def test_spot_loop_holds_all_invariants(self, spec):
        _run_checked(spec)

    @given(spec=pipeline_scenarios())
    def test_pipeline_loop_holds_all_invariants(self, spec):
        """Adds stage_precedence + graph_conservation on top of the common eight."""
        _run_checked(spec)


@pytest.mark.chaos
class TestChaosInvariants:
    """The same per-loop properties with crashes, slowdowns, storms, retry
    deadlines, and admission control all in play."""

    @given(spec=static_scenarios(chaos=True))
    def test_static_loop_survives_chaos(self, spec):
        _run_checked(spec)

    @given(spec=elastic_scenarios(chaos=True))
    def test_elastic_loop_survives_chaos(self, spec):
        _run_checked(spec)

    @given(spec=multi_model_scenarios(chaos=True))
    def test_multi_model_loop_survives_chaos(self, spec):
        _run_checked(spec)

    @given(spec=spot_scenarios(chaos=True))
    def test_spot_loop_survives_chaos(self, spec):
        _run_checked(spec)

    @given(spec=pipeline_scenarios(chaos=True))
    def test_pipeline_loop_survives_chaos(self, spec):
        _run_checked(spec)


class TestEqualInstantClusters:
    """Bursty arrivals put many queries on one exact timestamp: the hardest case for
    the TIME_EPSILON_MS coalescing logic, asserted across every serving loop."""

    @given(
        spec=scenario_specs(),
        burst=st.integers(min_value=4, max_value=12),
    )
    def test_forced_bursts_preserve_invariants(self, spec, burst):
        bursty_streams = tuple(
            dataclasses.replace(s, arrival="bursty", burst_size=burst)
            for s in spec.streams
        )
        forced = dataclasses.replace(spec, streams=bursty_streams)
        _run_checked(forced)


class TestDerivedInvariants:
    @given(
        model=st.sampled_from(FUZZ_MODELS),
        budgets=budget_ladders(),
    )
    def test_qos_bound_monotone_in_budget(self, model, budgets):
        violations = check_qos_monotone_in_budget(model, budgets)
        assert not violations, "; ".join(str(v) for v in violations)

    @pytest.mark.fuzz
    @settings(max_examples=5)
    @given(spec=spot_scenarios())
    def test_spot_disabled_byte_identity(self, spec):
        violations = check_spot_disabled_identity(spec)
        assert not violations, "; ".join(str(v) for v in violations)

    @pytest.mark.fuzz
    @settings(max_examples=2)
    @given(spec=scenario_specs())
    def test_hashseed_independence(self, spec):
        violations = check_hashseed_independence(spec)
        assert not violations, "; ".join(str(v) for v in violations)

    @pytest.mark.chaos
    @settings(max_examples=5)
    @given(spec=scenario_specs(chaos=True))
    def test_fault_determinism(self, spec):
        violations = check_fault_determinism(spec)
        assert not violations, "; ".join(str(v) for v in violations)


class TestTraceReplayEquivalence:
    """A scenario's workload, exported through trace_io and replayed, is the same run."""

    @settings(max_examples=10)
    @given(spec=scenario_specs())
    def test_jsonl_round_trip_replays_byte_identically(self, spec):
        from repro.fuzz.runner import build_queries

        queries = build_queries(spec)
        with tempfile.TemporaryDirectory() as tmp:
            path = save_trace_jsonl(
                Trace.from_queries(queries, {"scenario": spec.label or "fuzz"}),
                Path(tmp) / "trace.jsonl",
            )
            replayed = load_trace_jsonl(path)
        assert list(replayed.queries) == list(queries)
        direct = run_scenario(spec, check=False)
        via_trace = run_scenario(spec, queries=replayed.queries, check=True)
        _assert_no_violations(via_trace)
        assert result_digest(via_trace) == result_digest(direct)
