"""Property-based tests for the throughput upper bound (Eqs. 9-15)."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.upper_bound import upper_bound_from_rates

rates = st.floats(min_value=0.1, max_value=10_000.0, allow_nan=False, allow_infinity=False)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
counts = st.integers(min_value=0, max_value=30)
aux_lists = st.lists(st.tuples(st.integers(0, 20), rates), min_size=0, max_size=4)


@settings(max_examples=200, deadline=None)
@given(u=counts, q_b=rates, q_b_splus=rates, aux=aux_lists, f=fractions)
def test_upper_bound_is_finite_and_non_negative(u, q_b, q_b_splus, aux, f):
    value = upper_bound_from_rates(u, q_b, q_b_splus, aux, f)
    assert value >= 0.0
    assert math.isfinite(value)


@settings(max_examples=120, deadline=None)
@given(u=st.integers(1, 20), q_b=rates, q_b_splus=rates, aux=aux_lists, f=fractions)
def test_monotone_in_base_count(u, q_b, q_b_splus, aux, f):
    smaller = upper_bound_from_rates(u, q_b, q_b_splus, aux, f)
    larger = upper_bound_from_rates(u + 1, q_b, q_b_splus, aux, f)
    assert larger >= smaller - 1e-9


@settings(max_examples=120, deadline=None)
@given(
    u=st.integers(1, 20),
    q_b=rates,
    q_b_splus=rates,
    v=st.integers(0, 20),
    q_a=rates,
    f=st.floats(min_value=0.01, max_value=0.99),
)
def test_monotone_in_aux_count(u, q_b, q_b_splus, v, q_a, f):
    smaller = upper_bound_from_rates(u, q_b, q_b_splus, [(v, q_a)], f)
    larger = upper_bound_from_rates(u, q_b, q_b_splus, [(v + 1, q_a)], f)
    assert larger >= smaller - 1e-9


@settings(max_examples=120, deadline=None)
@given(u=st.integers(1, 20), q_b=rates, q_b_splus=rates, f=fractions)
def test_without_aux_equals_homogeneous_capacity(u, q_b, q_b_splus, f):
    assert upper_bound_from_rates(u, q_b, q_b_splus, [], f) == u * q_b


@settings(max_examples=120, deadline=None)
@given(
    u=st.integers(1, 10),
    q_b=rates,
    q_b_splus=rates,
    v=st.integers(1, 10),
    q_a=rates,
    f=st.floats(min_value=0.01, max_value=0.99),
)
def test_bound_never_exceeds_total_aggregate_service_rate(u, q_b, q_b_splus, v, q_a, f):
    """The bound can never exceed what all instances could serve if every query were
    cheap: u * max(Q_b, Q_b_s+) + v * Q_a."""
    value = upper_bound_from_rates(u, q_b, q_b_splus, [(v, q_a)], f)
    assert value <= u * max(q_b, q_b_splus) + v * q_a + 1e-6


@settings(max_examples=120, deadline=None)
@given(
    u=st.integers(1, 10),
    q_b=rates,
    q_b_splus=rates,
    v=st.integers(1, 10),
    q_a=rates,
    f=st.floats(min_value=0.01, max_value=0.99),
)
def test_bound_matches_declared_branch(u, q_b, q_b_splus, v, q_a, f):
    """The returned value equals whichever branch of Eq. 15 its condition selects,
    floored at the base-only capacity ``u * Q_b``."""
    value = upper_bound_from_rates(u, q_b, q_b_splus, [(v, q_a)], f)
    offload = (1 - f) / f * v * q_a
    if u * q_b_splus <= offload:
        expected = u * q_b_splus / (1 - f)
    else:
        slack_ratio = (u * q_b_splus - offload) / (u * q_b_splus)
        expected = v * q_a / f + slack_ratio * u * q_b
    expected = max(expected, u * q_b)
    assert value == expected or abs(value - expected) < 1e-9 * max(1.0, expected)


@settings(max_examples=120, deadline=None)
@given(
    u=st.integers(1, 10),
    q_b=rates,
    q_b_splus=rates,
    aux=aux_lists,
    f=fractions,
)
def test_bound_never_below_base_only_capacity(u, q_b, q_b_splus, aux, f):
    """Base-only serving is always available, so the bound can never fall below it."""
    assert upper_bound_from_rates(u, q_b, q_b_splus, aux, f) >= u * q_b - 1e-9
