"""Property-based tests for configurations and the configuration space."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud.config import HeterogeneousConfig, parse_config
from repro.core.config_space import enumerate_configs

count_vectors = st.tuples(
    st.integers(0, 8), st.integers(0, 8), st.integers(0, 8), st.integers(0, 8)
)


@settings(max_examples=200, deadline=None)
@given(counts=count_vectors)
def test_cost_is_linear_in_counts(counts):
    config = HeterogeneousConfig(counts)
    prices = config.catalog.price_vector()
    expected = sum(c * p for c, p in zip(counts, prices))
    assert config.cost_per_hour() == np.float64(expected) or abs(
        config.cost_per_hour() - expected
    ) < 1e-9


@settings(max_examples=200, deadline=None)
@given(counts=count_vectors)
def test_string_roundtrip(counts):
    config = HeterogeneousConfig(counts)
    assert parse_config(str(config)).counts == config.counts


@settings(max_examples=200, deadline=None)
@given(a=count_vectors, b=count_vectors)
def test_sub_config_relation_is_antisymmetric(a, b):
    config_a, config_b = HeterogeneousConfig(a), HeterogeneousConfig(b)
    if config_a.is_sub_config_of(config_b):
        assert not config_b.is_sub_config_of(config_a)
        assert config_a.total_instances < config_b.total_instances
        assert config_a.cost_per_hour() <= config_b.cost_per_hour() + 1e-9


@settings(max_examples=200, deadline=None)
@given(a=count_vectors, extra=count_vectors)
def test_adding_instances_creates_super_config(a, extra):
    config = HeterogeneousConfig(a)
    bigger = config
    for name, count in zip(config.catalog.names, extra):
        if count:
            bigger = bigger.add(name, count)
    if bigger != config:
        assert config.is_sub_config_of(bigger)


@settings(max_examples=200, deadline=None)
@given(a=count_vectors, b=count_vectors)
def test_distance_is_symmetric_and_non_negative(a, b):
    config_a, config_b = HeterogeneousConfig(a), HeterogeneousConfig(b)
    d_ab = config_a.distance_squared(config_b)
    assert d_ab >= 0
    assert d_ab == config_b.distance_squared(config_a)
    assert config_a.distance_squared(config_a) == 0


@settings(max_examples=20, deadline=None)
@given(budget=st.floats(min_value=0.2, max_value=3.0))
def test_enumeration_is_budget_feasible_and_complete_at_boundary(budget):
    configs = enumerate_configs(budget, max_per_type=6)
    for config in configs:
        assert config.cost_per_hour() <= budget + 1e-9
        assert config.total_instances >= 1
    # every single-instance config of an affordable type must be present
    for itype in HeterogeneousConfig.empty().catalog.types:
        if itype.price_per_hour <= budget:
            single = HeterogeneousConfig.from_mapping({itype.name: 1})
            assert any(c.counts == single.counts for c in configs)
