"""Property-based tests for per-model cost attribution in the usage ledger.

Multi-model runs tag every billing interval with the model the instance hosts, and
spot-market runs additionally carry a purchase market plus a price multiplier.  The
invariants any attribution scheme must uphold, for *any* commissioning history:

* per-model attributed cost sums exactly to the total billed cost (tags partition the
  intervals — attribution can neither create nor lose spend), and per-market
  attribution partitions the same total along the other axis;
* every attributed cost is non-negative, and windowed queries behave the same;
* the ledger is invariant to the *interleaving order* of start/stop events at equal
  timestamps: costs are per-interval integrals, so applying simultaneous events in any
  order (that respects each instance's own start-before-stop causality) yields the
  identical per-tag, per-market, and total costs.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud.billing import InstanceUsageLedger
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG
from repro.cloud.spot import MARKET_ON_DEMAND, MARKET_SPOT

MODELS = ("RM2", "WND", "NCF")
TYPE_NAMES = list(DEFAULT_INSTANCE_CATALOG.names)
#: (market label, price multiplier) purchase options; spot discounts vary per draw
#: exactly as per-type spot markets do.
MARKETS = ((MARKET_ON_DEMAND, 1.0), (MARKET_SPOT, 0.35), (MARKET_SPOT, 0.25))

#: One instance's commissioning history: (type index, tag index, start, duration).
#: Timestamps are drawn from a coarse grid so equal-timestamp collisions are common —
#: the interleaving-invariance property is vacuous without them.
instance_histories = st.lists(
    st.tuples(
        st.integers(0, len(TYPE_NAMES) - 1),
        st.integers(0, len(MODELS) - 1),
        st.integers(0, 20),  # start (grid units)
        st.integers(0, 10),  # duration (grid units; 0 = start and stop coincide)
    ),
    min_size=1,
    max_size=12,
)

#: The spot-market variant adds a market index per instance.
spot_instance_histories = st.lists(
    st.tuples(
        st.integers(0, len(TYPE_NAMES) - 1),
        st.integers(0, len(MODELS) - 1),
        st.integers(0, 20),
        st.integers(0, 10),
        st.integers(0, len(MARKETS) - 1),
    ),
    min_size=1,
    max_size=12,
)

GRID_MS = 500.0
HORIZON_MS = 40 * GRID_MS


def _build_events(histories):
    """Turn per-instance histories into (time, kind, server_id, type, tag) events."""
    events = []
    for server_id, (type_idx, tag_idx, start, duration) in enumerate(histories):
        start_ms = start * GRID_MS
        end_ms = (start + duration) * GRID_MS
        events.append((start_ms, "start", server_id, TYPE_NAMES[type_idx], MODELS[tag_idx]))
        events.append((end_ms, "stop", server_id, None, None))
    return events


def _build_spot_events(histories):
    """Like :func:`_build_events`, with a (market, multiplier) pair on every start."""
    events = []
    for server_id, (type_idx, tag_idx, start, duration, market_idx) in enumerate(histories):
        start_ms = start * GRID_MS
        end_ms = (start + duration) * GRID_MS
        market, multiplier = MARKETS[market_idx]
        events.append(
            (
                start_ms,
                "start",
                server_id,
                TYPE_NAMES[type_idx],
                MODELS[tag_idx],
                market,
                multiplier,
            )
        )
        events.append((end_ms, "stop", server_id, None, None))
    return events


def _apply(events, order_keys):
    """Apply events time-ordered, breaking equal-timestamp ties by ``order_keys``.

    Each instance's start always precedes its stop (the ledger's causality
    contract); beyond that, simultaneous events of different instances are applied
    in an arbitrary hypothesis-chosen order.
    """
    ledger = InstanceUsageLedger(DEFAULT_INSTANCE_CATALOG)
    started = set()
    pending = sorted(
        enumerate(events),
        key=lambda item: (item[1][0], order_keys[item[0] % len(order_keys)], item[0]),
    )
    # A stop whose start shares the timestamp must still come after it; resolve by
    # deferring premature stops (possible only because their times are equal).
    deferred = []
    for _, event in pending:
        time_ms, kind, server_id, type_name, tag = event[:5]
        if kind == "start":
            market, multiplier = event[5:] if len(event) > 5 else (MARKET_ON_DEMAND, 1.0)
            ledger.start(
                server_id,
                type_name,
                time_ms,
                tag=tag,
                price_multiplier=multiplier,
                market=market,
            )
            started.add(server_id)
            still_deferred = []
            for d_time, d_server in deferred:
                if d_server in started:
                    ledger.stop(d_server, d_time)
                else:  # pragma: no cover - defensive
                    still_deferred.append((d_time, d_server))
            deferred = still_deferred
        else:
            if server_id in started:
                ledger.stop(server_id, time_ms)
            else:
                deferred.append((time_ms, server_id))
    assert not deferred
    return ledger


@settings(max_examples=60, deadline=None)
@given(histories=instance_histories)
def test_per_tag_costs_partition_the_total(histories):
    ledger = _apply(_build_events(histories), order_keys=list(range(32)))
    by_tag = ledger.cost_by_tag(HORIZON_MS)
    assert all(cost >= 0.0 for cost in by_tag.values())
    assert sum(by_tag.values()) == np.float64(
        sum(by_tag.values())
    )  # finite, no NaN propagation
    np.testing.assert_allclose(
        sum(by_tag.values()), ledger.total_cost(HORIZON_MS), rtol=0, atol=1e-12
    )
    # direct closed-form check: each instance accrues price * duration
    expected_by_tag = {}
    for type_idx, tag_idx, start, duration in histories:
        hours = min((start + duration) * GRID_MS, HORIZON_MS) - min(
            start * GRID_MS, HORIZON_MS
        )
        price = DEFAULT_INSTANCE_CATALOG[TYPE_NAMES[type_idx]].price_per_hour
        expected_by_tag.setdefault(MODELS[tag_idx], 0.0)
        expected_by_tag[MODELS[tag_idx]] += price * hours / 3_600_000.0
    for tag, expected in expected_by_tag.items():
        np.testing.assert_allclose(by_tag.get(tag, 0.0), expected, rtol=0, atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(histories=instance_histories, permutation=st.permutations(list(range(24))))
def test_attribution_invariant_to_equal_timestamp_interleaving(histories, permutation):
    events = _build_events(histories)
    reference = _apply(events, order_keys=list(range(32)))
    shuffled = _apply(events, order_keys=list(permutation))
    assert shuffled.cost_by_tag(HORIZON_MS) == reference.cost_by_tag(HORIZON_MS)
    assert shuffled.total_cost(HORIZON_MS) == reference.total_cost(HORIZON_MS)
    assert shuffled.cost_by_type(HORIZON_MS) == reference.cost_by_type(HORIZON_MS)


@settings(max_examples=40, deadline=None)
@given(
    histories=instance_histories,
    window=st.tuples(st.integers(0, 30), st.integers(0, 30)),
)
def test_windowed_attribution_partitions_windowed_total(histories, window):
    t0, t1 = sorted(window)
    t0_ms, t1_ms = t0 * GRID_MS, t1 * GRID_MS
    ledger = _apply(_build_events(histories), order_keys=list(range(32)))
    by_tag = ledger.cost_in_window_by_tag(t0_ms, t1_ms)
    assert all(cost >= 0.0 for cost in by_tag.values())
    np.testing.assert_allclose(
        sum(by_tag.values()),
        ledger.cost_in_window(t0_ms, t1_ms),
        rtol=0,
        atol=1e-12,
    )


# -- spot-market attribution (price multipliers + per-market split) -----------------------


@settings(max_examples=60, deadline=None)
@given(histories=spot_instance_histories)
def test_per_market_costs_partition_the_total(histories):
    ledger = _apply(_build_spot_events(histories), order_keys=list(range(32)))
    by_market = ledger.cost_by_market(HORIZON_MS)
    assert all(cost >= 0.0 for cost in by_market.values())
    np.testing.assert_allclose(
        sum(by_market.values()), ledger.total_cost(HORIZON_MS), rtol=0, atol=1e-12
    )
    # the tag partition and the market partition slice the *same* total
    np.testing.assert_allclose(
        sum(ledger.cost_by_tag(HORIZON_MS).values()),
        sum(by_market.values()),
        rtol=0,
        atol=1e-12,
    )
    # closed form: each instance accrues price * multiplier * duration
    expected_by_market = {}
    for type_idx, _tag_idx, start, duration, market_idx in histories:
        overlap = min((start + duration) * GRID_MS, HORIZON_MS) - min(
            start * GRID_MS, HORIZON_MS
        )
        market, multiplier = MARKETS[market_idx]
        price = DEFAULT_INSTANCE_CATALOG[TYPE_NAMES[type_idx]].price_per_hour
        expected_by_market.setdefault(market, 0.0)
        expected_by_market[market] += price * multiplier * overlap / 3_600_000.0
    for market, expected in expected_by_market.items():
        np.testing.assert_allclose(
            by_market.get(market, 0.0), expected, rtol=0, atol=1e-12
        )


@settings(max_examples=60, deadline=None)
@given(histories=spot_instance_histories)
def test_discount_savings_closed_form(histories):
    ledger = _apply(_build_spot_events(histories), order_keys=list(range(32)))
    expected = 0.0
    for type_idx, _tag_idx, start, duration, market_idx in histories:
        overlap = min((start + duration) * GRID_MS, HORIZON_MS) - min(
            start * GRID_MS, HORIZON_MS
        )
        _market, multiplier = MARKETS[market_idx]
        price = DEFAULT_INSTANCE_CATALOG[TYPE_NAMES[type_idx]].price_per_hour
        expected += (1.0 - multiplier) * price * overlap / 3_600_000.0
    np.testing.assert_allclose(
        ledger.discount_savings(HORIZON_MS), expected, rtol=0, atol=1e-12
    )
    assert ledger.discount_savings(HORIZON_MS) >= 0.0


# -- gray attribution (quarantine + hedge spans + crash split) ----------------------------

#: The gray variant adds a crash flag per instance plus up to three attribution
#: spans — (kind index, start, duration, open?) on the same coarse grid, so spans
#: overlap each other and the interval edges constantly.
gray_instance_histories = st.lists(
    st.tuples(
        st.integers(0, len(TYPE_NAMES) - 1),
        st.integers(0, len(MODELS) - 1),
        st.integers(0, 20),  # start (grid units)
        st.integers(1, 10),  # duration (grid units)
        st.booleans(),  # closed by an unannounced crash?
        st.lists(
            st.tuples(
                st.integers(0, 1),  # 0 = quarantine, 1 = hedge
                st.integers(0, 30),  # span start (grid units)
                st.integers(0, 10),  # span duration (grid units)
                st.booleans(),  # left open (clipped at the query horizon)?
            ),
            max_size=3,
        ),
    ),
    min_size=1,
    max_size=10,
)


def _apply_gray(histories):
    ledger = InstanceUsageLedger(DEFAULT_INSTANCE_CATALOG)
    for server_id, (type_idx, tag_idx, start, duration, failed, spans) in enumerate(
        histories
    ):
        ledger.start(
            server_id, TYPE_NAMES[type_idx], start * GRID_MS, tag=MODELS[tag_idx]
        )
        ledger.stop(server_id, (start + duration) * GRID_MS, failed=failed)
        for kind_idx, s_start, s_duration, leave_open in spans:
            ledger.record_span(
                server_id,
                ("quarantine", "hedge")[kind_idx],
                s_start * GRID_MS,
                None if leave_open else (s_start + s_duration) * GRID_MS,
            )
    return ledger


@settings(max_examples=80, deadline=None)
@given(histories=gray_instance_histories)
def test_gray_attribution_partitions_the_total(histories):
    """failed + quarantine + hedge + healthy == total, exactly, for ANY span layout.

    Spans may overlap each other, stick out past their interval, sit entirely
    outside it, or stay open; crashes take the whole interval regardless of
    spans.  The partition re-labels spend — it can neither create nor lose it.
    """
    ledger = _apply_gray(histories)
    partition = ledger.attribution_partition(HORIZON_MS)
    assert set(partition) == {"failed", "quarantine", "hedge", "healthy"}
    assert all(cost >= 0.0 for cost in partition.values())
    np.testing.assert_allclose(
        sum(partition.values()), ledger.total_cost(HORIZON_MS), rtol=0, atol=1e-12
    )
    # the crash bucket is exactly the crash split computed along the other axis
    np.testing.assert_allclose(
        partition["failed"], ledger.cost_of_failures(HORIZON_MS), rtol=0, atol=1e-12
    )
    # the convenience accessors are views of the same partition
    assert ledger.cost_of_quarantine(HORIZON_MS) == partition["quarantine"]
    assert ledger.cost_of_hedges(HORIZON_MS) == partition["hedge"]


@settings(max_examples=80, deadline=None)
@given(histories=gray_instance_histories, permutation=st.permutations(list(range(16))))
def test_gray_attribution_invariant_to_span_recording_order(histories, permutation):
    """Spans are segment re-labels: the order they were recorded in cannot matter."""
    reference = _apply_gray(histories)
    shuffled = _apply_gray(histories)
    spans = shuffled._spans
    spans[:] = [
        span
        for _, _, span in sorted(
            (permutation[i % len(permutation)], i, span)
            for i, span in enumerate(spans)
        )
    ]
    assert shuffled.attribution_partition(HORIZON_MS) == (
        reference.attribution_partition(HORIZON_MS)
    )


@settings(max_examples=60, deadline=None)
@given(histories=gray_instance_histories)
def test_gray_attribution_without_spans_is_all_healthy_or_failed(histories):
    stripped = [(t, m, s, d, failed, []) for t, m, s, d, failed, _ in histories]
    ledger = _apply_gray(stripped)
    partition = ledger.attribution_partition(HORIZON_MS)
    assert partition["quarantine"] == 0.0
    assert partition["hedge"] == 0.0
    np.testing.assert_allclose(
        partition["healthy"] + partition["failed"],
        ledger.total_cost(HORIZON_MS),
        rtol=0,
        atol=1e-12,
    )


@settings(max_examples=60, deadline=None)
@given(histories=spot_instance_histories, permutation=st.permutations(list(range(24))))
def test_market_attribution_invariant_to_equal_timestamp_interleaving(
    histories, permutation
):
    events = _build_spot_events(histories)
    reference = _apply(events, order_keys=list(range(32)))
    shuffled = _apply(events, order_keys=list(permutation))
    assert shuffled.cost_by_market(HORIZON_MS) == reference.cost_by_market(HORIZON_MS)
    assert shuffled.cost_by_tag(HORIZON_MS) == reference.cost_by_tag(HORIZON_MS)
    assert shuffled.total_cost(HORIZON_MS) == reference.total_cost(HORIZON_MS)
    assert shuffled.discount_savings(HORIZON_MS) == reference.discount_savings(HORIZON_MS)
    assert shuffled.hours_by_market(HORIZON_MS) == reference.hours_by_market(HORIZON_MS)
