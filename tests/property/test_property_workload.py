"""Property-based tests for workload generation and streaming statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.stats import StreamingStats
from repro.workload.batch_sizes import GaussianBatchSizes, TruncatedLogNormalBatchSizes
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.query import Query
from repro.workload.trace_io import (
    Trace,
    load_trace_csv,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
)


@settings(max_examples=50, deadline=None)
@given(
    median=st.floats(min_value=2.0, max_value=400.0),
    sigma=st.floats(min_value=0.2, max_value=2.0),
    seed=st.integers(0, 2**20),
)
def test_lognormal_samples_stay_in_support(median, sigma, seed):
    dist = TruncatedLogNormalBatchSizes(median=median, sigma=sigma)
    samples = dist.sample(300, seed)
    assert samples.min() >= dist.min_batch
    assert samples.max() <= dist.max_batch


@settings(max_examples=50, deadline=None)
@given(
    mean=st.floats(min_value=10.0, max_value=900.0),
    std=st.floats(min_value=1.0, max_value=400.0),
    thresholds=st.lists(st.integers(0, 1100), min_size=2, max_size=6),
)
def test_cdf_is_monotone_and_bounded(mean, std, thresholds):
    dist = GaussianBatchSizes(mean=mean, std=std)
    ordered = sorted(thresholds)
    values = [dist.fraction_at_or_below(t) for t in ordered]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


@settings(max_examples=30, deadline=None)
@given(
    rate=st.floats(min_value=1.0, max_value=500.0),
    n=st.integers(min_value=1, max_value=200),
    seed=st.integers(0, 2**20),
)
def test_generated_workloads_are_well_formed(rate, n, seed):
    spec = WorkloadSpec(num_queries=n)
    queries = WorkloadGenerator(spec).generate(rate, seed)
    assert len(queries) == n
    times = [q.arrival_time_ms for q in queries]
    assert times == sorted(times)
    assert all(q.batch_size >= 1 for q in queries)
    assert [q.query_id for q in queries] == list(range(n))


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_streaming_stats_match_numpy(values):
    stats = StreamingStats()
    stats.extend(values)
    assert np.isclose(stats.mean, np.mean(values), rtol=1e-9, atol=1e-6)
    assert np.isclose(stats.variance, np.var(values), rtol=1e-6, atol=1e-6)
    assert stats.min == min(values)
    assert stats.max == max(values)


@settings(max_examples=100, deadline=None)
@given(
    a=st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=1, max_size=80),
    b=st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=1, max_size=80),
)
def test_streaming_stats_merge_equals_concatenation(a, b):
    sa, sb = StreamingStats(), StreamingStats()
    sa.extend(a)
    sb.extend(b)
    merged = sa.merge(sb)
    combined = a + b
    assert np.isclose(merged.mean, np.mean(combined), rtol=1e-9, atol=1e-6)
    assert np.isclose(merged.variance, np.var(combined), rtol=1e-6, atol=1e-6)
    assert merged.count == len(combined)


# -- trace round-trip properties ----------------------------------------------------------

#: None (untagged) plus realistic tag shapes; the CSV writer encodes None as "".
#: ``Query`` rejects ``""`` as a tag, so the encoding can never collide — the
#: asymmetry the round-trip properties below pin down.
_model_names = st.one_of(
    st.none(),
    st.sampled_from(["NCF", "RM2", "WND", "MT-WND", "DIEN"]),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters="-_."
        ),
        min_size=1,
        max_size=12,
    ),
)


@st.composite
def _traces(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    queries = [
        Query(
            query_id=i,
            batch_size=draw(st.integers(min_value=1, max_value=1024)),
            arrival_time_ms=t,
            model_name=draw(_model_names),
        )
        for i, t in enumerate(times)
    ]
    return Trace.from_queries(queries)


def test_query_rejects_empty_model_name():
    # Load-bearing for the CSV format: save_trace_csv writes "" for None and
    # load_trace_csv maps "" back to None.  That is only an *exact* round trip
    # because no real query can carry the empty string as its tag.
    with pytest.raises(ValueError, match="non-empty"):
        Query(query_id=0, batch_size=1, arrival_time_ms=0.0, model_name="")


@settings(max_examples=60, deadline=None)
@given(trace=_traces())
def test_csv_round_trip_is_exact(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    save_trace_csv(trace, path)
    loaded = load_trace_csv(path)
    assert list(loaded.queries) == list(trace.queries)
    assert loaded.duration_ms == trace.duration_ms


@settings(max_examples=60, deadline=None)
@given(trace=_traces())
def test_jsonl_round_trip_is_exact(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("jsonl") / "t.jsonl"
    save_trace_jsonl(trace, path)
    loaded = load_trace_jsonl(path)
    assert list(loaded.queries) == list(trace.queries)
    assert loaded.duration_ms == trace.duration_ms
