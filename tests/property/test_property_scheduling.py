"""Property-based tests for scheduling-level invariants.

The key invariants the simulator and the Kairos distributor must uphold for *any*
workload:

* every committed assignment refers to a pending query and a real server, and no server
  receives two queries in the same Kairos round;
* simulated per-query latency always at least equals the true service latency (queueing
  can only add time);
* the oracle packing never violates QoS for the queries it assigns to auxiliary
  instances and always serves every query when a base instance exists.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.models import get_model
from repro.cloud.profiles import default_profile_registry
from repro.core.distributor import QueryDistributor
from repro.core.latency_model import PerfectLatencyEstimator
from repro.core.heterogeneity import coefficients_from_profiles
from repro.schedulers.kairos_policy import KairosPolicy
from repro.schedulers.oracle import OracleScheduler
from repro.sim.cluster import Cluster
from repro.sim.simulation import simulate_serving
from repro.workload.generator import queries_from_batches

PROFILES = default_profile_registry()
RM2 = get_model("RM2")

batch_lists = st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=40)
config_counts = st.tuples(
    st.integers(1, 3), st.integers(0, 2), st.integers(0, 4), st.integers(0, 2)
)


@settings(max_examples=40, deadline=None)
@given(batches=batch_lists, counts=config_counts)
def test_distributor_round_is_a_valid_partial_matching(batches, counts):
    config = HeterogeneousConfig(counts)
    cluster = Cluster(config, RM2, PROFILES)
    estimator = PerfectLatencyEstimator(PROFILES, RM2)
    coefficients = coefficients_from_profiles(PROFILES, RM2)
    distributor = QueryDistributor(estimator, coefficients, RM2.qos_ms)
    queries = queries_from_batches(batches, [0.0] * len(batches))
    result = distributor.distribute(0.0, queries, cluster.servers)
    assert len(result) == min(len(batches), len(cluster))
    servers_used = [a.server_index for a in result.assignments]
    assert len(set(servers_used)) == len(servers_used)
    assigned_ids = {a.query.query_id for a in result.assignments}
    assert assigned_ids <= {q.query_id for q in queries}


@settings(max_examples=25, deadline=None)
@given(batches=batch_lists, counts=config_counts, seed=st.integers(0, 2**16))
def test_simulated_latency_never_below_service_latency(batches, counts, seed):
    config = HeterogeneousConfig(counts)
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0, 50.0 * len(batches), size=len(batches)))
    queries = queries_from_batches(batches, arrivals)
    report = simulate_serving(config, RM2, PROFILES, KairosPolicy(), queries)
    for record in report.metrics.records:
        true_latency = PROFILES.latency_ms(RM2, record.server_type, record.query.batch_size)
        assert record.latency_ms >= true_latency - 1e-9
        assert record.service_ms == true_latency
    assert len(report.metrics) == len(queries)


@settings(max_examples=40, deadline=None)
@given(batches=batch_lists, counts=config_counts)
def test_oracle_packing_respects_aux_qos(batches, counts):
    config = HeterogeneousConfig(counts)
    oracle = OracleScheduler(PROFILES, RM2)
    result = oracle.pack(config, batches)
    # with at least one base instance every query is served
    assert result.queries_served == len(batches)
    # auxiliary types never serve more queries than could fit under their cutoffs
    for type_name, served in result.served_by_type.items():
        if type_name == "g4dn.xlarge":
            continue
        cutoff = PROFILES.qos_cutoff_batch(RM2, type_name)
        eligible = sum(1 for b in batches if b <= cutoff)
        assert served <= eligible
