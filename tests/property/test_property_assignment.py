"""Property-based tests for the assignment solvers.

Invariants:

* the from-scratch Jonker-Volgenant and Hungarian solvers always achieve exactly the
  optimal cost reported by SciPy's reference implementation;
* every solver produces a valid matching (unique rows/columns, min(m, n) pairs);
* the greedy matcher never beats the optimum.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp
from scipy.optimize import linear_sum_assignment

from repro.solvers.greedy import greedy_assignment
from repro.solvers.hungarian import hungarian_assignment
from repro.solvers.jonker_volgenant import jonker_volgenant_assignment

cost_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 7), st.integers(1, 7)),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False),
)


def optimal_cost(cost):
    rows, cols = linear_sum_assignment(cost)
    return cost[rows, cols].sum()


def assert_valid_matching(cost, rows, cols):
    m, n = cost.shape
    assert len(rows) == len(cols) == min(m, n)
    assert len(set(rows.tolist())) == len(rows)
    assert len(set(cols.tolist())) == len(cols)
    assert np.all((0 <= rows) & (rows < m))
    assert np.all((0 <= cols) & (cols < n))


@settings(max_examples=60, deadline=None)
@given(cost=cost_matrices)
def test_jonker_volgenant_is_optimal(cost):
    rows, cols = jonker_volgenant_assignment(cost)
    assert_valid_matching(cost, rows, cols)
    assert cost[rows, cols].sum() == np.float64(cost[rows, cols].sum())
    assert abs(cost[rows, cols].sum() - optimal_cost(cost)) < 1e-6


@settings(max_examples=60, deadline=None)
@given(cost=cost_matrices)
def test_hungarian_is_optimal(cost):
    rows, cols = hungarian_assignment(cost)
    assert_valid_matching(cost, rows, cols)
    assert abs(cost[rows, cols].sum() - optimal_cost(cost)) < 1e-6


@settings(max_examples=60, deadline=None)
@given(cost=cost_matrices)
def test_greedy_is_valid_and_never_below_optimal(cost):
    rows, cols = greedy_assignment(cost)
    assert_valid_matching(cost, rows, cols)
    assert cost[rows, cols].sum() >= optimal_cost(cost) - 1e-6


@settings(max_examples=40, deadline=None)
@given(cost=cost_matrices, shift=st.floats(min_value=-50, max_value=50, allow_nan=False))
def test_jv_invariant_under_constant_column_shift(cost, shift):
    """Adding a constant to every entry shifts the optimal cost by min(m, n) * shift
    but must not change the optimal matching's structure cost relative to scipy."""
    shifted = cost + shift
    rows, cols = jonker_volgenant_assignment(shifted)
    assert abs(shifted[rows, cols].sum() - optimal_cost(shifted)) < 1e-6
