"""Property-based tests for the assignment solvers.

Invariants:

* the from-scratch Jonker-Volgenant and Hungarian solvers always achieve exactly the
  optimal cost reported by SciPy's reference implementation;
* every solver produces a valid matching (unique rows/columns, min(m, n) pairs);
* the greedy matcher never beats the optimum;
* the flat-array JV core (PR 5 rewrite) returns the *element-wise identical*
  assignment to a frozen copy of the pre-rewrite implementation — on tie-free and
  tie-heavy matrices alike — and matches the Hungarian solver's total cost on random
  rectangular matrices.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp
from scipy.optimize import linear_sum_assignment

from repro.solvers.greedy import greedy_assignment
from repro.solvers.hungarian import hungarian_assignment
from repro.solvers.jonker_volgenant import (
    JonkerVolgenantSolver,
    jonker_volgenant_assignment,
)


# ---------------------------------------------------------------------------------------
# Frozen copy of the pre-rewrite Jonker-Volgenant implementation (the per-step
# nonzero/fancy-indexing form the PR 5 flat-array core replaced).  Kept verbatim as the
# behavioural reference: the rewrite must reproduce its matching *including every
# tie-break*, because scheduling runs are asserted byte-identical per seed.
# ---------------------------------------------------------------------------------------
def _reference_jv(cost):
    cost = np.asarray(cost, dtype=float)
    m, n = cost.shape
    if m == 0 or n == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)
    if m == 1:
        return np.zeros(1, dtype=int), np.asarray([np.argmin(cost[0])], dtype=int)
    if n == 1:
        return np.asarray([np.argmin(cost[:, 0])], dtype=int), np.zeros(1, dtype=int)
    if m > n:
        cols, rows = _reference_jv(cost.T)
        order = np.argsort(rows)
        return rows[order], cols[order]
    return np.arange(m), _reference_jv_core(cost)


def _reference_jv_core(cost):
    m, n = cost.shape
    u = np.zeros(m)
    v = np.zeros(n)
    col4row = np.full(m, -1, dtype=int)
    row4col = np.full(n, -1, dtype=int)
    for cur_row in range(m):
        shortest = np.full(n, np.inf)
        predecessor = np.full(n, -1, dtype=int)
        done_cols = np.zeros(n, dtype=bool)
        visited_rows = np.zeros(m, dtype=bool)
        min_val = 0.0
        i = cur_row
        sink = -1
        while sink == -1:
            visited_rows[i] = True
            open_cols = ~done_cols
            reduced = min_val + cost[i, open_cols] - u[i] - v[open_cols]
            open_idx = np.nonzero(open_cols)[0]
            improved = reduced < shortest[open_idx]
            if np.any(improved):
                upd = open_idx[improved]
                shortest[upd] = reduced[improved]
                predecessor[upd] = i
            open_shortest = shortest[open_idx]
            lowest = open_shortest.min()
            tie_cols = open_idx[open_shortest == lowest]
            unassigned_ties = tie_cols[row4col[tie_cols] == -1]
            j = int(unassigned_ties[0]) if unassigned_ties.size else int(tie_cols[0])
            min_val = float(lowest)
            done_cols[j] = True
            if row4col[j] == -1:
                sink = j
            else:
                i = int(row4col[j])
        u[cur_row] += min_val
        other_visited = visited_rows.copy()
        other_visited[cur_row] = False
        if np.any(other_visited):
            rows_idx = np.nonzero(other_visited)[0]
            u[rows_idx] += min_val - shortest[col4row[rows_idx]]
        v[done_cols] -= min_val - shortest[done_cols]
        j = sink
        while True:
            i = int(predecessor[j])
            row4col[j] = i
            col4row[i], j = j, col4row[i]
            if i == cur_row:
                break
    return col4row

cost_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 7), st.integers(1, 7)),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False),
)


def optimal_cost(cost):
    rows, cols = linear_sum_assignment(cost)
    return cost[rows, cols].sum()


def assert_valid_matching(cost, rows, cols):
    m, n = cost.shape
    assert len(rows) == len(cols) == min(m, n)
    assert len(set(rows.tolist())) == len(rows)
    assert len(set(cols.tolist())) == len(cols)
    assert np.all((0 <= rows) & (rows < m))
    assert np.all((0 <= cols) & (cols < n))


@settings(max_examples=60, deadline=None)
@given(cost=cost_matrices)
def test_jonker_volgenant_is_optimal(cost):
    rows, cols = jonker_volgenant_assignment(cost)
    assert_valid_matching(cost, rows, cols)
    assert cost[rows, cols].sum() == np.float64(cost[rows, cols].sum())
    assert abs(cost[rows, cols].sum() - optimal_cost(cost)) < 1e-6


@settings(max_examples=60, deadline=None)
@given(cost=cost_matrices)
def test_hungarian_is_optimal(cost):
    rows, cols = hungarian_assignment(cost)
    assert_valid_matching(cost, rows, cols)
    assert abs(cost[rows, cols].sum() - optimal_cost(cost)) < 1e-6


@settings(max_examples=60, deadline=None)
@given(cost=cost_matrices)
def test_greedy_is_valid_and_never_below_optimal(cost):
    rows, cols = greedy_assignment(cost)
    assert_valid_matching(cost, rows, cols)
    assert cost[rows, cols].sum() >= optimal_cost(cost) - 1e-6


tie_free_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 9), st.integers(2, 9)),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False),
    unique=True,  # pairwise-distinct entries: no equal path costs to tie-break
)

tie_heavy_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 9), st.integers(2, 9)),
    elements=st.integers(0, 4).map(float),
)


@settings(max_examples=80, deadline=None)
@given(cost=cost_matrices)
def test_jv_rewrite_matches_hungarian_total_cost(cost):
    """The flat-array core is optimal: total cost equals the Hungarian solver's."""
    rows, cols = jonker_volgenant_assignment(cost)
    h_rows, h_cols = hungarian_assignment(cost)
    assert abs(cost[rows, cols].sum() - cost[h_rows, h_cols].sum()) < 1e-6


@settings(max_examples=80, deadline=None)
@given(cost=tie_free_matrices)
def test_jv_rewrite_identical_to_reference_on_tie_free_matrices(cost):
    """On tie-free matrices the rewritten core returns the exact same assignment."""
    ref_rows, ref_cols = _reference_jv(cost)
    rows, cols = jonker_volgenant_assignment(cost)
    np.testing.assert_array_equal(rows, ref_rows)
    np.testing.assert_array_equal(cols, ref_cols)


@settings(max_examples=80, deadline=None)
@given(cost=tie_heavy_matrices)
def test_jv_rewrite_identical_to_reference_including_tie_breaks(cost):
    """Stronger than the tie-free guarantee: every tie-break decision is preserved,
    which is what keeps optimized serving runs byte-identical per seed."""
    ref_rows, ref_cols = _reference_jv(cost)
    rows, cols = jonker_volgenant_assignment(cost)
    np.testing.assert_array_equal(rows, ref_rows)
    np.testing.assert_array_equal(cols, ref_cols)


@settings(max_examples=40, deadline=None)
@given(cost=cost_matrices)
def test_jv_scratch_reuse_is_stateless_across_solves(cost):
    """A persistent solver gives the same answer as a fresh one (scratch reuse leaks
    no state between solves), and ``solve_many`` equals per-call ``solve``."""
    persistent = JonkerVolgenantSolver()
    warmup = np.arange(12.0).reshape(3, 4) % 5  # dirty the scratch with another shape
    persistent.solve(warmup)
    rows, cols = persistent.solve(cost)
    f_rows, f_cols = JonkerVolgenantSolver().solve(cost)
    np.testing.assert_array_equal(rows, f_rows)
    np.testing.assert_array_equal(cols, f_cols)
    many = persistent.solve_many([cost, warmup])
    np.testing.assert_array_equal(many[0][0], rows)
    np.testing.assert_array_equal(many[0][1], cols)


@settings(max_examples=40, deadline=None)
@given(cost=cost_matrices, shift=st.floats(min_value=-50, max_value=50, allow_nan=False))
def test_jv_invariant_under_constant_column_shift(cost, shift):
    """Adding a constant to every entry shifts the optimal cost by min(m, n) * shift
    but must not change the optimal matching's structure cost relative to scipy."""
    shifted = cost + shift
    rows, cols = jonker_volgenant_assignment(shifted)
    assert abs(shifted[rows, cols].sum() - optimal_cost(shifted)) < 1e-6
