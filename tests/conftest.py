"""Shared fixtures for the test suite, plus the hypothesis profile registry."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG
from repro.cloud.models import get_model
from repro.cloud.profiles import default_profile_registry
from repro.sim.cluster import Cluster
from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

# Hypothesis profiles: ``ci`` is the deterministic tier-1 gate (derandomized, few
# examples, no flaky deadlines); ``dev`` searches harder for local iteration; and
# ``fuzz`` is the deep-search profile behind long offline campaigns.  Tests that pin
# their own ``max_examples`` keep it; everything else scales with the profile.
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.register_profile(
    "dev",
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.register_profile(
    "fuzz",
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
# `--hypothesis-profile=...` (set by tools/ci.sh) overrides this env-based default.
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture(scope="session")
def profiles():
    """The calibrated default profile registry (session-scoped: it is immutable)."""
    return default_profile_registry()


@pytest.fixture(scope="session")
def catalog():
    return DEFAULT_INSTANCE_CATALOG


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def rm2():
    return get_model("RM2")


@pytest.fixture
def wnd():
    return get_model("WND")


@pytest.fixture
def small_config(catalog):
    """A small heterogeneous configuration: 1 GPU, 1 c5n, 2 r5n."""
    return HeterogeneousConfig((1, 1, 2, 0), catalog)


@pytest.fixture
def rm2_cluster(small_config, rm2, profiles):
    return Cluster(small_config, rm2, profiles)


@pytest.fixture
def small_workload(rng):
    """A short, reproducible query stream for simulation tests."""
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
        num_queries=120,
    )
    return WorkloadGenerator(spec).generate(rate_qps=40.0, rng=rng)
